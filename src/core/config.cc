#include "core/config.h"

#include <algorithm>
#include <cctype>
#include <istream>
#include <set>
#include <sstream>

#include "util/error.h"

namespace m3dfl {

const std::vector<Profile>& all_profiles() {
  static const std::vector<Profile> kProfiles = {
      Profile::kAes, Profile::kTate, Profile::kNetcard, Profile::kLeon3mp};
  return kProfiles;
}

const std::vector<DesignConfig>& all_configs() {
  static const std::vector<DesignConfig> kConfigs = {
      DesignConfig::kSyn1, DesignConfig::kTpi, DesignConfig::kSyn2,
      DesignConfig::kPar};
  return kConfigs;
}

std::string profile_name(Profile profile) {
  switch (profile) {
    case Profile::kAes: return "AES";
    case Profile::kTate: return "Tate";
    case Profile::kNetcard: return "netcard";
    case Profile::kLeon3mp: return "leon3mp";
  }
  M3DFL_ASSERT(false);
}

std::string config_name(DesignConfig config) {
  switch (config) {
    case DesignConfig::kSyn1: return "Syn-1";
    case DesignConfig::kTpi: return "TPI";
    case DesignConfig::kSyn2: return "Syn-2";
    case DesignConfig::kPar: return "Par";
  }
  M3DFL_ASSERT(false);
}

Profile parse_profile(const std::string& name) {
  for (Profile p : all_profiles()) {
    std::string lower = profile_name(p);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == name) return p;
  }
  throw Error("unknown profile '" + name + "' (aes|tate|netcard|leon3mp)");
}

DesignConfig parse_config(const std::string& name) {
  if (name == "syn1") return DesignConfig::kSyn1;
  if (name == "tpi") return DesignConfig::kTpi;
  if (name == "syn2") return DesignConfig::kSyn2;
  if (name == "par") return DesignConfig::kPar;
  throw Error("unknown config '" + name + "' (syn1|tpi|syn2|par)");
}

namespace {

[[noreturn]] void cfg_fail(const std::string& source, int line_no,
                           const std::string& what) {
  throw Error(source + " line " + std::to_string(line_no) + ": " + what);
}

}  // namespace

TrainOptions read_train_options(std::istream& is, const TrainOptions& defaults,
                                const std::string& source,
                                const ParseLimits& limits) {
  TrainOptions out = defaults;
  std::set<std::string> seen;
  std::string line;
  int line_no = 0;
  for (;;) {
    const BoundedLine bl = bounded_getline(is, line, limits.max_line_bytes);
    if (bl.too_long()) {
      cfg_fail(source, line_no + 1,
               limit_exceeded_over("line bytes", limits.max_line_bytes));
    }
    if (!bl.ok()) break;
    ++line_no;
    if (static_cast<std::size_t>(line_no) > limits.max_config_lines) {
      cfg_fail(source, line_no,
               limit_exceeded("config lines", static_cast<unsigned>(line_no),
                              limits.max_config_lines));
    }
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    std::string value;
    if (!(ls >> value)) {
      cfg_fail(source, line_no, "missing value for key '" + key + "'");
    }
    std::string extra;
    if (ls >> extra) {
      cfg_fail(source, line_no,
               "trailing garbage '" + extra + "' after key '" + key + "'");
    }
    if (!seen.insert(key).second) {
      cfg_fail(source, line_no, "duplicate key '" + key + "'");
    }

    std::size_t pos = 0;
    try {
      if (key == "epochs") {
        out.epochs = std::stoi(value, &pos);
      } else if (key == "batch_size") {
        out.batch_size = std::stoi(value, &pos);
      } else if (key == "lr") {
        out.lr = std::stod(value, &pos);
      } else if (key == "seed") {
        out.seed = std::stoull(value, &pos);
      } else if (key == "min_improvement") {
        out.min_improvement = std::stod(value, &pos);
      } else if (key == "patience") {
        out.patience = std::stoi(value, &pos);
      } else {
        cfg_fail(source, line_no,
                 "unknown key '" + key +
                     "' (epochs|batch_size|lr|seed|min_improvement|"
                     "patience)");
      }
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      cfg_fail(source, line_no,
               "non-numeric value '" + value + "' for key '" + key + "'");
    }
    if (pos != value.size()) {
      cfg_fail(source, line_no,
               "non-numeric value '" + value + "' for key '" + key + "'");
    }
    if (key == "epochs" && out.epochs < 1) {
      cfg_fail(source, line_no, "epochs must be >= 1");
    }
    if (key == "batch_size" && out.batch_size < 1) {
      cfg_fail(source, line_no, "batch_size must be >= 1");
    }
    if (key == "lr" && !(out.lr > 0.0)) {
      cfg_fail(source, line_no, "lr must be > 0");
    }
    if (key == "min_improvement" && out.min_improvement < 0.0) {
      cfg_fail(source, line_no, "min_improvement must be >= 0");
    }
    if (key == "patience" && out.patience < 1) {
      cfg_fail(source, line_no, "patience must be >= 1");
    }
  }
  return out;
}

ProfileSpec profile_spec(Profile profile) {
  ProfileSpec spec;
  switch (profile) {
    case Profile::kAes:
      spec.name = "AES";
      spec.gen.name = "aes";
      spec.gen.num_gates = 1800;
      spec.gen.num_pis = 40;
      spec.gen.num_pos = 32;
      spec.gen.num_flops = 160;
      spec.gen.target_depth = 14;
      spec.gen.seed = 0xAE5001;
      spec.gen.max_fanout = 6;
      spec.gen.chain_extend_prob = 0.10;
      spec.num_chains = 16;
      spec.atpg.max_patterns = 192;
      spec.fail_memory_patterns = 0;  // small program: full fail logging
      break;
    case Profile::kTate:
      spec.name = "Tate";
      spec.gen.name = "tate";
      spec.gen.num_gates = 3200;
      spec.gen.num_pis = 48;
      spec.gen.num_pos = 40;
      spec.gen.num_flops = 240;
      spec.gen.target_depth = 16;
      spec.gen.seed = 0x7A7E01;
      spec.gen.max_fanout = 7;
      spec.gen.chain_extend_prob = 0.15;
      spec.num_chains = 24;
      spec.atpg.max_patterns = 128;
      spec.fail_memory_patterns = 0;  // small program: full fail logging
      break;
    case Profile::kNetcard:
      spec.name = "netcard";
      spec.gen.name = "netcard";
      spec.gen.num_gates = 3800;
      spec.gen.num_pis = 64;
      spec.gen.num_pos = 48;
      spec.gen.num_flops = 320;
      spec.gen.target_depth = 24;
      spec.gen.seed = 0x4E7C01;
      spec.gen.max_fanout = 12;
      spec.gen.locality = 0.85;
      spec.gen.mix[static_cast<std::size_t>(GateType::kBuf)] = 0.12;
      spec.gen.mix[static_cast<std::size_t>(GateType::kInv)] = 0.18;
      spec.gen.chain_extend_prob = 0.80;
      spec.num_chains = 32;
      // netcard has by far the largest pattern count in Table III; the big
      // search space is what degrades its diagnosis quality.
      spec.atpg.max_patterns = 448;
      spec.atpg.patience = 4;
      spec.fail_memory_patterns = 3;
      break;
    case Profile::kLeon3mp:
      spec.name = "leon3mp";
      spec.gen.name = "leon3mp";
      spec.gen.num_gates = 5200;
      spec.gen.num_pis = 64;
      spec.gen.num_pos = 56;
      spec.gen.num_flops = 400;
      spec.gen.target_depth = 24;
      spec.gen.seed = 0x1E0301;
      spec.gen.max_fanout = 10;
      spec.gen.mix[static_cast<std::size_t>(GateType::kBuf)] = 0.11;
      spec.gen.mix[static_cast<std::size_t>(GateType::kInv)] = 0.16;
      spec.gen.chain_extend_prob = 0.75;
      spec.num_chains = 32;
      spec.atpg.max_patterns = 320;
      spec.atpg.patience = 3;
      spec.fail_memory_patterns = 3;
      break;
  }
  spec.chains_per_channel = 8;
  spec.atpg.seed = spec.gen.seed ^ 0xFEED;
  spec.tpi.fraction = 0.01;  // paper: at most 1% of the gate count
  spec.tpi.seed = spec.gen.seed ^ 0x79;
  return spec;
}

GeneratorConfig generator_for(const ProfileSpec& spec, DesignConfig config) {
  GeneratorConfig gen = spec.gen;
  if (config == DesignConfig::kSyn2) {
    // Re-synthesis at a different clock frequency: same "RTL" (profile),
    // different structural elaboration and deeper logic paths.
    gen.seed ^= 0x5A5A5A;
    gen.target_depth += 3;
    gen.locality = std::min(0.9, gen.locality + 0.05);
  }
  return gen;
}

PartitionOptions partition_for(const ProfileSpec& spec, DesignConfig config) {
  PartitionOptions opt;
  opt.seed = spec.partition_seed;
  opt.method = config == DesignConfig::kPar ? PartitionMethod::kLevelDriven
                                            : PartitionMethod::kMinCut;
  return opt;
}

}  // namespace m3dfl
