#include "core/experiment.h"

#include <chrono>

namespace m3dfl {
namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

LabeledDataset build_test_set(const Design& design,
                              const ExperimentOptions& options) {
  DataGenOptions gen;
  gen.num_samples = options.test_samples;
  gen.compacted = options.compacted;
  gen.miv_fault_prob = options.test_miv_prob;
  gen.seed = options.test_seed;
  return build_dataset(design, gen);
}

ProfileExperiment::ProfileExperiment(Profile profile,
                                     const ExperimentOptions& options)
    : profile_(profile), options_(options), framework_(options.framework) {
  syn1_ = Design::build(profile, DesignConfig::kSyn1);

  TransferTrainOptions train = options.train;
  train.compacted = options.compacted;
  auto t0 = std::chrono::steady_clock::now();
  training_set_ = build_transfer_training_set(profile, *syn1_, train);
  datagen_seconds_ = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  framework_.train(training_set_.graphs);
  training_seconds_ = seconds_since(t0);
}

ConfigResult ProfileExperiment::evaluate(DesignConfig config) const {
  if (config == DesignConfig::kSyn1) {
    return evaluate_on(*syn1_, build_test_set(*syn1_, options_));
  }
  const std::unique_ptr<Design> design = Design::build(profile_, config);
  ConfigResult result = evaluate_on(*design, build_test_set(*design, options_));
  result.config = config_name(config);
  return result;
}

ConfigResult ProfileExperiment::evaluate_on(const Design& design,
                                            const LabeledDataset& test) const {
  const DesignContext ctx = design.context();
  ConfigResult result;
  result.profile = profile_name(profile_);
  result.config = "Syn-1";
  BackupDictionary backup;

  for (std::size_t i = 0; i < test.size(); ++i) {
    const Sample& sample = test.samples[i];

    // Raw ATPG diagnosis.
    auto t0 = std::chrono::steady_clock::now();
    const DiagnosisReport atpg_report =
        diagnose_atpg(ctx, sample.log, options_.diagnosis);
    result.t_atpg += seconds_since(t0);
    const SampleEvaluation atpg_eval =
        evaluate_report(ctx, atpg_report, sample);
    result.atpg.add(atpg_eval);
    result.fhi_atpg.push_back(atpg_eval.fhi);

    // The GNN branch runs in parallel with ATPG diagnosis on a deployment
    // tester; here we time it separately (Fig. 9).
    t0 = std::chrono::steady_clock::now();
    const Subgraph sg = subgraph_for_log(design, sample.log);
    const FrameworkPrediction prediction = framework_.predict(sg);
    result.t_gnn += seconds_since(t0);

    // Tier-localization eligibility: reports the ATPG run did not already
    // confine to one tier.
    const bool eligible = !atpg_eval.single_tier;

    // Baseline [11] standalone.
    {
      const DiagnosisReport refined = padre_first_level(atpg_report);
      const SampleEvaluation eval = evaluate_report(ctx, refined, sample);
      result.baseline.stats.add(eval);
      if (eligible) {
        ++result.baseline.eligible;
        if (eval.tier_localized) ++result.baseline.localized;
      }
    }

    // Proposed framework standalone, then stacked with [11].
    {
      DiagnosisReport refined = atpg_report;
      t0 = std::chrono::steady_clock::now();
      std::vector<Candidate> pruned =
          framework_.refine_report(ctx, prediction, refined);
      result.t_update += seconds_since(t0);
      backup.record(static_cast<std::int32_t>(i), std::move(pruned));

      const SampleEvaluation eval = evaluate_report(ctx, refined, sample);
      result.gnn.stats.add(eval);
      result.fhi_updated.push_back(eval.fhi);

      t0 = std::chrono::steady_clock::now();
      const DiagnosisReport stacked = padre_first_level(refined);
      result.t_update += seconds_since(t0);
      const SampleEvaluation eval_plus = evaluate_report(ctx, stacked, sample);
      result.gnn_plus.stats.add(eval_plus);

      // GNN-based tier localization comes from the Tier-predictor itself.
      if (eligible) {
        ++result.gnn.eligible;
        ++result.gnn_plus.eligible;
        if (prediction.tier == sample.fault_tier) {
          ++result.gnn.localized;
          ++result.gnn_plus.localized;
        }
      }
    }
  }
  result.backup_bytes = backup.size_bytes();
  return result;
}

std::vector<TransferabilityRow> evaluate_transferability(
    Profile profile, const ExperimentOptions& options) {
  // Transferred framework: trained once on Syn-1 + random partitions.
  ProfileExperiment experiment(profile, options);

  // MIV accuracy needs MIV-fault samples in the test sets.
  ExperimentOptions test_options = options;
  test_options.test_miv_prob = 0.3;

  std::vector<TransferabilityRow> rows;
  for (DesignConfig config : all_configs()) {
    const std::unique_ptr<Design> design =
        config == DesignConfig::kSyn1 ? nullptr
                                      : Design::build(profile, config);
    const Design& d = design ? *design : experiment.syn1();
    const LabeledDataset test = build_test_set(d, test_options);

    // Dedicated models: trained on this configuration's own samples.
    DataGenOptions gen;
    gen.num_samples = options.train.samples_syn1;
    gen.compacted = options.compacted;
    gen.miv_fault_prob = options.train.miv_fault_prob;
    gen.seed = options.train.seed ^ 0xDD;
    const LabeledDataset dedicated_train = build_dataset(d, gen);
    DiagnosisFramework dedicated(options.framework);
    dedicated.train(dedicated_train.graphs);

    TransferabilityRow row;
    row.config = config_name(config);
    row.dedicated_tier_acc =
        tier_accuracy(dedicated.tier_predictor(), test.graphs);
    row.transferred_tier_acc =
        tier_accuracy(experiment.framework().tier_predictor(), test.graphs);
    row.dedicated_miv_acc =
        miv_accuracy(dedicated.miv_pinpointer(), test.graphs);
    row.transferred_miv_acc =
        miv_accuracy(experiment.framework().miv_pinpointer(), test.graphs);
    rows.push_back(row);
  }
  return rows;
}

MultiFaultResult evaluate_multifault(Profile profile,
                                     const ExperimentOptions& options) {
  // Train on Syn-1 with 2-5 same-tier TDFs per sample (paper Sec. VII-A).
  const std::unique_ptr<Design> syn1 = Design::build(profile, DesignConfig::kSyn1);
  DataGenOptions gen;
  gen.num_samples = options.train.samples_syn1;
  gen.min_faults = 2;
  gen.max_faults = 5;
  gen.compacted = options.compacted;
  gen.seed = options.train.seed;
  const LabeledDataset train = build_dataset(*syn1, gen);

  DiagnosisFramework framework(options.framework);
  framework.train(train.graphs);

  // Test on Syn-2 (transferability under systematic defects).
  const std::unique_ptr<Design> syn2 = Design::build(profile, DesignConfig::kSyn2);
  DataGenOptions tgen = gen;
  tgen.num_samples = options.test_samples;
  tgen.seed = options.test_seed;
  const LabeledDataset test = build_dataset(*syn2, tgen);
  const DesignContext ctx = syn2->context();

  MultiFaultResult result;
  result.profile = profile_name(profile);
  std::int32_t tier_correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const Sample& sample = test.samples[i];
    const DiagnosisReport report =
        diagnose_atpg(ctx, sample.log, options.diagnosis);
    result.atpg.add(evaluate_report(ctx, report, sample));

    DiagnosisReport refined = report;
    FrameworkPrediction prediction;
    framework.diagnose(ctx, test.graphs[i], refined, &prediction);
    result.refined.add(evaluate_report(ctx, refined, sample));
    if (prediction.tier == sample.fault_tier) ++tier_correct;
  }
  result.tier_localization =
      test.size() == 0 ? 0.0
                       : static_cast<double>(tier_correct) /
                             static_cast<double>(test.size());
  return result;
}

AblationResult evaluate_individual_models(Profile profile,
                                          const ExperimentOptions& options) {
  ProfileExperiment experiment(profile, options);
  const Design& design = experiment.syn1();
  const DesignContext ctx = design.context();

  // Test set augmented by ~10% MIV-fault samples (paper Sec. VII-B).
  ExperimentOptions test_options = options;
  test_options.test_miv_prob = 0.1;
  const LabeledDataset test = build_test_set(design, test_options);
  const DiagnosisFramework& fw = experiment.framework();

  AblationResult result;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const Sample& sample = test.samples[i];
    const DiagnosisReport report =
        diagnose_atpg(ctx, sample.log, options.diagnosis);
    result.atpg.add(evaluate_report(ctx, report, sample));

    const FrameworkPrediction prediction = fw.predict(test.graphs[i]);

    // Tier-predictor standalone: ignore the MIV-pinpointer output.
    {
      FrameworkPrediction tier_only = prediction;
      tier_only.faulty_mivs.clear();
      DiagnosisReport refined = report;
      fw.refine_report(ctx, tier_only, refined);
      result.tier_only.add(evaluate_report(ctx, refined, sample));
    }
    // MIV-pinpointer standalone: only move MIV hits to the top.
    {
      DiagnosisReport refined = report;
      move_to_top(refined, [&](const Candidate& c) {
        for (MivId miv : prediction.faulty_mivs) {
          if (c.fault.is_miv() && c.fault.miv == miv) return true;
          if (!c.fault.is_miv() &&
              ctx.netlist->pin_net(c.fault.pin) == ctx.mivs->miv(miv).net) {
            return true;
          }
        }
        return false;
      });
      result.miv_only.add(evaluate_report(ctx, refined, sample));
    }
    // Full policy.
    {
      DiagnosisReport refined = report;
      fw.refine_report(ctx, prediction, refined);
      result.combined.add(evaluate_report(ctx, refined, sample));
    }
  }
  return result;
}

}  // namespace m3dfl
