// Crash-safe training: checkpoint/resume with divergence guard rails.
//
// Training the three-model framework takes the longest wall-clock time of
// anything in this library, and a crash mid-run used to throw all of it
// away.  The Trainer runs the same four-phase pipeline DiagnosisFramework::
// train() always ran — tier predictor, MIV pinpointer, T_P selection +
// classifier, done — but around an explicit, serializable state:
//
//   * after every checkpoint_interval epochs (and at every phase boundary)
//     it persists {model weights, Adam moments, RNG state, phase, epoch,
//     early-stop counters, T_P, lr scale} to checkpoint_dir, through the
//     checksummed artifact container and an atomic rename, so the file on
//     disk is always a complete, verified checkpoint;
//   * resume() restores that state and continues the exact variate-for-
//     variate sequence the interrupted run would have produced — a resumed
//     run's final model is byte-identical to an uninterrupted one (the
//     kill–resume chaos harness in tests/train_chaos_test.cc asserts this);
//   * guard rails: after each epoch the trainer checks the epoch loss and
//     every parameter for non-finite values; on divergence it rolls back to
//     the last good in-memory snapshot, halves the learning rate, and
//     retries, giving up after max_rollbacks.
//
// The classifier phase's derived inputs (the Predicted-Positive subset and
// its dummy-buffer oversampling) are *recomputed* at phase entry rather than
// checkpointed: they are pure functions of the frozen tier predictor, the
// restored T_P, and a fixed seed, so recomputation is cheaper than
// persisting whole subgraphs and provably equivalent.
#ifndef M3DFL_CORE_CHECKPOINT_H_
#define M3DFL_CORE_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "core/framework.h"
#include "diag/datagen.h"
#include "sta/sta.h"
#include "util/fault_injector.h"

namespace m3dfl {

// Artifact kind of a persisted training checkpoint.
inline constexpr const char* kCheckpointKind = "train-checkpoint";
// Checkpoint file name inside TrainerOptions::checkpoint_dir.
inline constexpr const char* kCheckpointFileName = "checkpoint.m3dfl";

// Failure seams of the training pipeline, for the kill–resume chaos harness
// (seam ids on the generic m3dfl::FaultInjector).
enum class TrainSeam : int {
  kEpochEnd = 0,        // crash at an epoch boundary (after any checkpoint)
  kCheckpointSave = 1,  // crash during a checkpoint write (old file survives)
  kNanLoss = 2,         // corrupt the epoch loss to NaN (guard-rail test)
};
inline constexpr int kNumTrainSeams = 3;
const char* train_seam_name(TrainSeam seam);

// Thrown when an armed kEpochEnd / kCheckpointSave seam fires: stands in for
// SIGKILL in-process so the harness can catch it and restart training from
// the on-disk checkpoint.
class SimulatedCrash : public Error {
 public:
  explicit SimulatedCrash(const std::string& what) : Error(what) {}
};

struct TrainerOptions {
  // Directory for checkpoint files; empty disables checkpointing (plain
  // in-memory training, still guard-railed).
  std::string checkpoint_dir;
  // Epochs between periodic checkpoint writes (must be >= 1).
  std::int32_t checkpoint_interval = 1;
  // Divergence rollbacks tolerated before training gives up.
  std::int32_t max_rollbacks = 4;
  // Lint preflight: reject datasets with malformed feature matrices (wrong
  // width, non-finite values, out-of-range codes) before any epoch runs.
  // The check is one pass over the features — far cheaper than discovering
  // a poisoned sample as NaN weights after hours of training.
  bool preflight = true;
  // STA preflight (runs under the same `preflight` switch): when the design
  // and the labeled samples behind `graphs` are supplied, a static timing &
  // testability analysis rejects samples whose ground-truth faults are
  // untestable (unobservable cones, slack margin beyond sta_options.
  // max_defect_ps) before epoch 0, citing the fault sites.  An untestable
  // label can never match its failure log, so it would train the model on
  // contradictory evidence.  Both non-owning; null/empty skips the check.
  const DesignContext* sta_design = nullptr;
  std::span<const Sample> sta_samples;
  sta::StaOptions sta_options;
};

// Drives DiagnosisFramework training with checkpoint/resume and guard
// rails.  DiagnosisFramework::train() itself delegates here (with
// checkpointing disabled), so checkpointed and plain training are the same
// computation by construction.
class Trainer {
 public:
  explicit Trainer(DiagnosisFramework& framework,
                   const TrainerOptions& options = {});

  // Optional chaos injector; seams indexed by TrainSeam.  Not owned.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // Runs the pipeline from the trainer's current state (the beginning, or
  // wherever resume() left it) to completion, then marks the framework
  // trained.  Throws SimulatedCrash when an armed crash seam fires.
  void train(std::span<const Subgraph> graphs);

  // Loads the checkpoint from checkpoint_dir into the trainer and the
  // framework.  Returns false when no checkpoint exists; throws m3dfl::Error
  // (citing the file path) when the file is truncated, corrupt, or from an
  // unknown format version.
  bool resume();

  // Persists the current training state.  Called automatically every
  // checkpoint_interval epochs and at phase boundaries.
  void save_checkpoint();

  static bool has_checkpoint(const std::string& dir);
  std::string checkpoint_path() const;

  // Pipeline phase: 0 = tier predictor, 1 = MIV pinpointer, 2 = classifier
  // (T_P selection + transfer learning), 3 = done.
  int phase() const { return phase_; }
  std::int32_t rollbacks() const { return rollbacks_; }
  double lr_scale() const { return lr_scale_; }

 private:
  // Last-good in-memory state for divergence rollback: the current phase's
  // model payload, optimizer payload, and loop state.
  struct Snapshot {
    std::string model;
    std::string adam;
    EpochLoopState state;
  };
  // Serialization hooks for the phase's trainable model (rollback must load
  // weights into the *existing* object: the optimizer holds parameter
  // pointers into it).
  struct ModelIo {
    std::function<std::string()> save;
    std::function<void(const std::string&)> restore;
  };

  bool checkpointing() const { return !options_.checkpoint_dir.empty(); }
  bool seam_fires(TrainSeam seam);

  void run_tier_phase(std::span<const Subgraph> graphs);
  void run_miv_phase(std::span<const Subgraph> graphs);
  void run_classifier_phase(std::span<const Subgraph> graphs);
  // Shared epoch-loop driver: construct/restore the optimizer, then run with
  // the guard-rail + checkpoint + crash-seam hook.
  void run_loop(std::size_t dataset_size, Adam& adam, const ModelIo& io,
                const TrainStepFn& step);
  bool epoch_hook(Adam& adam, const ModelIo& io);
  void roll_back(Adam& adam, const ModelIo& io);

  std::string checkpoint_payload() const;

  DiagnosisFramework& fw_;
  TrainerOptions options_;
  FaultInjector* injector_ = nullptr;

  int phase_ = 0;
  double lr_scale_ = 1.0;
  std::int32_t rollbacks_ = 0;
  EpochLoopState state_;
  Snapshot snapshot_;

  // Mid-phase resume hand-off: resume() parses the checkpoint before the
  // phase's optimizer exists, so the Adam payload is replayed at phase entry.
  bool mid_phase_ = false;
  std::string resume_adam_;

  // Set while run_loop is active so save_checkpoint() knows whether to
  // include the mid-phase (loop + optimizer) section.
  const Adam* current_adam_ = nullptr;
};

}  // namespace m3dfl

#endif  // M3DFL_CORE_CHECKPOINT_H_
