// Benchmark profiles and design configurations.
//
// The paper evaluates four M3D benchmarks (AES, Tate, netcard, leon3mp;
// Table III) in four design configurations each (Sec. IV):
//   Syn-1 — the baseline synthesis + min-cut partitioning (training config);
//   TPI   — Syn-1 with test points inserted (1% of gates);
//   Syn-2 — re-synthesis at a different clock frequency (re-elaboration with
//           a different seed and deeper logic);
//   Par   — Syn-1 re-partitioned with a different M3D partitioner.
// Random partitions of Syn-1 provide the data-augmentation netlists.
//
// Our profiles are scaled-down synthetic stand-ins (DESIGN.md §2): gate
// counts ~1/40th of the paper's so that every experiment reproduces on one
// CPU core, with per-profile ratios (scan width, channel count, pattern
// budget) mirroring Table III — e.g. netcard keeps the largest pattern count,
// leon3mp the largest gate count.
#ifndef M3DFL_CORE_CONFIG_H_
#define M3DFL_CORE_CONFIG_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "atpg/tdf_atpg.h"
#include "dft/test_points.h"
#include "gnn/trainer.h"
#include "m3d/partition.h"
#include "netlist/generator.h"
#include "util/limits.h"

namespace m3dfl {

enum class Profile { kAes, kTate, kNetcard, kLeon3mp };
enum class DesignConfig { kSyn1, kTpi, kSyn2, kPar };

// All four benchmark profiles in paper order.
const std::vector<Profile>& all_profiles();
// All four design configurations in paper order.
const std::vector<DesignConfig>& all_configs();

std::string profile_name(Profile profile);
std::string config_name(DesignConfig config);

// Inverse of the names above (lowercase), used by the CLI and config files.
// Throws m3dfl::Error naming the accepted values on an unknown name.
Profile parse_profile(const std::string& name);
DesignConfig parse_config(const std::string& name);

// Reads training options from a line-oriented key-value stream:
//
//   # comment
//   epochs 200
//   batch_size 8
//   lr 0.01
//   seed 123
//   min_improvement 1e-4
//   patience 25
//
// Unlisted keys keep the values of `defaults`.  Unknown keys, duplicate
// keys, missing/non-numeric values, trailing garbage, and out-of-range
// values are rejected with an m3dfl::Error citing `source` and the 1-based
// line (same hardening contract as diag/log_io).  `limits` bounds line
// length and total line count (util/limits.h), so a config file is never a
// vehicle for unbounded reads.
TrainOptions read_train_options(std::istream& is,
                                const TrainOptions& defaults = {},
                                const std::string& source = "<stream>",
                                const ParseLimits& limits = {});

// Build parameters for one benchmark profile.
struct ProfileSpec {
  std::string name;
  GeneratorConfig gen;             // Syn-1 elaboration parameters
  std::int32_t num_chains = 8;
  std::int32_t chains_per_channel = 4;  // compaction ratio
  AtpgOptions atpg;
  // Tester fail-memory depth for this profile's production test program, in
  // failing patterns per die.  Programs with huge pattern sets (netcard)
  // configure shallower fail logging to bound test time, which is a large
  // part of why their diagnosis reports are so much coarser (Table V).
  std::int32_t fail_memory_patterns = 10;
  TestPointOptions tpi;            // for the TPI configuration
  std::uint64_t partition_seed = 11;
  std::uint64_t scan_seed = 5;
};

ProfileSpec profile_spec(Profile profile);

// Applies a design configuration to the Syn-1 spec: Syn-2 re-elaborates with
// a different seed and deeper logic; TPI/Par reuse the Syn-1 netlist and are
// handled at build time.
GeneratorConfig generator_for(const ProfileSpec& spec, DesignConfig config);
PartitionOptions partition_for(const ProfileSpec& spec, DesignConfig config);

}  // namespace m3dfl

#endif  // M3DFL_CORE_CONFIG_H_
