// Shared evaluation harness behind the benchmark binaries.
//
// ProfileExperiment owns, for one benchmark profile and one acquisition mode
// (with/without response compaction):
//   * the Syn-1 design and the transferable training set (Syn-1 + two
//     random partitions),
//   * the trained DiagnosisFramework,
//   * per-configuration evaluation producing the rows of paper Tables V-IX
//     and the series of Figs. 9-10,
// plus the multi-fault study (Table X), the standalone-model ablation
// (Table XI), and the dedicated-vs-transferred comparison (Fig. 6).
#ifndef M3DFL_CORE_EXPERIMENT_H_
#define M3DFL_CORE_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/framework.h"
#include "core/pipeline.h"
#include "diag/metrics.h"
#include "diag/padre.h"

namespace m3dfl {

struct ExperimentOptions {
  bool compacted = false;
  std::int32_t test_samples = 60;
  TransferTrainOptions train;
  FrameworkOptions framework;
  DiagnosisOptions diagnosis;
  double test_miv_prob = 0.0;
  std::uint64_t test_seed = 777;
};

// Aggregates for one diagnosis method over a test set.
struct MethodQuality {
  QualityStats stats;
  // Tier localization per the paper's Table VI definition: among reports the
  // raw ATPG diagnosis did NOT already confine to a single tier, the
  // fraction the method localizes to the faulty tier.
  std::int32_t localized = 0;
  std::int32_t eligible = 0;

  double tier_localization() const {
    return eligible == 0 ? 0.0
                         : static_cast<double>(localized) /
                               static_cast<double>(eligible);
  }
};

// One (profile, configuration) evaluation: the row content of Tables V-VIII.
struct ConfigResult {
  std::string profile;
  std::string config;
  QualityStats atpg;        // raw ATPG diagnosis reports (Tables V / VII)
  MethodQuality baseline;   // [11] first level, standalone
  MethodQuality gnn;        // proposed framework, standalone
  MethodQuality gnn_plus;   // proposed framework + [11]
  std::size_t backup_bytes = 0;  // backup-dictionary footprint

  // Deployment runtimes over the test set, seconds (Table IX / Fig. 9).
  double t_atpg = 0.0;    // ATPG diagnosis
  double t_gnn = 0.0;     // back-trace + feature extraction + GNN inference
  double t_update = 0.0;  // candidate pruning & reordering (+ [11] stacking)

  // Per-sample FHI pairs for the PFA time model (Fig. 10).
  std::vector<std::int32_t> fhi_atpg;
  std::vector<std::int32_t> fhi_updated;
};

class ProfileExperiment {
 public:
  ProfileExperiment(Profile profile, const ExperimentOptions& options);

  const Design& syn1() const { return *syn1_; }
  const DiagnosisFramework& framework() const { return framework_; }
  const LabeledDataset& training_set() const { return training_set_; }

  double training_seconds() const { return training_seconds_; }
  double datagen_seconds() const { return datagen_seconds_; }

  // Evaluates one design configuration with the (transferred) framework.
  ConfigResult evaluate(DesignConfig config) const;
  // Same, but on an externally built design/test set (used by ablations).
  ConfigResult evaluate_on(const Design& design,
                           const LabeledDataset& test) const;

 private:
  Profile profile_;
  ExperimentOptions options_;
  std::unique_ptr<Design> syn1_;
  LabeledDataset training_set_;
  DiagnosisFramework framework_;
  double training_seconds_ = 0.0;
  double datagen_seconds_ = 0.0;
};

// Builds a test set for a configuration of a profile.
LabeledDataset build_test_set(const Design& design,
                              const ExperimentOptions& options);

// ---- Fig. 6: dedicated vs transferred models -------------------------------

struct TransferabilityRow {
  std::string config;
  double dedicated_tier_acc = 0.0;
  double transferred_tier_acc = 0.0;
  double dedicated_miv_acc = 0.0;
  double transferred_miv_acc = 0.0;
};

std::vector<TransferabilityRow> evaluate_transferability(
    Profile profile, const ExperimentOptions& options);

// ---- Table X: multi-fault localization --------------------------------------

struct MultiFaultResult {
  std::string profile;
  QualityStats atpg;
  QualityStats refined;
  double tier_localization = 0.0;  // Tier-predictor correctness
};

// Trains on Syn-1 multi-fault samples (2-5 same-tier TDFs), tests on Syn-2.
MultiFaultResult evaluate_multifault(Profile profile,
                                     const ExperimentOptions& options);

// ---- Table XI: standalone-model ablation ------------------------------------

struct AblationResult {
  QualityStats atpg;
  QualityStats tier_only;   // Tier-predictor standalone
  QualityStats miv_only;    // MIV-pinpointer standalone
  QualityStats combined;    // both models (full policy)
};

// AES/Syn-1 with the test set augmented by 10% MIV-fault samples (paper
// Sec. VII-B).
AblationResult evaluate_individual_models(Profile profile,
                                          const ExperimentOptions& options);

}  // namespace m3dfl

#endif  // M3DFL_CORE_EXPERIMENT_H_
