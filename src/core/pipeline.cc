#include "core/pipeline.h"

namespace m3dfl {

void LabeledDataset::append(LabeledDataset&& other) {
  samples.insert(samples.end(),
                 std::make_move_iterator(other.samples.begin()),
                 std::make_move_iterator(other.samples.end()));
  graphs.insert(graphs.end(), std::make_move_iterator(other.graphs.begin()),
                std::make_move_iterator(other.graphs.end()));
}

Subgraph subgraph_for_log(const Design& design, const FailureLog& log) {
  const std::vector<NodeId> nodes =
      backtrace_candidates(design.graph(), design.context(), log);
  return extract_subgraph(design.graph(), nodes);
}

LabeledDataset build_dataset(const Design& design,
                             const DataGenOptions& options) {
  LabeledDataset data;
  data.samples = generate_samples(design.context(), options);
  data.graphs.reserve(data.samples.size());
  for (const Sample& sample : data.samples) {
    Subgraph sg = subgraph_for_log(design, sample.log);
    label_subgraph(sg, sample);
    data.graphs.push_back(std::move(sg));
  }
  return data;
}

LabeledDataset build_transfer_training_set(
    Profile profile, const Design& syn1,
    const TransferTrainOptions& options) {
  DataGenOptions gen;
  gen.num_samples = options.samples_syn1;
  gen.miv_fault_prob = options.miv_fault_prob;
  gen.compacted = options.compacted;
  gen.seed = options.seed;
  LabeledDataset data = build_dataset(syn1, gen);

  for (std::uint64_t k = 0; k < 2; ++k) {
    const std::unique_ptr<Design> random =
        Design::build_random_partition(profile, options.seed + 31 * (k + 1));
    DataGenOptions rgen = gen;
    rgen.num_samples = options.samples_per_random;
    rgen.seed = options.seed ^ (0xA5A5u + k);
    data.append(build_dataset(*random, rgen));
  }
  return data;
}

}  // namespace m3dfl
