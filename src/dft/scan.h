// Scan architecture.
//
// The designs are full-scan: every flop is a scan flop, stitched into one of
// N scan chains.  During LOC (launch-on-capture) transition-delay testing,
// the chains load the launch state, the capture clock stores the response,
// and the chains shift the response out — either directly (bypass mode) or
// through a space compactor (see dft/compactor.h).
//
// Flops are addressed here by *flop index*: the dense position of the flop in
// Netlist::flops().  This is the index space used by the simulator's state
// arrays and by failure logs.
#ifndef M3DFL_DFT_SCAN_H_
#define M3DFL_DFT_SCAN_H_

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace m3dfl {

// Scan-chain stitching of all flops in a netlist.
class ScanChains {
 public:
  ScanChains() = default;
  // Stitches the netlist's flops into `num_chains` chains of (nearly) equal
  // length in a seeded pseudo-physical order.  Chain position 0 is the cell
  // nearest the scan output (unloaded first).
  ScanChains(const Netlist& netlist, std::int32_t num_chains,
             std::uint64_t seed);
  // Wraps an externally provided stitching (e.g. a scan order read from a
  // file) verbatim, without validating it against the design: chains may
  // reference unknown flops, skip flops, or repeat them.  m3dfl::lint's
  // scan pass (scan-off-chain / scan-duplicate-cell) is the checker for
  // such imported orders.
  ScanChains(std::vector<std::vector<std::int32_t>> chains,
             std::int32_t num_flops);

  std::int32_t num_chains() const {
    return static_cast<std::int32_t>(chains_.size());
  }
  std::int32_t num_flops() const { return num_flops_; }
  // Longest chain length; shorter chains are conceptually padded at the tail.
  std::int32_t max_chain_length() const { return max_length_; }

  // Flop indices along chain `c`, position 0 first.
  const std::vector<std::int32_t>& chain(std::int32_t c) const {
    M3DFL_ASSERT(c >= 0 && c < num_chains());
    return chains_[static_cast<std::size_t>(c)];
  }

  std::int32_t chain_of_flop(std::int32_t flop_index) const {
    M3DFL_ASSERT(flop_index >= 0 && flop_index < num_flops_);
    return chain_of_[static_cast<std::size_t>(flop_index)];
  }
  std::int32_t position_of_flop(std::int32_t flop_index) const {
    M3DFL_ASSERT(flop_index >= 0 && flop_index < num_flops_);
    return position_of_[static_cast<std::size_t>(flop_index)];
  }
  // Flop index at (chain, position), or -1 past the chain's end.
  std::int32_t flop_at(std::int32_t c, std::int32_t position) const;

 private:
  std::vector<std::vector<std::int32_t>> chains_;
  std::vector<std::int32_t> chain_of_;
  std::vector<std::int32_t> position_of_;
  std::int32_t num_flops_ = 0;
  std::int32_t max_length_ = 0;
};

}  // namespace m3dfl

#endif  // M3DFL_DFT_SCAN_H_
