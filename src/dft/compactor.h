// XOR space compactor.
//
// Test compression reduces tester data volume by XOR-ing several scan chains
// into one output channel per shift cycle.  A failing tester bit then only
// identifies a (pattern, channel, shift-position) triple: any cell of any
// chain feeding that channel at that position may be the failing one.  This
// ambiguity is exactly why compaction degrades diagnostic resolution (paper
// Tables VII/VIII) — back-tracing must union the fan-in cones of all aliased
// cells.
//
// The compactor is combinational XOR (what the paper's framework is declared
// compatible with); designs also carry a bypass mode that scans raw
// responses out, modelled by simply not compacting.
#ifndef M3DFL_DFT_COMPACTOR_H_
#define M3DFL_DFT_COMPACTOR_H_

#include <cstdint>
#include <vector>

#include "dft/scan.h"

namespace m3dfl {

// Groups scan chains into XOR output channels.
class XorCompactor {
 public:
  XorCompactor() = default;
  // Channels cover `chains_per_channel` consecutive chains each; the last
  // channel may be narrower.  chains_per_channel is the compaction ratio.
  XorCompactor(const ScanChains& chains, std::int32_t chains_per_channel);

  std::int32_t num_channels() const {
    return static_cast<std::int32_t>(channels_.size());
  }
  std::int32_t chains_per_channel() const { return ratio_; }
  // Chain indices XOR-ed into channel `ch`.
  const std::vector<std::int32_t>& channel_chains(std::int32_t ch) const {
    M3DFL_ASSERT(ch >= 0 && ch < num_channels());
    return channels_[static_cast<std::size_t>(ch)];
  }
  std::int32_t channel_of_chain(std::int32_t chain) const {
    M3DFL_ASSERT(chain >= 0 &&
                 chain < static_cast<std::int32_t>(chain_to_channel_.size()));
    return chain_to_channel_[static_cast<std::size_t>(chain)];
  }

  // Flop indices observable at (channel, position): the cells of every chain
  // in the channel at that shift position.  This is the aliasing set used by
  // back-tracing in compacted mode.
  std::vector<std::int32_t> cells_at(const ScanChains& chains,
                                     std::int32_t channel,
                                     std::int32_t position) const;

 private:
  std::vector<std::vector<std::int32_t>> channels_;
  std::vector<std::int32_t> chain_to_channel_;
  std::int32_t ratio_ = 1;
};

}  // namespace m3dfl

#endif  // M3DFL_DFT_COMPACTOR_H_
