#include "dft/scan.h"

#include "util/rng.h"

namespace m3dfl {

ScanChains::ScanChains(const Netlist& netlist, std::int32_t num_chains,
                       std::uint64_t seed) {
  M3DFL_REQUIRE(netlist.finalized(), "scan stitching requires a finalized netlist");
  M3DFL_REQUIRE(num_chains > 0, "need at least one scan chain");
  num_flops_ = static_cast<std::int32_t>(netlist.flops().size());
  M3DFL_REQUIRE(num_flops_ > 0, "design has no flops to stitch");
  if (num_chains > num_flops_) num_chains = num_flops_;

  // Pseudo-physical stitching order: a seeded shuffle stands in for the
  // place-and-route-driven chain ordering of a physical design.
  std::vector<std::int32_t> order(static_cast<std::size_t>(num_flops_));
  for (std::int32_t i = 0; i < num_flops_; ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  Rng rng(seed);
  rng.shuffle(order);

  chains_.resize(static_cast<std::size_t>(num_chains));
  chain_of_.assign(static_cast<std::size_t>(num_flops_), -1);
  position_of_.assign(static_cast<std::size_t>(num_flops_), -1);
  for (std::int32_t i = 0; i < num_flops_; ++i) {
    const std::int32_t c = i % num_chains;
    const std::int32_t flop = order[static_cast<std::size_t>(i)];
    chain_of_[static_cast<std::size_t>(flop)] = c;
    position_of_[static_cast<std::size_t>(flop)] =
        static_cast<std::int32_t>(chains_[static_cast<std::size_t>(c)].size());
    chains_[static_cast<std::size_t>(c)].push_back(flop);
  }
  max_length_ = 0;
  for (const auto& c : chains_) {
    max_length_ = std::max(max_length_, static_cast<std::int32_t>(c.size()));
  }
}

ScanChains::ScanChains(std::vector<std::vector<std::int32_t>> chains,
                       std::int32_t num_flops)
    : chains_(std::move(chains)), num_flops_(num_flops) {
  M3DFL_REQUIRE(num_flops_ >= 0, "negative flop count");
  // Imported stitchings are taken verbatim; the reverse maps keep the first
  // occurrence of each flop and ignore out-of-range entries so the accessors
  // stay well-defined even for orders lint would reject.
  chain_of_.assign(static_cast<std::size_t>(num_flops_), -1);
  position_of_.assign(static_cast<std::size_t>(num_flops_), -1);
  max_length_ = 0;
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    const auto& chain = chains_[c];
    max_length_ = std::max(max_length_, static_cast<std::int32_t>(chain.size()));
    for (std::size_t p = 0; p < chain.size(); ++p) {
      const std::int32_t flop = chain[p];
      if (flop < 0 || flop >= num_flops_) continue;
      if (chain_of_[static_cast<std::size_t>(flop)] != -1) continue;
      chain_of_[static_cast<std::size_t>(flop)] = static_cast<std::int32_t>(c);
      position_of_[static_cast<std::size_t>(flop)] =
          static_cast<std::int32_t>(p);
    }
  }
}

std::int32_t ScanChains::flop_at(std::int32_t c, std::int32_t position) const {
  M3DFL_ASSERT(c >= 0 && c < num_chains());
  const auto& chain = chains_[static_cast<std::size_t>(c)];
  if (position < 0 || position >= static_cast<std::int32_t>(chain.size())) {
    return -1;
  }
  return chain[static_cast<std::size_t>(position)];
}

}  // namespace m3dfl
