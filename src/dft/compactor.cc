#include "dft/compactor.h"

namespace m3dfl {

XorCompactor::XorCompactor(const ScanChains& chains,
                           std::int32_t chains_per_channel) {
  M3DFL_REQUIRE(chains_per_channel > 0, "compaction ratio must be positive");
  ratio_ = chains_per_channel;
  const std::int32_t n = chains.num_chains();
  chain_to_channel_.assign(static_cast<std::size_t>(n), -1);
  for (std::int32_t c = 0; c < n; ++c) {
    const std::int32_t ch = c / chains_per_channel;
    if (ch == static_cast<std::int32_t>(channels_.size())) {
      channels_.emplace_back();
    }
    channels_[static_cast<std::size_t>(ch)].push_back(c);
    chain_to_channel_[static_cast<std::size_t>(c)] = ch;
  }
}

std::vector<std::int32_t> XorCompactor::cells_at(const ScanChains& chains,
                                                 std::int32_t channel,
                                                 std::int32_t position) const {
  std::vector<std::int32_t> cells;
  for (std::int32_t chain : channel_chains(channel)) {
    const std::int32_t flop = chains.flop_at(chain, position);
    if (flop >= 0) cells.push_back(flop);
  }
  return cells;
}

}  // namespace m3dfl
