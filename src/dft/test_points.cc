#include "dft/test_points.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.h"

namespace m3dfl {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Forward controllability propagation for one gate; fanin nets are ready.
void gate_controllability(const Netlist& nl, GateId g, Scoap& s) {
  const Gate& gate = nl.gate(g);
  if (gate.fanout == kNullNet) return;
  const auto out = static_cast<std::size_t>(gate.fanout);
  const auto c0 = [&](std::size_t i) {
    return s.cc0[static_cast<std::size_t>(gate.fanin[i])];
  };
  const auto c1 = [&](std::size_t i) {
    return s.cc1[static_cast<std::size_t>(gate.fanin[i])];
  };
  const std::size_t k = gate.fanin.size();
  double sum0 = 0.0;
  double sum1 = 0.0;
  double min0 = kInf;
  double min1 = kInf;
  for (std::size_t i = 0; i < k; ++i) {
    sum0 += c0(i);
    sum1 += c1(i);
    min0 = std::min(min0, c0(i));
    min1 = std::min(min1, c1(i));
  }
  switch (gate.type) {
    case GateType::kBuf:
      s.cc0[out] = c0(0) + 1;
      s.cc1[out] = c1(0) + 1;
      break;
    case GateType::kInv:
      s.cc0[out] = c1(0) + 1;
      s.cc1[out] = c0(0) + 1;
      break;
    case GateType::kAnd:
      s.cc1[out] = sum1 + 1;
      s.cc0[out] = min0 + 1;
      break;
    case GateType::kNand:
      s.cc0[out] = sum1 + 1;
      s.cc1[out] = min0 + 1;
      break;
    case GateType::kOr:
      s.cc0[out] = sum0 + 1;
      s.cc1[out] = min1 + 1;
      break;
    case GateType::kNor:
      s.cc1[out] = sum0 + 1;
      s.cc0[out] = min1 + 1;
      break;
    case GateType::kXor:
      s.cc1[out] = std::min(c0(0) + c1(1), c1(0) + c0(1)) + 1;
      s.cc0[out] = std::min(c0(0) + c0(1), c1(0) + c1(1)) + 1;
      break;
    case GateType::kXnor:
      s.cc0[out] = std::min(c0(0) + c1(1), c1(0) + c0(1)) + 1;
      s.cc1[out] = std::min(c0(0) + c0(1), c1(0) + c1(1)) + 1;
      break;
    case GateType::kMux:
      // inputs: [sel, a, b]
      s.cc1[out] = std::min(c0(0) + c1(1), c1(0) + c1(2)) + 1;
      s.cc0[out] = std::min(c0(0) + c0(1), c1(0) + c0(2)) + 1;
      break;
    default:
      M3DFL_ASSERT(false);
  }
}

// Backward observability for one gate: given CO of the output net, derive CO
// contributions for each input pin and fold them into the input nets.
void gate_observability(const Netlist& nl, GateId g, Scoap& s) {
  const Gate& gate = nl.gate(g);
  if (gate.fanout == kNullNet) return;
  const double out_co = s.co[static_cast<std::size_t>(gate.fanout)];
  const std::size_t k = gate.fanin.size();
  const auto c0 = [&](std::size_t i) {
    return s.cc0[static_cast<std::size_t>(gate.fanin[i])];
  };
  const auto c1 = [&](std::size_t i) {
    return s.cc1[static_cast<std::size_t>(gate.fanin[i])];
  };
  const auto fold = [&](std::size_t i, double co) {
    double& slot = s.co[static_cast<std::size_t>(gate.fanin[i])];
    slot = std::min(slot, co);
  };
  switch (gate.type) {
    case GateType::kBuf:
    case GateType::kInv:
      fold(0, out_co + 1);
      break;
    case GateType::kAnd:
    case GateType::kNand:
      for (std::size_t i = 0; i < k; ++i) {
        double side = 0.0;
        for (std::size_t j = 0; j < k; ++j) {
          if (j != i) side += c1(j);
        }
        fold(i, out_co + side + 1);
      }
      break;
    case GateType::kOr:
    case GateType::kNor:
      for (std::size_t i = 0; i < k; ++i) {
        double side = 0.0;
        for (std::size_t j = 0; j < k; ++j) {
          if (j != i) side += c0(j);
        }
        fold(i, out_co + side + 1);
      }
      break;
    case GateType::kXor:
    case GateType::kXnor:
      fold(0, out_co + std::min(c0(1), c1(1)) + 1);
      fold(1, out_co + std::min(c0(0), c1(0)) + 1);
      break;
    case GateType::kMux:
      // Observing sel requires the two data inputs to differ.
      fold(0, out_co + std::min(c0(1) + c1(2), c1(1) + c0(2)) + 1);
      fold(1, out_co + c0(0) + 1);  // a observed when sel=0
      fold(2, out_co + c1(0) + 1);  // b observed when sel=1
      break;
    default:
      M3DFL_ASSERT(false);
  }
}

}  // namespace

Scoap compute_scoap(const Netlist& netlist) {
  M3DFL_REQUIRE(netlist.finalized(), "SCOAP requires a finalized netlist");
  Scoap s;
  const auto n = static_cast<std::size_t>(netlist.num_nets());
  s.cc0.assign(n, kInf);
  s.cc1.assign(n, kInf);
  s.co.assign(n, kInf);

  // Sources are directly controllable: PIs from the tester, flop Qs by scan.
  for (GateId g : netlist.primary_inputs()) {
    s.cc0[static_cast<std::size_t>(netlist.gate(g).fanout)] = 1.0;
    s.cc1[static_cast<std::size_t>(netlist.gate(g).fanout)] = 1.0;
  }
  for (GateId g : netlist.flops()) {
    s.cc0[static_cast<std::size_t>(netlist.gate(g).fanout)] = 1.0;
    s.cc1[static_cast<std::size_t>(netlist.gate(g).fanout)] = 1.0;
  }
  for (GateId g : netlist.topo_order()) gate_controllability(netlist, g, s);

  // Sinks are directly observable: POs on the tester, flop Ds by scan.
  for (GateId g : netlist.primary_outputs()) {
    s.co[static_cast<std::size_t>(netlist.gate(g).fanin[0])] = 0.0;
  }
  for (GateId g : netlist.flops()) {
    s.co[static_cast<std::size_t>(netlist.gate(g).fanin[0])] = 0.0;
  }
  const auto& topo = netlist.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    gate_observability(netlist, *it, s);
  }
  return s;
}

TestPointSummary insert_test_points(Netlist& netlist,
                                    const TestPointOptions& options) {
  M3DFL_REQUIRE(netlist.finalized(), "TPI requires a finalized netlist");
  M3DFL_REQUIRE(options.fraction >= 0.0 && options.fraction <= 0.2,
                "test-point fraction out of range");
  const Scoap scoap = compute_scoap(netlist);
  const auto budget = static_cast<std::int32_t>(
      options.fraction * static_cast<double>(netlist.num_logic_gates()));
  TestPointSummary summary;
  if (budget == 0) return summary;

  auto n_obs = static_cast<std::int32_t>(
      std::round(options.observe_share * static_cast<double>(budget)));
  n_obs = std::clamp(n_obs, 0, budget);
  const std::int32_t n_ctl = budget - n_obs;

  // Rank nets by the testability cost each point kind addresses.  Infinite
  // scores (structurally dead logic) are ranked first — exactly the nets a
  // TP rescues.
  std::vector<NetId> by_observability;
  std::vector<NetId> by_controllability;
  for (NetId net = 0; net < netlist.num_nets(); ++net) {
    by_observability.push_back(net);
    by_controllability.push_back(net);
  }
  const auto co_key = [&](NetId net) {
    return scoap.co[static_cast<std::size_t>(net)];
  };
  const auto cc_key = [&](NetId net) {
    return std::max(scoap.cc0[static_cast<std::size_t>(net)],
                    scoap.cc1[static_cast<std::size_t>(net)]);
  };
  std::stable_sort(by_observability.begin(), by_observability.end(),
                   [&](NetId a, NetId b) { return co_key(a) > co_key(b); });
  std::stable_sort(by_controllability.begin(), by_controllability.end(),
                   [&](NetId a, NetId b) { return cc_key(a) > cc_key(b); });

  Rng rng(options.seed);
  netlist.definalize();

  // Observation points: a new scan flop whose D pin senses the net.
  for (std::int32_t i = 0; i < n_obs && i < netlist.num_nets(); ++i) {
    const NetId target = by_observability[static_cast<std::size_t>(i)];
    const GateId ff = netlist.add_gate(
        GateType::kScanFlop, "tpobs" + std::to_string(summary.num_observe));
    const NetId q = netlist.add_net();
    netlist.set_output(ff, q);
    netlist.connect_input(ff, target);
    ++summary.num_observe;
  }

  // Control points: splice the net through an AND (force-0) or OR (force-1)
  // gate whose second input is a fresh test PI.  Random pattern fill then
  // drives the control input, improving downstream controllability.
  for (std::int32_t i = 0; i < n_ctl && i < netlist.num_nets(); ++i) {
    const NetId target = by_controllability[static_cast<std::size_t>(i)];
    // Redirect all sinks of `target` to a new net fed by the control gate.
    // Sink lists were dropped by definalize(); rediscover from gate fanins.
    const bool force0 = rng.next_bool();
    const GateId pi = netlist.add_gate(
        GateType::kPrimaryInput, "tpctl_in" + std::to_string(summary.num_control));
    const NetId pin = netlist.add_net();
    netlist.set_output(pi, pin);
    const GateId ctl = netlist.add_gate(
        force0 ? GateType::kAnd : GateType::kOr,
        "tpctl" + std::to_string(summary.num_control));
    const NetId out = netlist.add_net();
    netlist.set_output(ctl, out);

    for (GateId g = 0; g < netlist.num_gates(); ++g) {
      if (g == ctl) continue;
      const Gate& gate = netlist.gate(g);
      for (std::size_t p = 0; p < gate.fanin.size(); ++p) {
        if (gate.fanin[p] == target) {
          netlist.reconnect_input(g, static_cast<std::int32_t>(p), out);
        }
      }
    }
    netlist.connect_input(ctl, target);
    netlist.connect_input(ctl, pin);
    ++summary.num_control;
  }

  netlist.finalize();
  return summary;
}

}  // namespace m3dfl
