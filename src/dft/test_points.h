// SCOAP testability analysis and test-point insertion (TPI).
//
// Test points are the DfT structures behind the paper's "TPI" design
// configuration.  We compute SCOAP-style controllability/observability
// estimates and insert:
//  * observation points — a new scan flop sensing a hard-to-observe net,
//    which directly adds diagnosis observation points; and
//  * control points    — an AND/OR gate spliced into a hard-to-control net,
//    driven by a new test-input PI, improving downstream controllability.
//
// The paper caps test points at 1% of the gate count and lets the ATPG tool
// choose locations; we reproduce that contract with the SCOAP ranking.
#ifndef M3DFL_DFT_TEST_POINTS_H_
#define M3DFL_DFT_TEST_POINTS_H_

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace m3dfl {

// SCOAP combinational testability measures per net.
struct Scoap {
  std::vector<double> cc0;  // controllability to 0
  std::vector<double> cc1;  // controllability to 1
  std::vector<double> co;   // observability (min over sink pins)
};

// Computes SCOAP measures for a finalized full-scan netlist.  Flop outputs
// are scan-controllable (CC=1); flop D inputs and POs are scan-observable
// (CO=0).
Scoap compute_scoap(const Netlist& netlist);

struct TestPointOptions {
  // Total test points as a fraction of the logic gate count (paper: 1%).
  double fraction = 0.01;
  // Split between observation and control points.
  double observe_share = 0.6;
  std::uint64_t seed = 1;
};

struct TestPointSummary {
  std::int32_t num_observe = 0;
  std::int32_t num_control = 0;
};

// Inserts test points into `netlist` (which is definalized, modified, and
// re-finalized).  New observation flops are appended to the flop list, so
// scan chains must be (re)built afterwards.
TestPointSummary insert_test_points(Netlist& netlist,
                                    const TestPointOptions& options);

}  // namespace m3dfl

#endif  // M3DFL_DFT_TEST_POINTS_H_
