#include "lint/lint.h"

#include "core/framework.h"

namespace m3dfl::lint {

namespace {

Subject design_subject(const Design& design) {
  Subject subject;
  subject.netlist = &design.netlist();
  subject.tiers = &design.tiers();
  subject.mivs = &design.mivs();
  subject.scan = &design.scan();
  subject.compactor = &design.compactor();
  subject.graph = &design.graph();
  return subject;
}

}  // namespace

Report lint_design(const Design& design) {
  return run_checks(design_subject(design));
}

Report lint_failure_log(const Design& design, const FailureLog& log) {
  Subject subject = design_subject(design);
  subject.log = &log;
  subject.num_patterns = design.patterns().num_patterns;
  return run_checks(subject);
}

Report lint_model(const DiagnosisFramework& model, const Design* design) {
  Subject subject;
  if (design != nullptr) subject = design_subject(*design);
  subject.model = &model;
  return run_checks(subject);
}

Report lint_subgraph(const Subgraph& subgraph, std::string scope) {
  Subject subject;
  subject.subgraph = &subgraph;
  subject.feature_scope = std::move(scope);
  Report report;
  run_feature_checks(subject, report);
  return report;
}

Report lint_training_set(std::span<const Subgraph> graphs) {
  Report report;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    report.merge(lint_subgraph(graphs[i],
                               "sample " + std::to_string(i) + ", "));
  }
  return report;
}

Report lint_mnl(const std::string& text, const std::string& source) {
  Report report;
  const NetlistFacts facts = NetlistFacts::from_mnl(text, source, report);
  Subject subject;
  subject.facts = &facts;
  run_netlist_checks(subject, report);
  return report;
}

}  // namespace m3dfl::lint
