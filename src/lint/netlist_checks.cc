// Netlist structural checks (lint pass 1).
//
// These run on NetlistFacts so they can diagnose netlists that Netlist
// itself refuses to hold (multi-driver nets, bad arity) — e.g. from a
// leniently scanned MNL file — as well as in-memory netlists that have not
// been finalized yet.  On any netlist that finalize() accepted, every check
// here is clean by construction except none: the generator/TPI flows cannot
// produce findings, which is exactly what the clean-design corpus test pins.
#include <algorithm>
#include <vector>

#include "lint/checks.h"

namespace m3dfl::lint {

namespace {

void check_arity(const NetlistFacts& facts, Emitter& emit) {
  for (std::int32_t g = 0; g < facts.num_gates(); ++g) {
    const FactsGate& gate = facts.gates[static_cast<std::size_t>(g)];
    const int fanin = static_cast<int>(gate.fanin.size());
    const int lo = min_fanin(gate.type);
    const int hi = max_fanin(gate.type);
    if (fanin < lo || fanin > hi) {
      emit.emit("net-arity", facts.gate_loc(g),
                std::string(gate_type_name(gate.type)) + " has " +
                    std::to_string(fanin) + " input(s), expected " +
                    std::to_string(lo) +
                    (lo == hi ? "" : ".." + std::to_string(hi)));
    }
    if (!has_output(gate.type) && gate.fanout >= 0) {
      emit.emit("net-arity", facts.gate_loc(g),
                std::string(gate_type_name(gate.type)) +
                    " declares an output net but its type has no output "
                    "pin");
    }
  }
}

void check_floating_pins(const NetlistFacts& facts, Emitter& emit) {
  for (std::int32_t g = 0; g < facts.num_gates(); ++g) {
    const FactsGate& gate = facts.gates[static_cast<std::size_t>(g)];
    if (has_output(gate.type) && gate.fanout < 0) {
      emit.emit("net-floating-pin", facts.gate_loc(g),
                std::string(gate_type_name(gate.type)) +
                    " output pin drives no net");
    }
  }
}

void check_drivers(const NetlistFacts& facts, Emitter& emit) {
  // A net needs exactly one driver; readers make an undriven net an error.
  std::vector<char> read(static_cast<std::size_t>(facts.num_nets), 0);
  for (const FactsGate& gate : facts.gates) {
    for (const std::int32_t net : gate.fanin) {
      read[static_cast<std::size_t>(net)] = 1;
    }
  }
  for (std::int32_t n = 0; n < facts.num_nets; ++n) {
    const auto& drivers = facts.net_drivers[static_cast<std::size_t>(n)];
    if (drivers.size() > 1) {
      std::string who;
      for (std::size_t i = 0; i < drivers.size(); ++i) {
        who += (i ? ", " : "") + facts.gate_loc(drivers[i]);
      }
      emit.emit("net-multi-driver", facts.net_loc(n),
                std::to_string(drivers.size()) + " drivers (" + who + ")");
    } else if (drivers.empty() && read[static_cast<std::size_t>(n)]) {
      emit.emit("net-undriven", facts.net_loc(n),
                "net is read but no gate drives it");
    }
  }
}

// Combinational cycle detection: iterative 3-color DFS over comb gates,
// following fanout-net -> reader edges.  Flops and ports break paths (their
// outputs are launch sources, not traversals).
void check_loops(const NetlistFacts& facts, Emitter& emit) {
  const std::size_t n = static_cast<std::size_t>(facts.num_gates());
  // Reader lists per net (combinational readers only).
  std::vector<std::vector<std::int32_t>> readers(
      static_cast<std::size_t>(facts.num_nets));
  for (std::int32_t g = 0; g < facts.num_gates(); ++g) {
    const FactsGate& gate = facts.gates[static_cast<std::size_t>(g)];
    if (!is_combinational(gate.type)) continue;
    for (const std::int32_t net : gate.fanin) {
      readers[static_cast<std::size_t>(net)].push_back(g);
    }
  }
  std::vector<std::uint8_t> color(n, 0);  // 0 white, 1 on stack, 2 done
  std::vector<std::pair<std::int32_t, std::size_t>> stack;
  for (std::int32_t root = 0; root < facts.num_gates(); ++root) {
    if (color[static_cast<std::size_t>(root)] != 0 ||
        !is_combinational(facts.gates[static_cast<std::size_t>(root)].type)) {
      continue;
    }
    stack.emplace_back(root, 0);
    color[static_cast<std::size_t>(root)] = 1;
    static const std::vector<std::int32_t> kNoReaders;
    while (!stack.empty()) {
      auto& [g, next] = stack.back();
      const FactsGate& gate = facts.gates[static_cast<std::size_t>(g)];
      // A floating-output comb gate (net-floating-pin) has no successors.
      const auto& succ = gate.fanout >= 0
                             ? readers[static_cast<std::size_t>(gate.fanout)]
                             : kNoReaders;
      bool descended = false;
      while (next < succ.size()) {
        const std::int32_t s = succ[next++];
        const std::uint8_t c = color[static_cast<std::size_t>(s)];
        if (c == 1) {
          emit.emit("net-comb-loop", facts.gate_loc(s),
                    "combinational cycle through " +
                        std::string(gate_type_name(
                            facts.gates[static_cast<std::size_t>(s)].type)) +
                        " (reached from " + facts.gate_loc(g) + ")");
          continue;
        }
        if (c == 0) {
          color[static_cast<std::size_t>(s)] = 1;
          stack.emplace_back(s, 0);
          descended = true;
          break;
        }
      }
      if (!descended && (stack.empty() || stack.back().first == g)) {
        color[static_cast<std::size_t>(g)] = 2;
        stack.pop_back();
      }
    }
  }
}

// Forward reachability from sources (PIs and flop outputs) through driven
// nets; a combinational gate no source can reach is dead logic.
void check_reachability(const NetlistFacts& facts, Emitter& emit) {
  std::vector<char> net_live(static_cast<std::size_t>(facts.num_nets), 0);
  std::vector<char> gate_live(static_cast<std::size_t>(facts.num_gates()), 0);
  std::vector<std::int32_t> frontier;
  for (std::int32_t g = 0; g < facts.num_gates(); ++g) {
    const FactsGate& gate = facts.gates[static_cast<std::size_t>(g)];
    if (!is_combinational(gate.type)) {
      gate_live[static_cast<std::size_t>(g)] = 1;
      if (gate.fanout >= 0 &&
          !net_live[static_cast<std::size_t>(gate.fanout)]) {
        net_live[static_cast<std::size_t>(gate.fanout)] = 1;
        frontier.push_back(gate.fanout);
      }
    }
  }
  // Net -> reading comb gates (recomputed here; cheap relative to clarity).
  std::vector<std::vector<std::int32_t>> readers(
      static_cast<std::size_t>(facts.num_nets));
  for (std::int32_t g = 0; g < facts.num_gates(); ++g) {
    const FactsGate& gate = facts.gates[static_cast<std::size_t>(g)];
    if (!is_combinational(gate.type)) continue;
    for (const std::int32_t net : gate.fanin) {
      readers[static_cast<std::size_t>(net)].push_back(g);
    }
  }
  while (!frontier.empty()) {
    const std::int32_t net = frontier.back();
    frontier.pop_back();
    for (const std::int32_t g : readers[static_cast<std::size_t>(net)]) {
      if (gate_live[static_cast<std::size_t>(g)]) continue;
      gate_live[static_cast<std::size_t>(g)] = 1;
      const FactsGate& gate = facts.gates[static_cast<std::size_t>(g)];
      if (gate.fanout >= 0 &&
          !net_live[static_cast<std::size_t>(gate.fanout)]) {
        net_live[static_cast<std::size_t>(gate.fanout)] = 1;
        frontier.push_back(gate.fanout);
      }
    }
  }
  for (std::int32_t g = 0; g < facts.num_gates(); ++g) {
    if (gate_live[static_cast<std::size_t>(g)]) continue;
    emit.emit("net-unreachable", facts.gate_loc(g),
              std::string(gate_type_name(
                  facts.gates[static_cast<std::size_t>(g)].type)) +
                  " is unreachable from every primary input and flop");
  }
}

}  // namespace

void run_netlist_checks(const Subject& subject, Report& report) {
  NetlistFacts local;
  const NetlistFacts* facts = subject.facts;
  if (facts == nullptr) {
    if (subject.netlist == nullptr) return;
    local = NetlistFacts::from_netlist(*subject.netlist);
    facts = &local;
  }
  Emitter emit(report);
  check_arity(*facts, emit);
  check_floating_pins(*facts, emit);
  check_drivers(*facts, emit);
  check_loops(*facts, emit);
  check_reachability(*facts, emit);
}

}  // namespace m3dfl::lint
