// The lint checker registry and engine.
//
// A Subject bundles (const pointers to) whatever pipeline artifacts the
// caller has; run_checks() runs every registered check whose inputs are
// present, in pipeline order (netlist -> M3D -> scan/DfT -> graph ->
// features -> failure log -> model).  Passes are *gated*: once a pass finds
// errors in an artifact, downstream passes that would dereference that
// artifact's invariants (e.g. the graph cross-check calling
// TierAssignment::tier_of) are skipped, so the engine itself never trips
// over the defects it is reporting.
//
// The check catalog (ids, severities, summaries, remediation hints) is a
// static table — the single source of truth rendered into docs/LINT.md and
// consulted by the Emitter so every diagnostic of one check id carries the
// same severity and hint.
#ifndef M3DFL_LINT_CHECKS_H_
#define M3DFL_LINT_CHECKS_H_

#include <cstdint>
#include <span>
#include <string>

#include "dft/compactor.h"
#include "dft/scan.h"
#include "diag/failure_log.h"
#include "graph/hetero_graph.h"
#include "graph/subgraph.h"
#include "lint/diagnostic.h"
#include "lint/netlist_facts.h"
#include "m3d/miv.h"
#include "m3d/partition.h"
#include "netlist/netlist.h"

namespace m3dfl {
class DiagnosisFramework;  // core/framework.h; full type needed only in .cc
}

namespace m3dfl::lint {

// Pre-extracted facts about one serving-session journal segment
// (serve/journal.h scans produce these; lint itself never reads serve
// state, keeping the dependency arrow serve -> lint).
struct JournalSegmentFacts {
  std::string path;
  std::size_t records = 0;            // valid frames in the segment
  std::int64_t newest_wall_ms = -1;   // newest record timestamp; -1 = none
  std::size_t newest_offset = 0;      // byte offset of that record's frame
};

struct JournalFacts {
  std::vector<JournalSegmentFacts> segments;
  // Session lifetime deadline the serving layer runs with; 0 = none
  // configured (the staleness check stays quiet).
  double session_lifetime_ms = 0.0;
  std::int64_t now_wall_ms = 0;
};

// Pre-extracted facts from a static timing & testability analysis
// (sta/lint_bridge.h produces these; lint never runs STA itself, keeping
// the dependency arrow sta -> lint).
struct TimingFacts {
  double clock_ps = 0.0;
  double wns_ps = 0.0;
  double tns_ps = 0.0;

  // Capture endpoints that miss the clock, worst first.
  struct NegativeSlackPath {
    std::string location;  // endpoint pin name, e.g. "ff12.A0"
    double slack_ps = 0.0;
    double delay_ps = 0.0;  // arrival at the endpoint
  };
  std::vector<NegativeSlackPath> negative_slack;

  // Delay-fault sites no test can detect.
  struct Untestable {
    std::string location;  // pin name or "miv 3 (net n42)"
    std::string why;       // reason name from sta::untestable_reason_name
    double slack_ps = 0.0;
  };
  std::vector<Untestable> untestable;

  // MIV far branches whose slack is inside the margin threshold.
  struct MivMargin {
    std::string location;  // "miv 3 (net n42) -> u7.A1"
    double slack_ps = 0.0;
  };
  std::vector<MivMargin> tight_mivs;
  double miv_margin_threshold_ps = 0.0;

  // Inconsistencies found in a CollapsedFaults mapping.
  struct CollapseOrphan {
    std::string location;  // "fault 12 (u3.Y slow-to-rise)" / "class 4"
    std::string what;      // which invariant is broken
  };
  std::vector<CollapseOrphan> collapse_orphans;
  std::int64_t collapse_faults = 0;
  std::int64_t collapse_classes = 0;
};

// Static metadata of one check.
struct CheckInfo {
  const char* id;            // stable, kebab-case
  ArtifactKind artifact;
  Severity severity;
  const char* summary;       // one line, for the catalog / docs
  const char* hint;          // one-line remediation
};

// Every registered check, in pass order.
std::span<const CheckInfo> check_catalog();
// Metadata for one id; throws m3dfl::Error for an unknown id (a typo in a
// checker is a bug, not a diagnostic).
const CheckInfo& check_info(std::string_view id);

// Everything the engine can look at.  All pointers optional; checks run
// only when their inputs are present.  Pointers must stay valid for the
// duration of run_checks().
struct Subject {
  // Netlist structure: either a Netlist (finalized or mid-construction) or
  // pre-extracted NetlistFacts (e.g. from a leniently parsed MNL file).
  // When both are set, `facts` wins for the netlist pass; the deeper passes
  // always use `netlist` and require it finalized.
  const Netlist* netlist = nullptr;
  const NetlistFacts* facts = nullptr;

  // M3D partition artifacts.
  const TierAssignment* tiers = nullptr;
  const MivMap* mivs = nullptr;

  // Scan/DfT artifacts.
  const ScanChains* scan = nullptr;
  const XorCompactor* compactor = nullptr;

  // Heterogeneous diagnosis graph.
  const HeteroGraph* graph = nullptr;

  // One back-traced subgraph whose feature matrix should be checked.
  const Subgraph* subgraph = nullptr;
  // Location prefix for feature diagnostics (e.g. "sample 12, "); lets the
  // training preflight cite which dataset element is poisoned.
  std::string feature_scope;

  // Failure log, checked against the design artifacts above.
  const FailureLog* log = nullptr;
  // Test-program pattern count the log's pattern indices must respect
  // (negative = unknown, skip pattern-range checks).
  std::int32_t num_patterns = -1;

  // Trained model, checked for internal consistency and (when the design
  // artifacts are present) design compatibility.
  const DiagnosisFramework* model = nullptr;

  // Serving-session journal facts (crash-safe serving, docs/SERVING.md).
  const JournalFacts* journal = nullptr;

  // Timing/testability facts (sta/lint_bridge.h, docs/ANALYSIS.md).
  const TimingFacts* timing = nullptr;
};

// Emits diagnostics with catalog-backed severity/artifact/hint, capping the
// output per check id so one systemic defect (e.g. a wholesale tier
// mismatch) cannot drown the report in thousands of identical lines.
class Emitter {
 public:
  explicit Emitter(Report& report, std::int32_t per_check_cap = 16)
      : report_(report), cap_(per_check_cap) {}
  ~Emitter();

  Emitter(const Emitter&) = delete;
  Emitter& operator=(const Emitter&) = delete;

  // Adds a diagnostic for `check_id`; severity/artifact/hint come from the
  // catalog.  Returns false once the cap for this id is reached (the
  // checker may stop scanning early).
  bool emit(std::string_view check_id, std::string location,
            std::string message);

 private:
  struct Tally {
    std::string id;
    std::int32_t count = 0;
  };
  Report& report_;
  std::int32_t cap_;
  std::vector<Tally> tallies_;
};

// ---- Individual passes ------------------------------------------------------
// Exposed for tests; run_checks() is the production entry point.

void run_netlist_checks(const Subject& subject, Report& report);
void run_m3d_checks(const Subject& subject, Report& report);
void run_scan_checks(const Subject& subject, Report& report);
void run_graph_checks(const Subject& subject, Report& report);
void run_feature_checks(const Subject& subject, Report& report);
void run_failure_log_checks(const Subject& subject, Report& report);
void run_model_checks(const Subject& subject, Report& report);
void run_journal_checks(const Subject& subject, Report& report);
void run_timing_checks(const Subject& subject, Report& report);

// Runs every applicable pass in pipeline order with inter-pass gating.
Report run_checks(const Subject& subject);

}  // namespace m3dfl::lint

#endif  // M3DFL_LINT_CHECKS_H_
