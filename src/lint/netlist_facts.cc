#include "lint/netlist_facts.h"

#include <sstream>

#include "lint/checks.h"
#include "lint/diagnostic.h"

namespace m3dfl::lint {

std::string NetlistFacts::gate_loc(std::int32_t gate) const {
  const FactsGate& g = gates[static_cast<std::size_t>(gate)];
  if (!source.empty() && g.line > 0) {
    return source + ":" + std::to_string(g.line);
  }
  std::string loc = "gate " + std::to_string(gate);
  if (!g.name.empty()) loc += " (" + g.name + ")";
  return loc;
}

std::string NetlistFacts::net_loc(std::int32_t net) const {
  return "net " + std::to_string(net);
}

NetlistFacts NetlistFacts::from_netlist(const Netlist& netlist) {
  NetlistFacts facts;
  facts.design_name = netlist.name();
  facts.num_nets = netlist.num_nets();
  facts.net_drivers.assign(static_cast<std::size_t>(netlist.num_nets()), {});
  facts.gates.reserve(static_cast<std::size_t>(netlist.num_gates()));
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const Gate& gate = netlist.gate(g);
    FactsGate fg;
    fg.type = gate.type;
    fg.name = gate.name;
    fg.fanin = gate.fanin;
    fg.fanout = gate.fanout;
    facts.gates.push_back(std::move(fg));
    if (gate.fanout != kNullNet) {
      facts.net_drivers[static_cast<std::size_t>(gate.fanout)].push_back(g);
    }
  }
  return facts;
}

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

bool parse_i32(const std::string& s, std::int32_t& out) {
  try {
    std::size_t pos = 0;
    const long v = std::stol(s, &pos);
    if (pos != s.size()) return false;
    if (v < INT32_MIN || v > INT32_MAX) return false;
    out = static_cast<std::int32_t>(v);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

NetlistFacts NetlistFacts::from_mnl(const std::string& text,
                                    const std::string& source,
                                    Report& parse_diags) {
  NetlistFacts facts;
  facts.source = source;
  Emitter emit(parse_diags);
  const auto loc = [&](int line_no) {
    return source + ":" + std::to_string(line_no);
  };

  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  const auto note_net = [&](std::int32_t net) {
    if (net >= facts.num_nets) {
      facts.num_nets = net + 1;
      facts.net_drivers.resize(static_cast<std::size_t>(facts.num_nets));
    }
  };

  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto toks = split_ws(line);
    if (toks.empty()) continue;
    if (!saw_header) {
      if (toks[0] != "mnl" || toks.size() != 2 || toks[1] != "1") {
        emit.emit("mnl-syntax", loc(line_no),
                  "not an MNL stream: expected 'mnl 1' header, found '" +
                      line + "'");
        return facts;
      }
      saw_header = true;
      continue;
    }
    if (toks[0] == "design") {
      if (toks.size() == 2) {
        facts.design_name = toks[1];
      } else {
        emit.emit("mnl-syntax", loc(line_no),
                  "bad design record (expected 'design <name>')");
      }
      continue;
    }
    if (toks[0] == "end") break;
    if (toks[0] != "gate") {
      emit.emit("mnl-syntax", loc(line_no),
                "unknown record '" + toks[0] + "'");
      continue;
    }
    if (toks.size() != 6) {
      emit.emit("mnl-syntax", loc(line_no),
                "truncated 'gate' record (expected 6 fields, got " +
                    std::to_string(toks.size()) + ")");
      continue;
    }
    std::int32_t id = -1;
    if (!parse_i32(toks[1], id) || id != facts.num_gates()) {
      emit.emit("mnl-syntax", loc(line_no),
                "bad gate id '" + toks[1] + "' (expected dense id " +
                    std::to_string(facts.num_gates()) + ")");
      continue;
    }
    FactsGate gate;
    gate.line = line_no;
    gate.name = toks[3];
    try {
      gate.type = parse_gate_type(toks[2]);
    } catch (const Error&) {
      emit.emit("mnl-syntax", loc(line_no),
                "unknown gate type '" + toks[2] + "'");
      continue;
    }
    // out=<net|->  — a second driver of the same net is recorded, not
    // rejected: diagnosing it is the point of the netlist pass.
    bool ok = true;
    if (toks[4].rfind("out=", 0) != 0 || toks[4].size() < 5) {
      ok = false;
    } else if (const std::string out = toks[4].substr(4); out != "-") {
      std::int32_t net = -1;
      if (!parse_i32(out, net) || net < 0) {
        ok = false;
      } else {
        note_net(net);
        gate.fanout = net;
      }
    }
    // in=<net,net,...|->
    if (ok && (toks[5].rfind("in=", 0) != 0 || toks[5].size() < 4)) ok = false;
    if (ok) {
      const std::string in = toks[5].substr(3);
      if (in != "-") {
        std::size_t start = 0;
        while (ok && start <= in.size()) {
          const std::size_t comma = in.find(',', start);
          const std::string tok =
              in.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
          std::int32_t net = -1;
          if (!parse_i32(tok, net) || net < 0) {
            ok = false;
            break;
          }
          note_net(net);
          gate.fanin.push_back(net);
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
      }
    }
    if (!ok) {
      emit.emit("mnl-syntax", loc(line_no),
                "bad gate connections (expected 'out=<net|-> "
                "in=<net,net,...|->')");
      continue;
    }
    if (gate.fanout >= 0) {
      facts.net_drivers[static_cast<std::size_t>(gate.fanout)].push_back(
          facts.num_gates());
    }
    facts.gates.push_back(std::move(gate));
  }
  if (!saw_header) {
    emit.emit("mnl-syntax", source + ":1",
              "empty input (expected 'mnl 1' header)");
  }
  return facts;
}

}  // namespace m3dfl::lint
