// Data-artifact checks (lint passes 5-7): feature matrices, failure logs,
// and model/design compatibility.
#include <cmath>
#include <map>
#include <set>

#include "core/framework.h"
#include "graph/features.h"
#include "lint/checks.h"

namespace m3dfl::lint {

namespace {

constexpr float kRangeEps = 1e-4f;

bool is_code(float v, float code) { return std::fabs(v - code) <= kRangeEps; }

std::string cell_loc(const std::string& scope, std::int32_t row,
                     std::int32_t col) {
  return scope + "node " + std::to_string(row) + ", feature " +
         std::to_string(col) + " (" + kFeatureNames[col] + ")";
}

}  // namespace

void run_feature_checks(const Subject& subject, Report& report) {
  if (subject.subgraph == nullptr) return;
  const Subgraph& sg = *subject.subgraph;
  const Matrix& x = sg.features;
  Emitter emit(report);
  if (x.rows() != sg.num_nodes() || x.cols() != kNumNodeFeatures) {
    emit.emit("feat-width", subject.feature_scope + "feature matrix",
              "shape [" + std::to_string(x.rows()) + " x " +
                  std::to_string(x.cols()) + "], expected [" +
                  std::to_string(sg.num_nodes()) + " x " +
                  std::to_string(kNumNodeFeatures) + "]");
    return;  // per-cell checks would misindex
  }
  for (std::int32_t r = 0; r < x.rows(); ++r) {
    for (std::int32_t c = 0; c < x.cols(); ++c) {
      const float v = x.at(r, c);
      const std::string loc = cell_loc(subject.feature_scope, r, c);
      if (!std::isfinite(v)) {
        emit.emit("feat-nonfinite", loc,
                  std::isnan(v) ? "value is NaN" : "value is infinite");
        continue;
      }
      if (v < -kRangeEps || v > 1.0f + kRangeEps) {
        emit.emit("feat-range", loc,
                  "value " + std::to_string(v) + " outside [0, 1]");
        continue;
      }
      // Column 3 is the tier-level location code {0, 0.5, 1}; columns 5/6
      // are binary flags (graph/features.cc).
      if (c == 3 && !is_code(v, 0.0f) && !is_code(v, 0.5f) &&
          !is_code(v, 1.0f)) {
        emit.emit("feat-onehot", loc,
                  "value " + std::to_string(v) + " is not a tier code "
                  "(0 = bottom, 0.5 = MIV, 1 = top)");
      } else if ((c == 5 || c == 6) && !is_code(v, 0.0f) &&
                 !is_code(v, 1.0f)) {
        emit.emit("feat-onehot", loc,
                  "value " + std::to_string(v) + " is not a 0/1 flag");
      }
    }
  }
}

namespace {

// Mirrors the historical serve::validate_failure_log phrasing ("... out of
// range [0, N)"), which serving clients and tests key on.
std::string range_msg(const char* what, std::int32_t got, std::int32_t bound) {
  return std::string(what) + " " + std::to_string(got) +
         " out of range [0, " + std::to_string(bound) + ")";
}

void check_log_ranges(const Subject& subject, const FailureLog& log,
                      Emitter& emit) {
  const Netlist& nl = *subject.netlist;
  const std::int32_t num_patterns = subject.num_patterns;
  const std::int32_t num_flops =
      subject.scan != nullptr ? subject.scan->num_flops() : -1;
  const std::int32_t num_channels =
      subject.compactor != nullptr ? subject.compactor->num_channels() : -1;
  const std::int32_t max_position =
      subject.scan != nullptr ? subject.scan->max_chain_length() : -1;
  const auto num_pos =
      static_cast<std::int32_t>(nl.primary_outputs().size());
  const auto fail = [&](std::int32_t index, const std::string& msg) {
    emit.emit("log-range", "record " + std::to_string(index), msg);
  };
  for (std::size_t i = 0; i < log.scan_fails.size(); ++i) {
    const Observation& o = log.scan_fails[i];
    const auto idx = static_cast<std::int32_t>(i);
    if (num_patterns >= 0 && (o.pattern < 0 || o.pattern >= num_patterns)) {
      fail(idx, range_msg("scan record pattern", o.pattern, num_patterns));
    }
    if (num_flops >= 0 && (o.index < 0 || o.index >= num_flops)) {
      fail(idx, range_msg("scan record flop index", o.index, num_flops));
    }
  }
  for (std::size_t i = 0; i < log.channel_fails.size(); ++i) {
    const ChannelFail& c = log.channel_fails[i];
    const auto idx = static_cast<std::int32_t>(i);
    if (num_patterns >= 0 && (c.pattern < 0 || c.pattern >= num_patterns)) {
      fail(idx, range_msg("chan record pattern", c.pattern, num_patterns));
      continue;
    }
    if (num_channels >= 0 && (c.channel < 0 || c.channel >= num_channels)) {
      fail(idx, range_msg("chan record channel", c.channel, num_channels));
      continue;
    }
    if (max_position >= 0 && (c.position < 0 || c.position >= max_position)) {
      fail(idx, range_msg("chan record position", c.position, max_position));
      continue;
    }
    // In range, but the bit may still alias no scan cell: channels cover
    // chains of different lengths, so positions beyond every member chain's
    // end observe nothing.  Historically accepted, then failed deep inside
    // back-tracing — the gap this check closes.
    if (subject.scan != nullptr && subject.compactor != nullptr &&
        subject.compactor->cells_at(*subject.scan, c.channel, c.position)
            .empty()) {
      emit.emit("log-obs-missing", "record " + std::to_string(idx),
                "channel " + std::to_string(c.channel) + " position " +
                    std::to_string(c.position) +
                    " aliases no scan cell in this design");
    }
  }
  for (std::size_t i = 0; i < log.po_fails.size(); ++i) {
    const Observation& o = log.po_fails[i];
    const auto idx = static_cast<std::int32_t>(i);
    if (num_patterns >= 0 && (o.pattern < 0 || o.pattern >= num_patterns)) {
      fail(idx, range_msg("po record pattern", o.pattern, num_patterns));
    }
    if (o.index < 0 || o.index >= num_pos) {
      fail(idx, range_msg("po record output index", o.index, num_pos));
    }
  }
}

void check_log_duplicates(const FailureLog& log, Emitter& emit) {
  std::set<Observation> scan_seen, po_seen;
  std::set<ChannelFail> chan_seen;
  for (std::size_t i = 0; i < log.scan_fails.size(); ++i) {
    if (!scan_seen.insert(log.scan_fails[i]).second) {
      emit.emit("log-duplicate", "record " + std::to_string(i),
                "duplicate failing scan bit (pattern " +
                    std::to_string(log.scan_fails[i].pattern) + ", flop " +
                    std::to_string(log.scan_fails[i].index) + ")");
    }
  }
  for (std::size_t i = 0; i < log.channel_fails.size(); ++i) {
    if (!chan_seen.insert(log.channel_fails[i]).second) {
      emit.emit("log-duplicate", "record " + std::to_string(i),
                "duplicate failing channel bit (pattern " +
                    std::to_string(log.channel_fails[i].pattern) +
                    ", channel " +
                    std::to_string(log.channel_fails[i].channel) +
                    ", position " +
                    std::to_string(log.channel_fails[i].position) + ")");
    }
  }
  for (std::size_t i = 0; i < log.po_fails.size(); ++i) {
    if (!po_seen.insert(log.po_fails[i]).second) {
      emit.emit("log-duplicate", "record " + std::to_string(i),
                "duplicate failing PO bit (pattern " +
                    std::to_string(log.po_fails[i].pattern) + ", output " +
                    std::to_string(log.po_fails[i].index) + ")");
    }
  }
}

// Heuristic tester-store-depth detector.  A fail store with per-pattern
// depth D clips every heavy pattern's failing-bit list to exactly D, so a
// truncated log shows many distinct patterns sitting exactly at the common
// maximum and none above it.  Organic logs spread their per-pattern counts;
// the triple gate (cap >= kMinStoreCap, >= kMinPatternsAtCap patterns
// exactly at the cap, and at least half of all failing patterns at the cap)
// keeps clean generated logs quiet (see diag/noise.h kTruncateStore, which
// produces exactly this signature).
constexpr std::int32_t kMinStoreCap = 4;
constexpr std::int32_t kMinPatternsAtCap = 3;

void check_log_store_truncation(const FailureLog& log, Emitter& emit) {
  std::map<std::int32_t, std::int32_t> per_pattern;
  for (const Observation& o : log.scan_fails) ++per_pattern[o.pattern];
  for (const ChannelFail& c : log.channel_fails) ++per_pattern[c.pattern];
  for (const Observation& o : log.po_fails) ++per_pattern[o.pattern];
  std::int32_t cap = 0;
  for (const auto& [pattern, bits] : per_pattern) {
    cap = std::max(cap, bits);
  }
  if (cap < kMinStoreCap) return;
  std::int32_t at_cap = 0;
  for (const auto& [pattern, bits] : per_pattern) {
    if (bits == cap) ++at_cap;
  }
  const auto num_patterns = static_cast<std::int32_t>(per_pattern.size());
  if (at_cap < kMinPatternsAtCap || 2 * at_cap < num_patterns) return;
  emit.emit("log-store-truncated", "failure log",
            std::to_string(at_cap) + " of " + std::to_string(num_patterns) +
                " failing pattern(s) carry exactly " + std::to_string(cap) +
                " failing bit(s); the log looks clipped at a fail-store "
                "depth of " +
                std::to_string(cap));
}

// Streaming feeds (serve/session.h) reject records whose pattern index
// regresses within a record kind; the batch reader accepts them (diagnosis
// is order-independent), so an archived log that would have been rejected
// live is flagged here instead.
void check_log_pattern_order(const FailureLog& log, Emitter& emit) {
  const auto check_kind = [&](const char* kind, auto&& patterns) {
    std::int32_t last = -1;
    std::int32_t index = 0;
    for (std::int32_t pattern : patterns) {
      if (pattern < last) {
        emit.emit("log-out-of-order",
                  std::string(kind) + " record " + std::to_string(index),
                  std::string("pattern ") + std::to_string(pattern) +
                      " after pattern " + std::to_string(last) +
                      " in the " + kind + " records");
      }
      last = std::max(last, pattern);
      ++index;
    }
  };
  std::vector<std::int32_t> scan, chan, po;
  for (const Observation& o : log.scan_fails) scan.push_back(o.pattern);
  for (const ChannelFail& c : log.channel_fails) chan.push_back(c.pattern);
  for (const Observation& o : log.po_fails) po.push_back(o.pattern);
  check_kind("scan", scan);
  check_kind("chan", chan);
  check_kind("po", po);
}

}  // namespace

void run_failure_log_checks(const Subject& subject, Report& report) {
  if (subject.log == nullptr || subject.netlist == nullptr) return;
  const FailureLog& log = *subject.log;
  Emitter emit(report);
  if (log.empty()) {
    emit.emit("log-empty", "failure log",
              "empty failure log (no failing bits)");
    return;
  }
  if (log.pattern_limit < 0) {
    emit.emit("log-limit", "failure log",
              "negative pattern limit " + std::to_string(log.pattern_limit));
  }
  if (log.compacted && !log.scan_fails.empty()) {
    emit.emit("log-mode-mismatch", "failure log",
              "scan records present in compacted mode");
  } else if (!log.compacted && !log.channel_fails.empty()) {
    emit.emit("log-mode-mismatch", "failure log",
              "channel records present in bypass mode");
  }
  check_log_ranges(subject, log, emit);
  check_log_duplicates(log, emit);
  check_log_store_truncation(log, emit);
  check_log_pattern_order(log, emit);
}

void run_model_checks(const Subject& subject, Report& report) {
  if (subject.model == nullptr) return;
  const DiagnosisFramework& model = *subject.model;
  Emitter emit(report);
  if (!model.trained()) {
    emit.emit("model-untrained", "framework",
              "framework has not been trained");
    return;  // the untrained heads carry meaningless dimensions
  }
  const GcnModelConfig& tier_cfg = model.tier_predictor().config();
  const GcnModelConfig& miv_cfg = model.miv_pinpointer().config();
  if (tier_cfg.in_dim != kNumNodeFeatures) {
    emit.emit("model-feat-width", "tier predictor",
              "input width " + std::to_string(tier_cfg.in_dim) +
                  ", feature contract is " +
                  std::to_string(kNumNodeFeatures));
  }
  if (miv_cfg.in_dim != kNumNodeFeatures) {
    emit.emit("model-feat-width", "MIV pinpointer",
              "input width " + std::to_string(miv_cfg.in_dim) +
                  ", feature contract is " +
                  std::to_string(kNumNodeFeatures));
  }
  if (tier_cfg.classes != 2) {
    emit.emit("model-layer-dims", "tier predictor",
              std::to_string(tier_cfg.classes) +
                  " output class(es); two-tier prediction needs 2");
  }
  if (miv_cfg.classes != 2) {
    emit.emit("model-layer-dims", "MIV pinpointer",
              std::to_string(miv_cfg.classes) +
                  " output class(es); defective/healthy needs 2");
  }
  if (tier_cfg.hidden <= 0 || tier_cfg.num_layers <= 0) {
    emit.emit("model-layer-dims", "tier predictor",
              "degenerate stack (hidden " + std::to_string(tier_cfg.hidden) +
                  ", layers " + std::to_string(tier_cfg.num_layers) + ")");
  }
  if (miv_cfg.hidden != tier_cfg.hidden ||
      miv_cfg.num_layers != tier_cfg.num_layers) {
    emit.emit("model-layer-dims", "framework",
              "MIV pinpointer stack (hidden " +
                  std::to_string(miv_cfg.hidden) + ", layers " +
                  std::to_string(miv_cfg.num_layers) +
                  ") differs from the tier predictor (hidden " +
                  std::to_string(tier_cfg.hidden) + ", layers " +
                  std::to_string(tier_cfg.num_layers) +
                  "); transfer learning requires matching widths");
  }
  const double tp = model.tp_threshold();
  if (!(tp >= 0.0 && tp <= 1.0)) {
    emit.emit("model-layer-dims", "framework",
              "confidence threshold T_P " + std::to_string(tp) +
                  " outside [0, 1]");
  }
  if (subject.mivs != nullptr && subject.mivs->num_mivs() == 0) {
    emit.emit("model-miv-head", "design",
              "design has 0 MIVs; the MIV-pinpointer head has nothing to "
              "classify");
  }
}

void run_journal_checks(const Subject& subject, Report& report) {
  if (subject.journal == nullptr) return;
  const JournalFacts& facts = *subject.journal;
  // No lifetime deadline configured: sessions never age out, so no segment
  // can be declared stale.
  if (facts.session_lifetime_ms <= 0.0) return;
  Emitter emit(report);
  for (const JournalSegmentFacts& segment : facts.segments) {
    if (segment.records == 0 || segment.newest_wall_ms < 0) continue;
    const double age_ms =
        static_cast<double>(facts.now_wall_ms - segment.newest_wall_ms);
    if (age_ms <= facts.session_lifetime_ms) continue;
    emit.emit("session-journal-stale",
              segment.path + " offset " +
                  std::to_string(segment.newest_offset),
              "newest of " + std::to_string(segment.records) +
                  " record(s) is " +
                  std::to_string(static_cast<long long>(age_ms)) +
                  " ms old, past the " +
                  std::to_string(
                      static_cast<long long>(facts.session_lifetime_ms)) +
                  " ms session lifetime");
  }
}

}  // namespace m3dfl::lint
