#include "lint/checks.h"

#include <array>

#include "util/error.h"

namespace m3dfl::lint {

namespace {

// The check catalog, in pass order.  Ids are stable API: tests, CI
// annotations, and suppression lists key on them, so renaming one is a
// breaking change (docs/LINT.md).
constexpr std::array<CheckInfo, 32> kCatalog = {{
    // -- netlist pass --------------------------------------------------------
    {"mnl-syntax", ArtifactKind::kNetlist, Severity::kError,
     "MNL record is unreadable (bad tokens, unknown type, non-dense id)",
     "fix the cited line; see the MNL grammar in netlist/verilog_io.cc"},
    {"net-arity", ArtifactKind::kNetlist, Severity::kError,
     "gate fan-in count outside the cell library's bounds for its type",
     "connect the missing inputs or switch to a wider/narrower cell"},
    {"net-floating-pin", ArtifactKind::kNetlist, Severity::kError,
     "gate that must drive a net declares no output net (floating pin)",
     "declare 'out=<net>' for the gate or remove the dead cell"},
    {"net-undriven", ArtifactKind::kNetlist, Severity::kError,
     "net is read by at least one gate but has no driver",
     "drive the net or tie it off; undriven nets simulate as X"},
    {"net-multi-driver", ArtifactKind::kNetlist, Severity::kError,
     "net has more than one driver (a short in silicon)",
     "keep one driver and re-route the rest through new nets"},
    {"net-comb-loop", ArtifactKind::kNetlist, Severity::kError,
     "combinational cycle (no flop on the path)",
     "break the loop with a flop or re-synthesize the cone"},
    {"net-unreachable", ArtifactKind::kNetlist, Severity::kWarn,
     "combinational gate unreachable from any primary input or flop output",
     "remove the dead logic or connect its cone to a source"},

    // -- M3D pass ------------------------------------------------------------
    {"tier-unassigned", ArtifactKind::kM3d, Severity::kError,
     "tier assignment does not cover every gate",
     "re-run partitioning after netlist edits; stale assignments mislabel "
     "every downstream feature"},
    {"tier-invalid", ArtifactKind::kM3d, Severity::kError,
     "tier value is not a valid tier (0 = bottom, 1 = top)",
     "clamp tiers to {0, 1}; two-tier M3D has no other planes"},
    {"miv-same-tier", ArtifactKind::kM3d, Severity::kError,
     "MIV endpoint tiers are not distinct (far sink on the driver's tier)",
     "rebuild the MIV map from the current tier assignment"},
    {"miv-count-mismatch", ArtifactKind::kM3d, Severity::kError,
     "MIV count disagrees with the partition cut size",
     "rebuild the MIV map; every tier-crossing net needs exactly one MIV"},
    {"miv-orphan", ArtifactKind::kM3d, Severity::kError,
     "MIV references a missing net/sink or crosses no tier boundary",
     "rebuild the MIV map from the current netlist and tiers"},

    // -- scan/DfT pass -------------------------------------------------------
    {"scan-off-chain", ArtifactKind::kScan, Severity::kError,
     "flop is not stitched into any scan chain (or chains cite unknown "
     "flops)",
     "re-stitch the scan chains after netlist/test-point changes"},
    {"scan-duplicate-cell", ArtifactKind::kScan, Severity::kError,
     "flop appears at more than one scan-chain position",
     "re-stitch the scan chains; duplicated cells corrupt shift-out maps"},
    {"dft-obs-unmapped", ArtifactKind::kScan, Severity::kError,
     "graph observation point does not map to a scan-flop D input or PO pin",
     "rebuild the heterogeneous graph after scan/netlist changes"},
    {"dft-compactor-fanin", ArtifactKind::kScan, Severity::kError,
     "compactor channel fan-in is inconsistent with the scan chains",
     "rebuild the compactor after re-stitching the scan chains"},

    // -- graph pass ----------------------------------------------------------
    {"graph-node-count", ArtifactKind::kGraph, Severity::kError,
     "graph node/edge counts disagree with netlist + MIV construction",
     "rebuild the heterogeneous graph from the current design artifacts"},
    {"graph-dangling-ref", ArtifactKind::kGraph, Severity::kError,
     "graph node references a net or node id outside the design",
     "rebuild the heterogeneous graph from the current design artifacts"},
    {"graph-edge-mismatch", ArtifactKind::kGraph, Severity::kError,
     "graph adjacency differs from reconstruction (stale wiring)",
     "rebuild the heterogeneous graph from the current design artifacts"},
    {"graph-top-stale", ArtifactKind::kGraph, Severity::kError,
     "Topedge BFS aggregates differ from recomputation (stale top level)",
     "rebuild the heterogeneous graph; stale Topedge features poison "
     "training labels"},

    // -- feature pass --------------------------------------------------------
    {"feat-width", ArtifactKind::kFeatures, Severity::kError,
     "feature matrix shape is not [num_nodes x 13] (paper Table II)",
     "recompute features with compute_node_features"},
    {"feat-nonfinite", ArtifactKind::kFeatures, Severity::kError,
     "feature value is NaN or infinite",
     "recompute features; non-finite inputs destroy GNN training"},
    {"feat-range", ArtifactKind::kFeatures, Severity::kError,
     "feature value outside the squashed [0, 1] range",
     "recompute features with the fixed Table II scales"},
    {"feat-onehot", ArtifactKind::kFeatures, Severity::kError,
     "exclusive-coded column holds a value outside its code set",
     "tier-level location must be 0/0.5/1 and binary flags 0/1"},

    // -- failure-log pass ----------------------------------------------------
    {"log-empty", ArtifactKind::kFailureLog, Severity::kError,
     "failure log carries no failing bits",
     "a passing die has nothing to diagnose; drop the request"},
    {"log-limit", ArtifactKind::kFailureLog, Severity::kError,
     "negative tester fail-memory pattern limit",
     "pattern_limit must be >= 0 (0 = unlimited)"},
    {"log-mode-mismatch", ArtifactKind::kFailureLog, Severity::kError,
     "raw scan-cell records present in a compacted-mode log",
     "re-acquire the log in one mode; mixed modes alias observation points"},
    {"log-range", ArtifactKind::kFailureLog, Severity::kError,
     "log record indexes a pattern/flop/channel/position/PO out of range",
     "check the log against the design's test program and scan architecture"},
    {"log-obs-missing", ArtifactKind::kFailureLog, Severity::kError,
     "log record cites an observation point absent from the design",
     "the (channel, position) bit aliases no scan cell; regenerate the log "
     "against the right design"},
    {"log-duplicate", ArtifactKind::kFailureLog, Severity::kWarn,
     "duplicate failing-bit records",
     "deduplicate the log; repeated bits skew match statistics"},

    // -- model pass ----------------------------------------------------------
    {"model-untrained", ArtifactKind::kModel, Severity::kError,
     "framework has not been trained",
     "train the framework (m3dfl_tool train) before serving it"},
    {"model-feat-width", ArtifactKind::kModel, Severity::kError,
     "model input width differs from the 13 Table II features",
     "retrain with in_dim == 13; the feature contract is fixed"},
}};

// Checks that did not fit in the primary table (std::array needs the exact
// count; keeping two tables avoids miscounting churn as the catalog grows).
constexpr std::array<CheckInfo, 9> kCatalogTail = {{
    {"log-store-truncated", ArtifactKind::kFailureLog, Severity::kWarn,
     "per-pattern failing-bit counts sit exactly at a common cap; the log "
     "looks clipped by the tester's fail-store depth",
     "truncated evidence weakens the back-trace intersection; see "
     "docs/ROBUSTNESS.md for the noise model and confidence impact"},
    {"model-layer-dims", ArtifactKind::kModel, Severity::kError,
     "model layer dimensions are inconsistent (classes/hidden/layers)",
     "tier and prune heads need 2 classes; transfer requires matching "
     "hidden widths"},
    {"model-miv-head", ArtifactKind::kModel, Severity::kWarn,
     "design has no MIVs for the MIV-pinpointer head to classify",
     "check the tier assignment; an M3D design without MIVs defeats the "
     "MIV diagnosis path"},
    {"log-out-of-order", ArtifactKind::kFailureLog, Severity::kWarn,
     "pattern indices regress within a record kind; testers emit failing "
     "patterns monotonically, so the log was reordered or stitched",
     "diagnosis is order-independent so the result stands, but a streaming "
     "session would have rejected these records (serve/session.h); check "
     "the feed path that produced the log"},
    {"session-journal-stale", ArtifactKind::kJournal, Severity::kWarn,
     "journal segment's newest record is older than the session lifetime "
     "deadline; every session still open in it will expire on recovery",
     "the segment is dead weight: run `m3dfl_tool journal <dir> --compact` "
     "(or let recovery tombstone the sessions) to reclaim it"},

    // -- timing pass (sta/, docs/ANALYSIS.md) --------------------------------
    {"negative-slack-path", ArtifactKind::kTiming, Severity::kError,
     "capture endpoint arrives after the clock edge (negative slack); the "
     "design fails timing before any defect is injected",
     "raise --clock-ps or re-close timing; delay-fault diagnosis assumes a "
     "design that meets its clock"},
    {"untestable-delay-fault", ArtifactKind::kTiming, Severity::kWarn,
     "delay-fault site no test can detect (unobservable cone or slack "
     "margin beyond the defect size bound)",
     "exclude the fault from ATPG/training targets, or add an observation "
     "test point; see docs/ANALYSIS.md untestability criteria"},
    {"miv-zero-slack-margin", ArtifactKind::kTiming, Severity::kWarn,
     "MIV far-tier branch has slack within the via's own nominal delay; "
     "ordinary process variation on the via will fail the path",
     "re-partition to shorten the path or widen the capture clock; "
     "marginal MIVs dominate M3D delay-defect escapes"},
    {"collapsed-class-orphan", ArtifactKind::kTiming, Severity::kError,
     "collapsed fault list is inconsistent (fault without a class, class id "
     "out of range, or representative outside its own class)",
     "rebuild the collapsed list with sta::collapse_tdf_faults after any "
     "netlist edit; a stale mapping silently drops fault coverage"},
}};

}  // namespace

std::span<const CheckInfo> check_catalog() {
  // Materialized once: primary table + tail, contiguous for callers.
  static const std::vector<CheckInfo> all = [] {
    std::vector<CheckInfo> v(kCatalog.begin(), kCatalog.end());
    v.insert(v.end(), kCatalogTail.begin(), kCatalogTail.end());
    return v;
  }();
  return all;
}

const CheckInfo& check_info(std::string_view id) {
  for (const CheckInfo& info : check_catalog()) {
    if (id == info.id) return info;
  }
  throw Error("unknown lint check id '" + std::string(id) + "'");
}

Emitter::~Emitter() {
  // Summarize what the cap suppressed so totals stay honest.
  for (const Tally& t : tallies_) {
    if (t.count <= cap_) continue;
    const CheckInfo& info = check_info(t.id);
    Diagnostic d;
    d.check_id = t.id;
    d.severity = Severity::kNote;
    d.artifact = info.artifact;
    d.message = "output capped: " + std::to_string(t.count - cap_) +
                " further finding(s) of this check suppressed";
    report_.add(std::move(d));
  }
}

bool Emitter::emit(std::string_view check_id, std::string location,
                   std::string message) {
  Tally* tally = nullptr;
  for (Tally& t : tallies_) {
    if (t.id == check_id) {
      tally = &t;
      break;
    }
  }
  if (tally == nullptr) {
    tallies_.push_back(Tally{std::string(check_id), 0});
    tally = &tallies_.back();
  }
  ++tally->count;
  if (tally->count > cap_) return false;
  const CheckInfo& info = check_info(check_id);
  Diagnostic d;
  d.check_id = std::string(check_id);
  d.severity = info.severity;
  d.artifact = info.artifact;
  d.location = std::move(location);
  d.message = std::move(message);
  d.hint = info.hint;
  report_.add(std::move(d));
  return true;
}

Report run_checks(const Subject& subject) {
  Report report;
  run_netlist_checks(subject, report);
  const bool netlist_clean = !report.has_errors();

  // Deeper structural passes dereference netlist invariants (pin ids, net
  // sinks, topological order), so they require a finalized netlist and a
  // clean netlist pass.
  const bool deep = subject.netlist != nullptr &&
                    subject.netlist->finalized() && netlist_clean;
  if (deep) {
    const std::size_t before = report.size();
    run_m3d_checks(subject, report);
    bool m3d_clean = true;
    for (std::size_t i = before; i < report.diagnostics().size(); ++i) {
      if (report.diagnostics()[i].severity == Severity::kError) {
        m3d_clean = false;
        break;
      }
    }
    run_scan_checks(subject, report);
    // The graph cross-check rebuilds a reference graph, which needs a sound
    // (netlist, tiers, MIVs) triple — skip it when the M3D pass failed.
    if (m3d_clean) run_graph_checks(subject, report);
  }

  run_feature_checks(subject, report);
  if (deep) run_failure_log_checks(subject, report);
  run_model_checks(subject, report);
  run_journal_checks(subject, report);
  run_timing_checks(subject, report);
  return report;
}

}  // namespace m3dfl::lint
