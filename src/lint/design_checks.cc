// Design-artifact checks (lint passes 2-4): M3D tiers & MIVs, scan/DfT,
// and the heterogeneous-graph cross-check.
//
// These passes run only on finalized netlists that passed the structural
// pass (run_checks gates them), so netlist queries are safe to call.  The
// graph cross-check additionally requires a clean M3D pass: it rebuilds a
// reference HeteroGraph from (netlist, tiers, mivs) and diffing against a
// broken tier assignment would crash before it could diagnose anything.
#include <algorithm>
#include <cmath>
#include <vector>

#include "lint/checks.h"

namespace m3dfl::lint {

namespace {

std::string gate_loc(const Netlist& nl, GateId g) {
  std::string loc = "gate " + std::to_string(g);
  if (!nl.gate(g).name.empty()) loc += " (" + nl.gate(g).name + ")";
  return loc;
}

std::string miv_loc(MivId id, const Miv& miv) {
  return "MIV " + std::to_string(id) + " (net " + std::to_string(miv.net) +
         ")";
}

// True when every tier value is a legal tier; emits tier-invalid otherwise.
bool check_tier_values(const Netlist& nl, const TierAssignment& tiers,
                       Emitter& emit) {
  bool ok = true;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const int tier = tiers.tier_of(g);
    if (tier != kBottomTier && tier != kTopTier) {
      ok = false;
      if (!emit.emit("tier-invalid", gate_loc(nl, g),
                     "tier " + std::to_string(tier) + " is not 0 or 1")) {
        break;
      }
    }
  }
  return ok;
}

void check_mivs(const Netlist& nl, const TierAssignment& tiers,
                const MivMap& mivs, Emitter& emit) {
  if (mivs.num_mivs() != tiers.cut_size(nl)) {
    emit.emit("miv-count-mismatch", "design",
              std::to_string(mivs.num_mivs()) + " MIV(s) for a partition "
              "cut of " + std::to_string(tiers.cut_size(nl)) + " net(s)");
  }
  for (MivId id = 0; id < mivs.num_mivs(); ++id) {
    const Miv& miv = mivs.miv(id);
    if (miv.net < 0 || miv.net >= nl.num_nets()) {
      emit.emit("miv-orphan", "MIV " + std::to_string(id),
                "net " + std::to_string(miv.net) + " does not exist");
      continue;
    }
    const GateId driver = nl.net(miv.net).driver;
    if (tiers.tier_of(driver) != miv.driver_tier) {
      emit.emit("miv-orphan", miv_loc(id, miv),
                "recorded driver tier " + std::to_string(miv.driver_tier) +
                    " but " + gate_loc(nl, driver) + " sits on tier " +
                    std::to_string(tiers.tier_of(driver)));
    }
    if (miv.far_sinks.empty()) {
      emit.emit("miv-orphan", miv_loc(id, miv),
                "no far-tier sinks: the net crosses no tier boundary");
      continue;
    }
    for (const PinRef& sink : miv.far_sinks) {
      if (sink.gate < 0 || sink.gate >= nl.num_gates() || sink.is_output() ||
          sink.input >= static_cast<std::int32_t>(
                            nl.gate(sink.gate).fanin.size())) {
        emit.emit("miv-orphan", miv_loc(id, miv),
                  "far sink cites a pin that does not exist (gate " +
                      std::to_string(sink.gate) + ", input " +
                      std::to_string(sink.input) + ")");
        continue;
      }
      if (tiers.tier_of(sink.gate) == miv.driver_tier) {
        emit.emit("miv-same-tier", miv_loc(id, miv),
                  "far sink " + gate_loc(nl, sink.gate) +
                      " sits on the driver's tier " +
                      std::to_string(miv.driver_tier));
      }
    }
  }
}

}  // namespace

void run_m3d_checks(const Subject& subject, Report& report) {
  if (subject.netlist == nullptr || subject.tiers == nullptr) return;
  const Netlist& nl = *subject.netlist;
  const TierAssignment& tiers = *subject.tiers;
  Emitter emit(report);
  if (static_cast<std::int32_t>(tiers.size()) != nl.num_gates()) {
    emit.emit("tier-unassigned", "design",
              "tier assignment covers " + std::to_string(tiers.size()) +
                  " gate(s), netlist has " + std::to_string(nl.num_gates()));
    return;  // tier_of would assert on the uncovered gates
  }
  if (!check_tier_values(nl, tiers, emit)) return;  // cut_size would misindex
  if (subject.mivs != nullptr) check_mivs(nl, tiers, *subject.mivs, emit);
}

namespace {

void check_chain_coverage(const Netlist& nl, const ScanChains& scan,
                          Emitter& emit) {
  const auto num_flops = static_cast<std::int32_t>(nl.flops().size());
  if (scan.num_flops() != num_flops) {
    emit.emit("scan-off-chain", "design",
              "scan architecture stitches " +
                  std::to_string(scan.num_flops()) + " flop(s), netlist has " +
                  std::to_string(num_flops));
  }
  std::vector<std::int32_t> seen(static_cast<std::size_t>(num_flops), 0);
  for (std::int32_t c = 0; c < scan.num_chains(); ++c) {
    const auto& chain = scan.chain(c);
    for (std::size_t pos = 0; pos < chain.size(); ++pos) {
      const std::int32_t flop = chain[pos];
      const std::string loc =
          "chain " + std::to_string(c) + "[" + std::to_string(pos) + "]";
      if (flop < 0 || flop >= num_flops) {
        emit.emit("scan-off-chain", loc,
                  "cites flop index " + std::to_string(flop) +
                      " outside [0, " + std::to_string(num_flops) + ")");
        continue;
      }
      if (++seen[static_cast<std::size_t>(flop)] == 2) {
        emit.emit("scan-duplicate-cell", loc,
                  "flop " + std::to_string(flop) +
                      " appears in more than one chain position");
      }
    }
  }
  for (std::int32_t f = 0; f < num_flops; ++f) {
    if (seen[static_cast<std::size_t>(f)] == 0) {
      emit.emit("scan-off-chain", "flop " + std::to_string(f),
                "flop is not stitched into any scan chain");
    }
  }
}

void check_compactor(const ScanChains& scan, const XorCompactor& compactor,
                     Emitter& emit) {
  std::vector<std::int32_t> covered(
      static_cast<std::size_t>(scan.num_chains()), 0);
  for (std::int32_t ch = 0; ch < compactor.num_channels(); ++ch) {
    const auto& chains = compactor.channel_chains(ch);
    const std::string loc = "channel " + std::to_string(ch);
    if (static_cast<std::int32_t>(chains.size()) >
        compactor.chains_per_channel()) {
      emit.emit("dft-compactor-fanin", loc,
                std::to_string(chains.size()) + " chain(s) exceed the " +
                    std::to_string(compactor.chains_per_channel()) +
                    ":1 compaction ratio");
    }
    for (const std::int32_t chain : chains) {
      if (chain < 0 || chain >= scan.num_chains()) {
        emit.emit("dft-compactor-fanin", loc,
                  "cites chain " + std::to_string(chain) + " outside [0, " +
                      std::to_string(scan.num_chains()) + ")");
        continue;
      }
      ++covered[static_cast<std::size_t>(chain)];
    }
  }
  for (std::int32_t c = 0; c < scan.num_chains(); ++c) {
    const std::int32_t n = covered[static_cast<std::size_t>(c)];
    if (n != 1) {
      emit.emit("dft-compactor-fanin", "chain " + std::to_string(c),
                n == 0 ? std::string("chain feeds no output channel")
                       : "chain feeds " + std::to_string(n) + " channels");
    }
  }
}

// Observation points of the graph's top level must anchor on real scan-flop
// D inputs and PO input pins — the contract back-tracing relies on.
void check_observation_points(const Netlist& nl, const HeteroGraph& graph,
                              Emitter& emit) {
  const auto& topnodes = graph.topnodes();
  const auto num_flops = static_cast<std::size_t>(nl.flops().size());
  const std::size_t expected = num_flops + nl.primary_outputs().size();
  if (topnodes.size() != expected) {
    emit.emit("dft-obs-unmapped", "graph",
              std::to_string(topnodes.size()) + " observation point(s), "
              "design has " + std::to_string(expected) +
                  " (flop D inputs + POs)");
    return;
  }
  for (std::size_t i = 0; i < topnodes.size(); ++i) {
    const GateId anchor = i < num_flops
                              ? nl.flops()[i]
                              : nl.primary_outputs()[i - num_flops];
    const PinId want = nl.input_pin(anchor, 0);
    if (topnodes[i] != want) {
      emit.emit("dft-obs-unmapped", "topnode " + std::to_string(i),
                "anchored at node " + std::to_string(topnodes[i]) +
                    ", expected D-input pin " + std::to_string(want) +
                    " of " + gate_loc(nl, anchor));
    }
  }
}

}  // namespace

void run_scan_checks(const Subject& subject, Report& report) {
  if (subject.netlist == nullptr) return;
  const Netlist& nl = *subject.netlist;
  Emitter emit(report);
  if (subject.scan != nullptr) {
    check_chain_coverage(nl, *subject.scan, emit);
    if (subject.compactor != nullptr) {
      check_compactor(*subject.scan, *subject.compactor, emit);
    }
  }
  if (subject.graph != nullptr) check_observation_points(nl, *subject.graph, emit);
}

namespace {

bool same_adjacency(std::span<const NodeId> a, std::span<const NodeId> b) {
  if (a.size() != b.size()) return false;
  // Construction order is deterministic, but compare as sets so the check
  // pins semantics, not an incidental ordering.
  std::vector<NodeId> sa(a.begin(), a.end());
  std::vector<NodeId> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return sa == sb;
}

bool near(float a, float b) { return std::fabs(a - b) <= 1e-3f; }

}  // namespace

void run_graph_checks(const Subject& subject, Report& report) {
  if (subject.netlist == nullptr || subject.tiers == nullptr ||
      subject.mivs == nullptr || subject.graph == nullptr) {
    return;
  }
  const Netlist& nl = *subject.netlist;
  const HeteroGraph& graph = *subject.graph;
  Emitter emit(report);

  bool counts_ok = true;
  if (graph.num_pins() != nl.num_pins()) {
    counts_ok = false;
    emit.emit("graph-node-count", "graph",
              std::to_string(graph.num_pins()) + " pin node(s), netlist has " +
                  std::to_string(nl.num_pins()) + " pins");
  }
  if (graph.num_mivs() != subject.mivs->num_mivs()) {
    counts_ok = false;
    emit.emit("graph-node-count", "graph",
              std::to_string(graph.num_mivs()) + " MIV node(s), MIV map has " +
                  std::to_string(subject.mivs->num_mivs()));
  }

  // Reference checks dereference per-node arrays; only safe on matching ids.
  for (NodeId n = 0; counts_ok && n < graph.num_nodes(); ++n) {
    const NetId net = graph.node_net(n);
    if (net < 0 || net >= nl.num_nets()) {
      emit.emit("graph-dangling-ref", "node " + std::to_string(n),
                "observes net " + std::to_string(net) + " outside [0, " +
                    std::to_string(nl.num_nets()) + ")");
    }
    for (const NodeId s : graph.successors(n)) {
      if (s < 0 || s >= graph.num_nodes()) {
        emit.emit("graph-dangling-ref", "node " + std::to_string(n),
                  "successor " + std::to_string(s) + " outside [0, " +
                      std::to_string(graph.num_nodes()) + ")");
      }
    }
  }
  for (const NodeId t : graph.topnodes()) {
    if (t < 0 || t >= graph.num_nodes()) {
      emit.emit("graph-dangling-ref", "topnode",
                "anchor node " + std::to_string(t) + " outside [0, " +
                    std::to_string(graph.num_nodes()) + ")");
      counts_ok = false;
    }
  }
  if (!counts_ok || report.has_errors()) return;

  // Cross-check: rebuild the graph from the current artifacts and diff the
  // adjacency and the Topedge BFS aggregates node by node.  Any difference
  // means `graph` was built from stale artifacts.
  const HeteroGraph ref(nl, *subject.tiers, *subject.mivs);
  if (graph.num_edges() != ref.num_edges()) {
    emit.emit("graph-edge-mismatch", "graph",
              std::to_string(graph.num_edges()) + " edge(s), " +
                  "reconstruction has " + std::to_string(ref.num_edges()));
  }
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (!same_adjacency(graph.successors(n), ref.successors(n)) ||
        !same_adjacency(graph.predecessors(n), ref.predecessors(n))) {
      if (!emit.emit("graph-edge-mismatch", "node " + std::to_string(n),
                     "adjacency differs from reconstruction")) {
        break;
      }
    }
  }
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (graph.n_top(n) != ref.n_top(n) ||
        !near(graph.dist_mean(n), ref.dist_mean(n)) ||
        !near(graph.dist_std(n), ref.dist_std(n)) ||
        !near(graph.miv_mean(n), ref.miv_mean(n)) ||
        !near(graph.miv_std(n), ref.miv_std(n))) {
      if (!emit.emit(
              "graph-top-stale", "node " + std::to_string(n),
              "Topedge aggregates (n_top " + std::to_string(graph.n_top(n)) +
                  ", dist_mean " + std::to_string(graph.dist_mean(n)) +
                  ") differ from recomputation (n_top " +
                  std::to_string(ref.n_top(n)) + ", dist_mean " +
                  std::to_string(ref.dist_mean(n)) + ")")) {
        break;
      }
    }
  }
}

}  // namespace m3dfl::lint
