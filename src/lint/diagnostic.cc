#include "lint/diagnostic.h"

#include <sstream>
#include <utility>

#include "util/error.h"

namespace m3dfl::lint {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "unknown";
}

const char* artifact_name(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kNetlist: return "netlist";
    case ArtifactKind::kM3d: return "m3d";
    case ArtifactKind::kScan: return "scan";
    case ArtifactKind::kGraph: return "graph";
    case ArtifactKind::kFeatures: return "features";
    case ArtifactKind::kFailureLog: return "failure-log";
    case ArtifactKind::kModel: return "model";
    case ArtifactKind::kJournal: return "journal";
    case ArtifactKind::kTiming: return "timing";
  }
  return "unknown";
}

Severity parse_severity(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lower == "note") return Severity::kNote;
  if (lower == "warn" || lower == "warning") return Severity::kWarn;
  if (lower == "error") return Severity::kError;
  throw Error("unknown severity '" + std::string(name) +
              "' (expected note, warn, or error)");
}

std::string Diagnostic::to_string() const {
  std::string out;
  out += severity_name(severity);
  out += "[";
  out += check_id;
  out += "] ";
  out += artifact_name(artifact);
  if (!location.empty()) {
    out += " at ";
    out += location;
  }
  out += ": ";
  out += message;
  if (!hint.empty()) {
    out += " (hint: ";
    out += hint;
    out += ")";
  }
  return out;
}

void Report::add(Diagnostic diagnostic) {
  diags_.push_back(std::move(diagnostic));
}

void Report::merge(Report&& other) {
  for (Diagnostic& d : other.diags_) diags_.push_back(std::move(d));
  other.diags_.clear();
}

std::int32_t Report::count(Severity severity) const {
  std::int32_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

Severity Report::worst() const {
  Severity worst = Severity::kNote;
  for (const Diagnostic& d : diags_) {
    if (d.severity > worst) worst = d.severity;
  }
  return worst;
}

const Diagnostic* Report::find(std::string_view check_id) const {
  for (const Diagnostic& d : diags_) {
    if (d.check_id == check_id) return &d;
  }
  return nullptr;
}

std::string Report::summary() const {
  if (diags_.empty()) return "clean";
  const std::int32_t errors = count(Severity::kError);
  const std::int32_t warns = count(Severity::kWarn);
  const std::int32_t notes = count(Severity::kNote);
  std::ostringstream os;
  const char* sep = "";
  if (errors > 0) {
    os << errors << (errors == 1 ? " error" : " errors");
    sep = ", ";
  }
  if (warns > 0) {
    os << sep << warns << (warns == 1 ? " warning" : " warnings");
    sep = ", ";
  }
  if (notes > 0) {
    os << sep << notes << (notes == 1 ? " note" : " notes");
  }
  return os.str();
}

std::string Report::to_string() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.to_string();
    out += "\n";
  }
  out += summary();
  out += "\n";
  return out;
}

namespace {

// Minimal JSON string escaping (the fields are ASCII identifiers and
// human-readable messages; control characters cannot occur, but quotes and
// backslashes in gate names must not break the document).
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

}  // namespace

std::string Report::to_json() const {
  std::string out = "[\n";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    out += "  {\"check\": ";
    append_json_string(out, d.check_id);
    out += ", \"severity\": ";
    append_json_string(out, severity_name(d.severity));
    out += ", \"artifact\": ";
    append_json_string(out, artifact_name(d.artifact));
    out += ", \"location\": ";
    append_json_string(out, d.location);
    out += ", \"message\": ";
    append_json_string(out, d.message);
    out += ", \"hint\": ";
    append_json_string(out, d.hint);
    out += i + 1 < diags_.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

}  // namespace m3dfl::lint
