// m3dfl::lint — whole-pipeline static analysis.
//
// Convenience entry points over the check engine (lint/checks.h) for the
// artifact bundles the pipeline actually passes around: a prepared Design,
// a (design, failure log) pair, a trained framework, training subgraphs, and
// raw MNL netlist text.  Each returns a Report of diagnostics; an empty
// report (or one with only warnings/notes, depending on the caller's
// threshold) means the artifact is fit for the next pipeline stage.
//
// These are the functions the three surfacings call:
//  * `m3dfl_tool lint`          — CLI, human or JSON output;
//  * training preflight         — core/checkpoint.h rejects poisoned
//                                 datasets before the expensive phases;
//  * serve admission            — serve/service.h rejects broken designs
//                                 with StatusCode::kLintRejected.
#ifndef M3DFL_LINT_LINT_H_
#define M3DFL_LINT_LINT_H_

#include <span>
#include <string>

#include "lint/checks.h"
#include "lint/diagnostic.h"

namespace m3dfl {
class Design;
class DiagnosisFramework;
}  // namespace m3dfl

namespace m3dfl::lint {

// Lints every artifact of a prepared design: netlist structure, tier
// assignment, MIV map, scan/compaction architecture, and the heterogeneous
// graph (including the Topedge recomputation cross-check).
Report lint_design(const Design& design);

// Lints a failure log against the design it claims to describe (modes,
// ranges, observation-point existence, duplicates).  Subsumes the historical
// serve::validate_failure_log.
Report lint_failure_log(const Design& design, const FailureLog& log);

// Lints a trained framework for internal consistency; with a design,
// additionally checks model/design compatibility.
Report lint_model(const DiagnosisFramework& model,
                  const Design* design = nullptr);

// Lints one subgraph's feature matrix.  `scope` prefixes locations (e.g.
// "sample 12, ") so dataset-level reports cite the poisoned element.
Report lint_subgraph(const Subgraph& subgraph, std::string scope = {});

// Lints every sample of a training set (the train preflight).
Report lint_training_set(std::span<const Subgraph> graphs);

// Leniently scans MNL text and lints the netlist structure.  Unlike
// read_mnl(), this diagnoses *all* defects (multi-driver, undriven, arity,
// loops) with file:line locations instead of throwing on the first.
Report lint_mnl(const std::string& text, const std::string& source);

}  // namespace m3dfl::lint

#endif  // M3DFL_LINT_LINT_H_
