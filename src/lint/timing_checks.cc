// Timing/testability pass: checks over pre-extracted sta facts
// (lint::TimingFacts, produced by sta/lint_bridge.h).  Like the journal
// pass, lint only consumes plain data here — it never runs an analysis —
// so the dependency arrow stays sta -> lint.
#include <cstdio>

#include "lint/checks.h"

namespace m3dfl::lint {
namespace {

std::string format_ps(double ps) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f ps", ps);
  return buf;
}

}  // namespace

void run_timing_checks(const Subject& subject, Report& report) {
  if (subject.timing == nullptr) return;
  const TimingFacts& facts = *subject.timing;
  Emitter emit(report);

  for (const TimingFacts::NegativeSlackPath& p : facts.negative_slack) {
    if (!emit.emit("negative-slack-path", p.location,
                   "endpoint arrives at " + format_ps(p.delay_ps) +
                       " against a " + format_ps(facts.clock_ps) +
                       " clock (slack " + format_ps(p.slack_ps) + ")")) {
      break;
    }
  }

  for (const TimingFacts::Untestable& u : facts.untestable) {
    std::string message = "no test can detect this delay fault (" + u.why;
    if (u.why == "slack-margin") {
      message += ", slack " + format_ps(u.slack_ps);
    }
    message += ")";
    if (!emit.emit("untestable-delay-fault", u.location, std::move(message))) {
      break;
    }
  }

  for (const TimingFacts::MivMargin& m : facts.tight_mivs) {
    if (!emit.emit("miv-zero-slack-margin", m.location,
                   "far-branch slack " + format_ps(m.slack_ps) +
                       " is within the " +
                       format_ps(facts.miv_margin_threshold_ps) +
                       " margin threshold")) {
      break;
    }
  }

  for (const TimingFacts::CollapseOrphan& o : facts.collapse_orphans) {
    if (!emit.emit("collapsed-class-orphan", o.location,
                   o.what + " (" + std::to_string(facts.collapse_faults) +
                       " faults, " + std::to_string(facts.collapse_classes) +
                       " classes)")) {
      break;
    }
  }
}

}  // namespace m3dfl::lint
