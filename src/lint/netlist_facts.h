// Lenient netlist structure extraction for the lint engine.
//
// Netlist (netlist/netlist.h) *cannot represent* several classic netlist
// defects: set_output() rejects a second driver at construction time and
// finalize() throws on the first arity/undriven/loop violation.  That is the
// right contract for the pipeline — but it means a defective netlist file is
// rejected at its first problem instead of being fully diagnosed.
//
// NetlistFacts is the lint-side intermediate: a plain record of "which gates
// claim which nets" that can hold any defect.  It is built either from a
// Netlist (always single-driver by construction, so those checks simply
// never fire) or from MNL text via a lenient line scanner that records
// structure without enforcing invariants, remembering the source line of
// every record so diagnostics cite file:line.
#ifndef M3DFL_LINT_NETLIST_FACTS_H_
#define M3DFL_LINT_NETLIST_FACTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/cell.h"
#include "netlist/netlist.h"

namespace m3dfl::lint {

class Report;  // diagnostic.h

struct FactsGate {
  GateType type = GateType::kBuf;
  std::string name;
  std::vector<std::int32_t> fanin;  // net ids, in pin order
  std::int32_t fanout = -1;         // net id, -1 = none declared
  int line = 0;                     // 1-based source line, 0 = not from a file
};

struct NetlistFacts {
  std::string source;       // file name for location citations; "" = in-memory
  std::string design_name;
  std::vector<FactsGate> gates;
  std::int32_t num_nets = 0;
  // Per net: every gate that declares it as output (>1 = multi-driver).
  std::vector<std::vector<std::int32_t>> net_drivers;

  std::int32_t num_gates() const {
    return static_cast<std::int32_t>(gates.size());
  }

  // Location strings for diagnostics: "file.mnl:12" when the gate came from
  // a file, else "gate 3 (name)".
  std::string gate_loc(std::int32_t gate) const;
  std::string net_loc(std::int32_t net) const;

  // Extracts facts from a (possibly unfinalized) Netlist.
  static NetlistFacts from_netlist(const Netlist& netlist);

  // Leniently scans MNL text: structural defects (multi-driver, undriven,
  // bad arity) are *recorded*, not rejected — they are what the lint pass
  // is for.  Only lines the scanner cannot read at all (bad tokens, unknown
  // gate types, duplicate gate ids) produce `mnl-syntax` diagnostics in
  // `parse_diags`, and those lines are skipped.
  static NetlistFacts from_mnl(const std::string& text,
                               const std::string& source,
                               Report& parse_diags);
};

}  // namespace m3dfl::lint

#endif  // M3DFL_LINT_NETLIST_FACTS_H_
