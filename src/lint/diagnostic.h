// Lint diagnostics: the output vocabulary of the m3dfl static-analysis
// engine (docs/LINT.md).
//
// Every finding is a Diagnostic: a stable check id (e.g. "net-multi-driver"),
// a severity, the artifact kind it was found in, a cited location (gate /
// pin / net / MIV / node id, or file:line for file-sourced artifacts), a
// one-line message, and a one-line remediation hint.  Checks never throw —
// the engine's contract is "report everything, reject nothing", so a single
// run surfaces every defect in an artifact instead of the first one, and the
// callers (CLI, train preflight, serve admission) decide what severity is
// fatal for them.
#ifndef M3DFL_LINT_DIAGNOSTIC_H_
#define M3DFL_LINT_DIAGNOSTIC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace m3dfl::lint {

enum class Severity : std::uint8_t { kNote = 0, kWarn = 1, kError = 2 };

// Pipeline artifact a diagnostic was found in, in pipeline order (Fig. 2):
// netlist -> M3D partition/MIVs -> scan/DfT -> heterogeneous graph ->
// feature matrix -> failure log -> trained model -> serving session journal
// -> static timing/testability analysis.
enum class ArtifactKind : std::uint8_t {
  kNetlist = 0,
  kM3d = 1,
  kScan = 2,
  kGraph = 3,
  kFeatures = 4,
  kFailureLog = 5,
  kModel = 6,
  kJournal = 7,
  kTiming = 8,
};

inline constexpr int kNumArtifactKinds = 9;

const char* severity_name(Severity severity);
const char* artifact_name(ArtifactKind kind);
// Case-insensitive inverse of severity_name ("warning" also accepted for
// kWarn); throws m3dfl::Error citing the unknown name.
Severity parse_severity(std::string_view name);

struct Diagnostic {
  std::string check_id;     // stable id, e.g. "net-multi-driver"
  Severity severity = Severity::kError;
  ArtifactKind artifact = ArtifactKind::kNetlist;
  std::string location;     // "gate 42 (u123)" / "net 7" / "file.mnl:12"
  std::string message;      // what is wrong, with expected-vs-found
  std::string hint;         // one-line remediation

  // "error[net-multi-driver] at net 7: ... (hint: ...)"
  std::string to_string() const;
};

// Ordered collection of findings from one engine run.
class Report {
 public:
  void add(Diagnostic diagnostic);
  void merge(Report&& other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  std::size_t size() const { return diags_.size(); }

  std::int32_t count(Severity severity) const;
  bool has_errors() const { return count(Severity::kError) > 0; }
  // Worst severity present; kNote for an empty report.
  Severity worst() const;

  // First diagnostic with the given check id, or nullptr.
  const Diagnostic* find(std::string_view check_id) const;
  bool contains(std::string_view check_id) const {
    return find(check_id) != nullptr;
  }

  // "2 errors, 1 warning" (or "clean").
  std::string summary() const;
  // One to_string() line per diagnostic plus the summary.
  std::string to_string() const;
  // JSON array of {check, severity, artifact, location, message, hint}.
  std::string to_json() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace m3dfl::lint

#endif  // M3DFL_LINT_DIAGNOSTIC_H_
