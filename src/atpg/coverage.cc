#include "atpg/coverage.h"

#include "atpg/tdf_atpg.h"
#include "sim/fault_sim.h"
#include "util/rng.h"

namespace m3dfl {

CoverageResult measure_coverage(const Netlist& netlist,
                                const LocSimulator& good,
                                const CoverageOptions& options) {
  std::vector<Fault> faults = enumerate_tdf_faults(netlist);
  if (options.sample_faults > 0 &&
      options.sample_faults < static_cast<std::int32_t>(faults.size())) {
    Rng rng(options.seed);
    rng.shuffle(faults);
    faults.resize(static_cast<std::size_t>(options.sample_faults));
  }
  FaultSimulator fsim(netlist, good);
  CoverageResult result;
  result.num_faults = static_cast<std::int32_t>(faults.size());
  for (const Fault& f : faults) {
    if (fsim.detects(f)) ++result.num_detected;
  }
  return result;
}

}  // namespace m3dfl
