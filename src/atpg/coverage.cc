#include "atpg/coverage.h"

#include "atpg/tdf_atpg.h"
#include "sim/fault_sim.h"
#include "sta/collapse.h"
#include "util/rng.h"

namespace m3dfl {

CoverageResult measure_coverage(const Netlist& netlist,
                                const LocSimulator& good,
                                const CoverageOptions& options) {
  std::vector<Fault> faults = enumerate_tdf_faults(netlist);
  if (options.sample_faults > 0 &&
      options.sample_faults < static_cast<std::int32_t>(faults.size())) {
    Rng rng(options.seed);
    rng.shuffle(faults);
    faults.resize(static_cast<std::size_t>(options.sample_faults));
  }
  FaultSimulator fsim(netlist, good);
  CoverageResult result;
  result.num_faults = static_cast<std::int32_t>(faults.size());
  if (!options.collapse_faults) {
    for (const Fault& f : faults) {
      if (fsim.detects(f)) ++result.num_detected;
    }
    return result;
  }

  // Collapsed grading: the first fault seen from each equivalence class is
  // simulated; its verdict stands in for later members.  Equivalence is
  // observation-preserving, so the detected count matches the full run
  // bit-for-bit (even under sampling, which only changes *which* member of
  // a class is simulated first).
  const sta::CollapsedFaults collapsed = sta::collapse_tdf_faults(netlist);
  // Per-class verdict: -1 unknown, else 0/1.
  std::vector<std::int8_t> verdict(
      static_cast<std::size_t>(collapsed.num_classes()), -1);
  for (const Fault& f : faults) {
    const auto cls = static_cast<std::size_t>(
        collapsed.class_of[static_cast<std::size_t>(
            sta::tdf_fault_index(f))]);
    if (verdict[cls] < 0) verdict[cls] = fsim.detects(f) ? 1 : 0;
    if (verdict[cls] == 1) ++result.num_detected;
  }
  return result;
}

}  // namespace m3dfl
