// Fault-coverage measurement for an existing pattern set.
//
// Used by the Table III design-matrix bench and by tests; supports sampling
// the fault universe so large sweeps stay fast (documented substitution for
// full commercial fault grading).
#ifndef M3DFL_ATPG_COVERAGE_H_
#define M3DFL_ATPG_COVERAGE_H_

#include <cstdint>

#include "netlist/netlist.h"
#include "sim/logic.h"
#include "sim/simulator.h"

namespace m3dfl {

struct CoverageOptions {
  // 0 = grade the full TDF universe; otherwise grade a uniform sample of
  // this many faults.
  std::int32_t sample_faults = 0;
  std::uint64_t seed = 7;
  // Simulate one member per structural equivalence class
  // (sta::collapse_tdf_faults) and reuse its verdict for the rest.
  // Equivalent faults have identical observations, so the graded result is
  // byte-identical to the full run — only cheaper.
  bool collapse_faults = false;
};

struct CoverageResult {
  std::int32_t num_faults = 0;
  std::int32_t num_detected = 0;
  double coverage() const {
    return num_faults == 0
               ? 0.0
               : static_cast<double>(num_detected) /
                     static_cast<double>(num_faults);
  }
};

// Grades `patterns` against the design's TDF universe.  `good` must already
// hold a run of the same pattern set.
CoverageResult measure_coverage(const Netlist& netlist,
                                const LocSimulator& good,
                                const CoverageOptions& options);

}  // namespace m3dfl

#endif  // M3DFL_ATPG_COVERAGE_H_
