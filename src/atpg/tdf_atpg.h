// Transition-delay-fault ATPG.
//
// The stand-in for the commercial pattern-generation step of the paper's
// data flow (Fig. 4): launch-on-capture two-pattern tests are produced by
// random fill with greedy fault-simulation-based selection — a pattern word
// is kept only while it keeps detecting new TDFs, and generation stops when
// coverage saturates or the profile's pattern budget is reached.  The
// resulting pattern set plays the same role as a compacted commercial TDF
// set: it defines the failure logs and the per-node transitions the
// diagnosis graph memorizes.
#ifndef M3DFL_ATPG_TDF_ATPG_H_
#define M3DFL_ATPG_TDF_ATPG_H_

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "sim/fault.h"
#include "sim/logic.h"

namespace m3dfl {

struct AtpgOptions {
  std::int32_t max_patterns = 512;        // hard pattern budget
  std::int32_t min_new_detections = 1;    // a useful word detects >= this
  std::int32_t patience = 2;              // useless words before stopping
  std::uint64_t seed = 1;
};

struct AtpgResult {
  PatternSet patterns;
  std::int32_t num_faults = 0;      // TDF universe size (2 per pin)
  std::int32_t num_detected = 0;

  double coverage() const {
    return num_faults == 0
               ? 0.0
               : static_cast<double>(num_detected) /
                     static_cast<double>(num_faults);
  }
};

// The complete TDF universe: slow-to-rise and slow-to-fall at every pin.
std::vector<Fault> enumerate_tdf_faults(const Netlist& netlist);

// Generates a TDF pattern set for the design.
AtpgResult generate_tdf_patterns(const Netlist& netlist,
                                 const AtpgOptions& options);

}  // namespace m3dfl

#endif  // M3DFL_ATPG_TDF_ATPG_H_
