#include "atpg/tdf_atpg.h"

#include "sim/fault_sim.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace m3dfl {

std::vector<Fault> enumerate_tdf_faults(const Netlist& netlist) {
  M3DFL_REQUIRE(netlist.finalized(),
                "fault enumeration requires a finalized netlist");
  std::vector<Fault> faults;
  faults.reserve(static_cast<std::size_t>(netlist.num_pins()) * 2);
  for (PinId p = 0; p < netlist.num_pins(); ++p) {
    faults.push_back(Fault::slow_to_rise(p));
    faults.push_back(Fault::slow_to_fall(p));
  }
  return faults;
}

AtpgResult generate_tdf_patterns(const Netlist& netlist,
                                 const AtpgOptions& options) {
  M3DFL_REQUIRE(options.max_patterns > 0, "pattern budget must be positive");
  Rng rng(options.seed);

  std::vector<Fault> remaining = enumerate_tdf_faults(netlist);
  AtpgResult result;
  result.num_faults = static_cast<std::int32_t>(remaining.size());

  const auto num_pis =
      static_cast<std::int32_t>(netlist.primary_inputs().size());
  const auto num_flops = static_cast<std::int32_t>(netlist.flops().size());

  LocSimulator sim(netlist);
  std::int32_t useless_words = 0;
  bool first = true;
  while (result.patterns.num_patterns < options.max_patterns &&
         !remaining.empty()) {
    const std::int32_t count =
        std::min<std::int32_t>(kWordBits,
                               options.max_patterns -
                                   result.patterns.num_patterns);
    PatternSet word = PatternSet::random(num_pis, num_flops, count, rng);
    sim.run(word);
    FaultSimulator fsim(netlist, sim);

    std::size_t kept = 0;
    for (const Fault& f : remaining) {
      if (!fsim.detects(f)) remaining[kept++] = f;
    }
    const auto newly =
        static_cast<std::int32_t>(remaining.size() - kept);
    remaining.resize(kept);
    result.num_detected += newly;

    if (newly >= options.min_new_detections) {
      useless_words = 0;
    } else {
      ++useless_words;
    }
    // A word that detects nothing new after the first is dropped; otherwise
    // it joins the pattern set.
    if (first || newly > 0) {
      if (first) {
        result.patterns = std::move(word);
        first = false;
      } else {
        result.patterns.append(word);
      }
    }
    if (useless_words >= options.patience) break;
  }
  return result;
}

}  // namespace m3dfl
