#include "graph/subgraph.h"

#include <algorithm>

#include "graph/features.h"

namespace m3dfl {

Subgraph extract_subgraph(const HeteroGraph& graph,
                          const std::vector<NodeId>& nodes) {
  M3DFL_ASSERT(std::is_sorted(nodes.begin(), nodes.end()));
  Subgraph sg;
  sg.nodes = nodes;
  const auto n = static_cast<std::int32_t>(nodes.size());

  // Global-to-local index map restricted to the member set.
  std::vector<std::int32_t> local(static_cast<std::size_t>(graph.num_nodes()),
                                  -1);
  for (std::int32_t i = 0; i < n; ++i) {
    local[static_cast<std::size_t>(nodes[static_cast<std::size_t>(i)])] = i;
  }

  std::vector<std::int32_t> sub_fanin(static_cast<std::size_t>(n), 0);
  std::vector<std::int32_t> sub_fanout(static_cast<std::size_t>(n), 0);
  for (std::int32_t i = 0; i < n; ++i) {
    const NodeId u = nodes[static_cast<std::size_t>(i)];
    for (NodeId v : graph.successors(u)) {
      const std::int32_t j = local[static_cast<std::size_t>(v)];
      if (j < 0) continue;
      sg.edge_u.push_back(i);
      sg.edge_v.push_back(j);
      ++sub_fanout[static_cast<std::size_t>(i)];
      ++sub_fanin[static_cast<std::size_t>(j)];
    }
  }

  sg.features = Matrix(n, kNumNodeFeatures);
  compute_node_features(graph, sg.nodes, sub_fanin, sub_fanout, sg.features);

  for (std::int32_t i = 0; i < n; ++i) {
    const NodeId u = nodes[static_cast<std::size_t>(i)];
    if (graph.is_miv_node(u)) {
      sg.miv_local.push_back(i);
      sg.miv_ids.push_back(graph.miv_of_node(u));
    }
  }
  sg.miv_label.assign(sg.miv_local.size(), 0);
  return sg;
}

void label_subgraph(Subgraph& subgraph, const Sample& sample) {
  subgraph.tier_label = sample.fault_tier;
  for (std::size_t i = 0; i < subgraph.miv_ids.size(); ++i) {
    const bool faulty =
        std::find(sample.faulty_mivs.begin(), sample.faulty_mivs.end(),
                  subgraph.miv_ids[i]) != sample.faulty_mivs.end();
    subgraph.miv_label[i] = faulty ? 1 : 0;
  }
}

std::vector<double> graph_feature_vector(const Subgraph& subgraph) {
  std::vector<double> v(kNumNodeFeatures, 0.0);
  if (subgraph.empty()) return v;
  const Matrix mean = column_mean(subgraph.features);
  for (std::int32_t j = 0; j < kNumNodeFeatures; ++j) {
    v[static_cast<std::size_t>(j)] = mean.at(0, j);
  }
  return v;
}

}  // namespace m3dfl
