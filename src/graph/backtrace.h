// Back-tracing (paper Fig. 3).
//
// For every erroneous tester response, the fan-in cone of the failing
// Topnode(s) is traversed and nodes that transition under the failing
// pattern form the response's suspect set; the intersection across all
// responses is the candidate list handed to the GNN models as a subgraph.
//
// Compacted logs yield several Topnodes per response (the aliased cells of
// the XOR channel), whose suspect sets are unioned — the paper's
// FailedTopnode(r) set.  When the strict intersection is empty (multi-fault
// dies), a majority relaxation keeps the best-supported nodes so diagnosis
// can still proceed.
#ifndef M3DFL_GRAPH_BACKTRACE_H_
#define M3DFL_GRAPH_BACKTRACE_H_

#include <cstdint>
#include <vector>

#include "diag/datagen.h"
#include "diag/failure_log.h"
#include "graph/hetero_graph.h"

namespace m3dfl {

struct BacktraceOptions {
  // Majority fraction used when the strict intersection is empty.
  double relaxed_fraction = 0.75;
  // Responses beyond this cap are thinned with a uniform stride (the
  // intersection converges after a handful of responses).
  std::int32_t max_traced_responses = 60;
};

// Candidate heterogeneous-graph nodes for one failure log, sorted ascending.
std::vector<NodeId> backtrace_candidates(const HeteroGraph& graph,
                                         const DesignContext& design,
                                         const FailureLog& log,
                                         const BacktraceOptions& options = {});

}  // namespace m3dfl

#endif  // M3DFL_GRAPH_BACKTRACE_H_
