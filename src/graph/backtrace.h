// Back-tracing (paper Fig. 3), hardened against semantically noisy logs.
//
// For every erroneous tester response, the fan-in cone of the transitioning
// Topnode(s) is traversed and nodes that transition under the failing
// pattern form the response's suspect set; the intersection across all
// responses is the candidate list handed to the GNN models as a subgraph.
//
// Compacted logs yield several Topnodes per response (the aliased cells of
// the XOR channel), whose suspect sets are unioned — the paper's
// FailedTopnode(r) set.  When the strict intersection is empty (multi-fault
// dies), a majority relaxation keeps the best-supported nodes so diagnosis
// can still proceed.
//
// Real tester logs are not clean: intermittent delay faults near threshold
// drop failing patterns, flipped fail-memory bits invent responses at
// observation points the defect never reached, and store-depth truncation
// clips the evidence (diag/noise.h models exactly these).  A single spurious
// response used to silently wreck the strict intersection — the fall-back
// relaxation then kept whatever cleared a majority, with no record of which
// response poisoned the list.  backtrace_with_support() therefore returns a
// BacktraceResult carrying per-node support fractions and an outlier
// quarantine: when the strict intersection dies, responses whose suspect
// set has near-zero overlap with the support-weighted consensus core are
// detected, excluded from the intersection, and reported, so downstream
// layers can distinguish "clean localization" from "best effort under
// suspect data".
#ifndef M3DFL_GRAPH_BACKTRACE_H_
#define M3DFL_GRAPH_BACKTRACE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "diag/datagen.h"
#include "diag/failure_log.h"
#include "graph/hetero_graph.h"

namespace m3dfl {

struct BacktraceOptions {
  // Majority fraction used when the strict intersection is empty.
  double relaxed_fraction = 0.75;
  // Responses beyond this cap are thinned with a uniform stride (the
  // intersection converges after a handful of responses).
  std::int32_t max_traced_responses = 60;
  // Outlier quarantine (runs only when the strict intersection is empty,
  // where the relaxation used to kick in — a non-empty strict intersection
  // is untouched, which keeps clean logs byte-identical to the pre-noise
  // path).  A response whose suspect set covers less than this fraction of
  // the support-weighted consensus core (Jaccard-style overlap coefficient:
  // |S_r ∩ core| / min(|S_r|, |core|)) is quarantined.  <= 0 disables.
  double quarantine_overlap = 0.35;
  // Quarantine needs a consensus to measure against: with fewer traced
  // responses than this, the detector stays off.
  std::int32_t min_responses_for_quarantine = 3;
  // At most this fraction of the traced responses may be quarantined; a log
  // where "most responses are outliers" has no consensus to trust, so the
  // detector backs off to the plain relaxation instead.
  double max_quarantine_fraction = 0.34;
};

// One quarantined tester response.
struct QuarantinedResponse {
  // Index of the response in log order (scan_fails, then channel_fails,
  // then po_fails), before thinning.
  std::int32_t response_index = 0;
  std::int32_t pattern = 0;
  // Overlap coefficient against the consensus core that condemned it.
  double overlap = 0.0;
};

// Candidate list plus the evidence quality behind it.
struct BacktraceResult {
  // Candidate heterogeneous-graph nodes, sorted ascending.
  std::vector<NodeId> candidates;
  // Per-candidate support: fraction of the kept (non-quarantined) traced
  // responses whose suspect set contains the candidate.  Parallel to
  // `candidates`; 1.0 everywhere when the strict intersection held.
  std::vector<double> support;
  // Responses traced after thinning.
  std::int32_t num_responses = 0;
  // Outliers excluded from the intersection (empty on clean logs).
  std::vector<QuarantinedResponse> quarantined;
  // The strict intersection over the kept responses was empty and the
  // majority relaxation (or last-resort best-count fallback) produced the
  // candidates.
  bool relaxed = false;

  // Minimum support among the candidates (1.0 when strict; 0.0 when empty).
  double min_support() const;
  // Evidence was suspect: responses were quarantined or the relaxation ran.
  bool noisy() const { return relaxed || !quarantined.empty(); }
};

// One traced response after thinning: its failing pattern, its pre-thinning
// position in canonical log order (scan_fails, then channel_fails, then
// po_fails — cited by quarantine reports), and a view of its suspect set.
struct TracedResponse {
  std::int32_t pattern = 0;
  std::int32_t response_index = 0;
  const std::vector<NodeId>* suspects = nullptr;  // sorted ascending
};

// Candidate selection + outlier quarantine over already-extracted suspect
// sets (post-thinning): strict intersection, then — when it is empty — the
// quarantine detector and the majority relaxation / best-count fallback.
// This is the entire decision layer of backtrace_with_support, shared with
// diag::StreamingBacktrace so the batch and incremental paths can never
// drift.  When `quarantined_positions` is non-null it receives the index
// into `responses` of each quarantined entry (parallel to
// result.quarantined).
BacktraceResult select_backtrace_candidates(
    std::span<const TracedResponse> responses, std::size_t num_nodes,
    const BacktraceOptions& options,
    std::vector<std::size_t>* quarantined_positions = nullptr);

// Full back-trace: candidates + support + quarantine.
BacktraceResult backtrace_with_support(const HeteroGraph& graph,
                                       const DesignContext& design,
                                       const FailureLog& log,
                                       const BacktraceOptions& options = {});

// Candidate nodes only (the historical interface; same candidate list as
// backtrace_with_support).
std::vector<NodeId> backtrace_candidates(const HeteroGraph& graph,
                                         const DesignContext& design,
                                         const FailureLog& log,
                                         const BacktraceOptions& options = {});

}  // namespace m3dfl

#endif  // M3DFL_GRAPH_BACKTRACE_H_
