#include "graph/backtrace.h"

#include <algorithm>
#include <cmath>

#include "util/thinning.h"

namespace m3dfl {
namespace {

struct TopResponse {
  std::int32_t pattern = 0;
  // Position in log order (scan_fails, channel_fails, po_fails) before any
  // thinning; cited by quarantine reports.
  std::int32_t response_index = 0;
  std::vector<NodeId> topnodes;
};

std::vector<TopResponse> collect(const HeteroGraph& graph,
                                 const DesignContext& design,
                                 const FailureLog& log) {
  std::vector<TopResponse> responses;
  std::int32_t index = 0;
  for (const Observation& o : log.scan_fails) {
    responses.push_back(
        TopResponse{o.pattern, index++, {graph.topnode_of_flop(o.index)}});
  }
  for (const ChannelFail& c : log.channel_fails) {
    TopResponse r;
    r.pattern = c.pattern;
    r.response_index = index++;
    for (std::int32_t flop :
         design.compactor->cells_at(*design.scan, c.channel, c.position)) {
      r.topnodes.push_back(graph.topnode_of_flop(flop));
    }
    responses.push_back(std::move(r));
  }
  for (const Observation& o : log.po_fails) {
    responses.push_back(
        TopResponse{o.pattern, index++, {graph.topnode_of_po(o.index)}});
  }
  return responses;
}

// Scratch for the per-response cone walks (stamped visited marks, so the
// arrays are cleared in O(1) between responses).
struct TraceScratch {
  std::vector<std::uint32_t> seen;
  std::uint32_t stamp = 0;
  std::vector<NodeId> stack;
};

// Suspect set of one response: the union over its failing Topnodes of the
// fan-in-cone nodes that transition under the failing pattern (lines 2-12 of
// the paper's pseudocode).  Sorted ascending.
std::vector<NodeId> suspect_set(const HeteroGraph& graph,
                                const LocSimulator& good,
                                const TopResponse& r, TraceScratch& scratch) {
  std::vector<NodeId> suspects;
  ++scratch.stamp;
  for (NodeId t : r.topnodes) {
    if (scratch.seen[static_cast<std::size_t>(t)] != scratch.stamp) {
      scratch.seen[static_cast<std::size_t>(t)] = scratch.stamp;
      scratch.stack.push_back(t);
    }
  }
  while (!scratch.stack.empty()) {
    const NodeId u = scratch.stack.back();
    scratch.stack.pop_back();
    const NetId net = graph.node_net(u);
    if (net != kNullNet && good.has_transition(net, r.pattern)) {
      suspects.push_back(u);
    }
    for (NodeId v : graph.predecessors(u)) {
      if (scratch.seen[static_cast<std::size_t>(v)] != scratch.stamp) {
        scratch.seen[static_cast<std::size_t>(v)] = scratch.stamp;
        scratch.stack.push_back(v);
      }
    }
  }
  std::sort(suspects.begin(), suspects.end());
  return suspects;
}

// In how many of the `kept` suspect sets each node appears.
std::vector<std::int32_t> count_support(
    std::span<const TracedResponse> responses,
    const std::vector<char>& kept, std::size_t n_nodes) {
  std::vector<std::int32_t> count(n_nodes, 0);
  for (std::size_t r = 0; r < responses.size(); ++r) {
    if (!kept[r]) continue;
    for (NodeId n : *responses[r].suspects) ++count[static_cast<std::size_t>(n)];
  }
  return count;
}

// Jaccard-style overlap coefficient |a ∩ b| / min(|a|, |b|) for sorted
// vectors; 0 when either is empty (an empty suspect set agrees with
// nothing).
double overlap_coefficient(const std::vector<NodeId>& a,
                           const std::vector<NodeId>& b) {
  if (a.empty() || b.empty()) return 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t both = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++both;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return static_cast<double>(both) /
         static_cast<double>(std::min(a.size(), b.size()));
}

// Fills result.candidates/support from the kept-response counts: strict
// intersection first; majority relaxation, then best-count fallback, when it
// is empty.
void select_candidates(const std::vector<std::int32_t>& count,
                       std::int32_t n_kept, const BacktraceOptions& options,
                       BacktraceResult& result) {
  const auto n_nodes = static_cast<NodeId>(count.size());
  const auto emit_at_least = [&](std::int32_t threshold) {
    for (NodeId n = 0; n < n_nodes; ++n) {
      if (count[static_cast<std::size_t>(n)] >= threshold) {
        result.candidates.push_back(n);
        result.support.push_back(
            static_cast<double>(count[static_cast<std::size_t>(n)]) /
            static_cast<double>(n_kept));
      }
    }
  };
  emit_at_least(n_kept);  // strict intersection
  if (!result.candidates.empty()) return;
  result.relaxed = true;
  emit_at_least(static_cast<std::int32_t>(
      std::ceil(options.relaxed_fraction * n_kept)));
  if (!result.candidates.empty()) return;
  std::int32_t best = 0;
  for (std::int32_t c : count) best = std::max(best, c);
  if (best == 0) return;
  emit_at_least(best);
}

}  // namespace

double BacktraceResult::min_support() const {
  if (support.empty()) return 0.0;
  return *std::min_element(support.begin(), support.end());
}

BacktraceResult select_backtrace_candidates(
    std::span<const TracedResponse> responses, std::size_t num_nodes,
    const BacktraceOptions& options,
    std::vector<std::size_t>* quarantined_positions) {
  BacktraceResult result;
  const auto n_responses = static_cast<std::int32_t>(responses.size());
  result.num_responses = n_responses;
  if (responses.empty()) return result;

  std::vector<char> kept(responses.size(), 1);
  std::vector<std::int32_t> count = count_support(responses, kept, num_nodes);

  // Strict intersection across every response: the clean-log fast path,
  // bit-identical to the historical behaviour (with unit support).
  bool strict_empty = true;
  for (std::int32_t c : count) {
    if (c == n_responses) {
      strict_empty = false;
      break;
    }
  }

  // The intersection died — before falling back to the majority relaxation
  // (which silently absorbs spurious responses), try to identify and
  // quarantine the outliers.  The consensus core is the best-supported node
  // set: with a lone corrupted response among n the true site still sits in
  // n-1 cones, so the best-count nodes are exactly what the strict
  // intersection would recover once the outlier is excluded.  A genuine
  // response's cone contains the site and therefore most of the core; a
  // spurious response at a random observation point shares almost nothing
  // with it.  (A broader majority-threshold core blurs into the union of
  // cones on small dense designs and stops separating the two.)
  std::int32_t best = 0;
  for (std::int32_t c : count) best = std::max(best, c);
  if (strict_empty && best > 0 && options.quarantine_overlap > 0.0 &&
      n_responses >= options.min_responses_for_quarantine) {
    std::vector<NodeId> core;
    for (std::size_t n = 0; n < num_nodes; ++n) {
      if (count[n] >= best) {
        core.push_back(static_cast<NodeId>(n));
      }
    }
    std::vector<std::size_t> outliers;
    std::vector<double> overlaps(responses.size(), 0.0);
    for (std::size_t r = 0; r < responses.size(); ++r) {
      overlaps[r] = overlap_coefficient(*responses[r].suspects, core);
      if (overlaps[r] < options.quarantine_overlap) outliers.push_back(r);
    }
    const auto max_quarantined = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(options.max_quarantine_fraction * n_responses)));
    // A minority of outliers against a clear consensus: exclude them.  More
    // than that means there is no consensus to trust (multi-fault dies split
    // their responses between cones), so the detector backs off and the
    // plain relaxation below handles the log as before.
    if (!outliers.empty() && outliers.size() <= max_quarantined &&
        outliers.size() < responses.size()) {
      for (std::size_t r : outliers) {
        kept[r] = 0;
        result.quarantined.push_back(QuarantinedResponse{
            responses[r].response_index, responses[r].pattern, overlaps[r]});
        if (quarantined_positions != nullptr) {
          quarantined_positions->push_back(r);
        }
      }
      count = count_support(responses, kept, num_nodes);
    }
  }

  const auto n_kept = static_cast<std::int32_t>(
      n_responses - static_cast<std::int32_t>(result.quarantined.size()));
  select_candidates(count, n_kept, options, result);
  return result;
}

BacktraceResult backtrace_with_support(const HeteroGraph& graph,
                                       const DesignContext& design,
                                       const FailureLog& log,
                                       const BacktraceOptions& options) {
  M3DFL_REQUIRE(design.good != nullptr, "design context missing simulation");
  M3DFL_REQUIRE(!log.compacted || design.compactor != nullptr,
                "compacted log requires a compactor");
  BacktraceResult result;
  if (log.empty()) return result;

  std::vector<TopResponse> responses = collect(graph, design, log);
  thin_uniform_stride(responses, options.max_traced_responses);

  TraceScratch scratch;
  scratch.seen.assign(static_cast<std::size_t>(graph.num_nodes()), 0);
  std::vector<std::vector<NodeId>> suspects;
  suspects.reserve(responses.size());
  for (const TopResponse& r : responses) {
    suspects.push_back(suspect_set(graph, *design.good, r, scratch));
  }
  std::vector<TracedResponse> traced;
  traced.reserve(responses.size());
  for (std::size_t r = 0; r < responses.size(); ++r) {
    traced.push_back(TracedResponse{responses[r].pattern,
                                    responses[r].response_index,
                                    &suspects[r]});
  }
  return select_backtrace_candidates(
      traced, static_cast<std::size_t>(graph.num_nodes()), options);
}

std::vector<NodeId> backtrace_candidates(const HeteroGraph& graph,
                                         const DesignContext& design,
                                         const FailureLog& log,
                                         const BacktraceOptions& options) {
  return backtrace_with_support(graph, design, log, options).candidates;
}

}  // namespace m3dfl
