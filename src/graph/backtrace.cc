#include "graph/backtrace.h"

#include <algorithm>
#include <cmath>

namespace m3dfl {
namespace {

struct TopResponse {
  std::int32_t pattern = 0;
  std::vector<NodeId> topnodes;
};

std::vector<TopResponse> collect(const HeteroGraph& graph,
                                 const DesignContext& design,
                                 const FailureLog& log) {
  std::vector<TopResponse> responses;
  for (const Observation& o : log.scan_fails) {
    responses.push_back(
        TopResponse{o.pattern, {graph.topnode_of_flop(o.index)}});
  }
  for (const ChannelFail& c : log.channel_fails) {
    TopResponse r;
    r.pattern = c.pattern;
    for (std::int32_t flop :
         design.compactor->cells_at(*design.scan, c.channel, c.position)) {
      r.topnodes.push_back(graph.topnode_of_flop(flop));
    }
    responses.push_back(std::move(r));
  }
  for (const Observation& o : log.po_fails) {
    responses.push_back(TopResponse{o.pattern, {graph.topnode_of_po(o.index)}});
  }
  return responses;
}

}  // namespace

std::vector<NodeId> backtrace_candidates(const HeteroGraph& graph,
                                         const DesignContext& design,
                                         const FailureLog& log,
                                         const BacktraceOptions& options) {
  M3DFL_REQUIRE(design.good != nullptr, "design context missing simulation");
  M3DFL_REQUIRE(!log.compacted || design.compactor != nullptr,
                "compacted log requires a compactor");
  std::vector<NodeId> out;
  if (log.empty()) return out;

  std::vector<TopResponse> responses = collect(graph, design, log);
  if (static_cast<std::int32_t>(responses.size()) >
      options.max_traced_responses) {
    std::vector<TopResponse> thinned;
    const double stride = static_cast<double>(responses.size()) /
                          static_cast<double>(options.max_traced_responses);
    for (std::int32_t i = 0; i < options.max_traced_responses; ++i) {
      thinned.push_back(
          responses[static_cast<std::size_t>(std::floor(i * stride))]);
    }
    responses = std::move(thinned);
  }

  const LocSimulator& good = *design.good;
  const auto n_nodes = static_cast<std::size_t>(graph.num_nodes());
  std::vector<std::int32_t> count(n_nodes, 0);
  std::vector<std::uint32_t> seen(n_nodes, 0);
  std::uint32_t stamp = 0;
  std::vector<NodeId> stack;

  // Lines 2-12 of the paper's pseudocode: per response, union over the
  // failing Topnodes of the transitioning fan-in-cone nodes; counted here so
  // the intersection (and its relaxation) falls out of the counts.
  for (const TopResponse& r : responses) {
    ++stamp;
    for (NodeId t : r.topnodes) {
      if (seen[static_cast<std::size_t>(t)] != stamp) {
        seen[static_cast<std::size_t>(t)] = stamp;
        stack.push_back(t);
      }
    }
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      const NetId net = graph.node_net(u);
      if (net != kNullNet && good.has_transition(net, r.pattern)) {
        ++count[static_cast<std::size_t>(u)];
      }
      for (NodeId v : graph.predecessors(u)) {
        if (seen[static_cast<std::size_t>(v)] != stamp) {
          seen[static_cast<std::size_t>(v)] = stamp;
          stack.push_back(v);
        }
      }
    }
  }

  const auto n_responses = static_cast<std::int32_t>(responses.size());
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (count[static_cast<std::size_t>(n)] == n_responses) out.push_back(n);
  }
  if (out.empty()) {
    const auto threshold = static_cast<std::int32_t>(
        std::ceil(options.relaxed_fraction * n_responses));
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      if (count[static_cast<std::size_t>(n)] >= threshold) out.push_back(n);
    }
  }
  if (out.empty()) {
    std::int32_t best = 0;
    for (std::int32_t c : count) best = std::max(best, c);
    if (best == 0) return out;
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      if (count[static_cast<std::size_t>(n)] == best) out.push_back(n);
    }
  }
  return out;
}

}  // namespace m3dfl
