// Candidate subgraph extraction (paper Sec. III-B, line 13).
//
// After back-tracing, the candidate nodes are extracted into a homogeneous
// subgraph for the GNN models: the node-induced subgraph of the circuit
// level, with the top level encoded purely as node features (paper: "the
// topological dependency at the top level is encoded as numerical features
// of the extracted subgraph").
#ifndef M3DFL_GRAPH_SUBGRAPH_H_
#define M3DFL_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <vector>

#include "diag/datagen.h"
#include "gnn/matrix.h"
#include "graph/hetero_graph.h"

namespace m3dfl {

// Number of node features (paper Table II).
inline constexpr std::int32_t kNumNodeFeatures = 13;

struct Subgraph {
  // Heterogeneous-graph ids of the member nodes (ascending).
  std::vector<NodeId> nodes;
  // Induced undirected edges as local-index pairs.
  std::vector<std::int32_t> edge_u;
  std::vector<std::int32_t> edge_v;
  // [num_nodes x kNumNodeFeatures] feature matrix (see graph/features.h).
  Matrix features;

  // Labels (filled by label_subgraph for training samples).
  int tier_label = -1;                   // faulty tier, or kMivTier
  std::vector<std::int32_t> miv_local;   // local indices of MIV nodes
  std::vector<MivId> miv_ids;            // their MIV ids
  std::vector<std::int8_t> miv_label;    // 1 = defective MIV

  std::int32_t num_nodes() const {
    return static_cast<std::int32_t>(nodes.size());
  }
  bool empty() const { return nodes.empty(); }
};

// Builds the induced subgraph over `nodes` (must be sorted ascending) and
// fills its features.
Subgraph extract_subgraph(const HeteroGraph& graph,
                          const std::vector<NodeId>& nodes);

// Attaches ground-truth labels from a generated sample.
void label_subgraph(Subgraph& subgraph, const Sample& sample);

// Per-sample 13-dim summary vector (column means of the node features);
// the representation visualized by the paper's PCA study (Fig. 5).
std::vector<double> graph_feature_vector(const Subgraph& subgraph);

}  // namespace m3dfl

#endif  // M3DFL_GRAPH_SUBGRAPH_H_
