#include "graph/features.h"

#include <algorithm>
#include <cmath>

#include "graph/subgraph.h"

namespace m3dfl {

const char* const kFeatureNames[] = {
    "circuit fan-in",        "circuit fan-out",
    "Topedges connected",    "tier-level location",
    "topological level",     "is gate output",
    "connects to MIV",       "subgraph fan-in",
    "subgraph fan-out",      "Topedge length mean",
    "Topedge length std",    "Topedge MIV-count mean",
    "Topedge MIV-count std",
};

namespace {

// Squashes an unbounded non-negative count/distance to [0, 1).
float squash(double x, double scale) {
  return static_cast<float>(x / (x + scale));
}

}  // namespace

void compute_node_features(const HeteroGraph& graph,
                           const std::vector<NodeId>& nodes,
                           const std::vector<std::int32_t>& sub_fanin,
                           const std::vector<std::int32_t>& sub_fanout,
                           Matrix& features) {
  M3DFL_ASSERT(features.rows() == static_cast<std::int32_t>(nodes.size()) &&
               features.cols() == kNumNodeFeatures);
  M3DFL_ASSERT(sub_fanin.size() == nodes.size() &&
               sub_fanout.size() == nodes.size());
  const float max_level = static_cast<float>(graph.max_level());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeId n = nodes[i];
    auto row = features.row(static_cast<std::int32_t>(i));
    row[0] = squash(graph.fanin_degree(n), 4.0);
    row[1] = squash(graph.fanout_degree(n), 4.0);
    row[2] = squash(graph.n_top(n), 64.0);
    row[3] = graph.loc(n);
    row[4] = static_cast<float>(graph.level(n)) / max_level;
    row[5] = graph.is_output_pin(n) ? 1.0f : 0.0f;
    row[6] = graph.near_miv(n) ? 1.0f : 0.0f;
    row[7] = squash(sub_fanin[i], 4.0);
    row[8] = squash(sub_fanout[i], 4.0);
    row[9] = squash(graph.dist_mean(n), 24.0);
    row[10] = squash(graph.dist_std(n), 12.0);
    row[11] = squash(graph.miv_mean(n), 3.0);
    row[12] = squash(graph.miv_std(n), 2.0);
  }
}

}  // namespace m3dfl
