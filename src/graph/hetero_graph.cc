#include "graph/hetero_graph.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace m3dfl {

HeteroGraph::HeteroGraph(const Netlist& netlist, const TierAssignment& tiers,
                         const MivMap& mivs) {
  M3DFL_REQUIRE(netlist.finalized(),
                "graph construction requires a finalized netlist");
  num_pins_ = netlist.num_pins();
  num_mivs_ = mivs.num_mivs();
  num_flops_ = static_cast<std::int32_t>(netlist.flops().size());
  max_level_ = std::max<std::int32_t>(1, netlist.max_level());
  build_edges(netlist, mivs);
  build_attributes(netlist, tiers, mivs);
  build_top_level(netlist);
}

void HeteroGraph::build_edges(const Netlist& nl, const MivMap& mivs) {
  // Edge list first; CSR after.
  std::vector<std::pair<NodeId, NodeId>> edges;

  // Input pin -> output pin inside each combinational gate.  Ports and flops
  // contribute no cross-gate traversal (the graph stays combinational).
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (!is_combinational(gate.type)) continue;
    const PinId out = nl.output_pin(g);
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      edges.emplace_back(nl.input_pin(g, static_cast<std::int32_t>(i)), out);
    }
  }

  // Stem -> branch along each net, with the MIV node spliced into the
  // tier-crossing segment.
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(n);
    const GateId driver = net.driver;
    if (!has_output(nl.gate(driver).type)) continue;
    const PinId stem = nl.output_pin(driver);
    const MivId miv = mivs.miv_of_net(n);
    if (miv == kNullMiv) {
      for (const PinRef& sink : net.sinks) {
        edges.emplace_back(stem, nl.pin_id(sink));
      }
      continue;
    }
    const NodeId miv_n = miv_node(miv);
    edges.emplace_back(stem, miv_n);
    const Miv& m = mivs.miv(miv);
    // Far-tier sinks hang off the MIV; near-tier sinks connect directly.
    for (const PinRef& sink : net.sinks) {
      const bool far = std::find(m.far_sinks.begin(), m.far_sinks.end(),
                                 sink) != m.far_sinks.end();
      edges.emplace_back(far ? miv_n : stem, nl.pin_id(sink));
    }
  }

  const auto n_nodes = static_cast<std::size_t>(num_nodes());
  std::vector<std::int32_t> out_deg(n_nodes, 0);
  std::vector<std::int32_t> in_deg(n_nodes, 0);
  for (const auto& [u, v] : edges) {
    ++out_deg[static_cast<std::size_t>(u)];
    ++in_deg[static_cast<std::size_t>(v)];
  }
  succ_off_.assign(n_nodes + 1, 0);
  pred_off_.assign(n_nodes + 1, 0);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    succ_off_[i + 1] = succ_off_[i] + out_deg[i];
    pred_off_[i + 1] = pred_off_[i] + in_deg[i];
  }
  succ_.resize(edges.size());
  pred_.resize(edges.size());
  std::vector<std::int32_t> sfill(succ_off_.begin(), succ_off_.end() - 1);
  std::vector<std::int32_t> pfill(pred_off_.begin(), pred_off_.end() - 1);
  for (const auto& [u, v] : edges) {
    succ_[static_cast<std::size_t>(sfill[static_cast<std::size_t>(u)]++)] = v;
    pred_[static_cast<std::size_t>(pfill[static_cast<std::size_t>(v)]++)] = u;
  }
}

void HeteroGraph::build_attributes(const Netlist& nl,
                                   const TierAssignment& tiers,
                                   const MivMap& mivs) {
  const auto n_nodes = static_cast<std::size_t>(num_nodes());
  node_net_.assign(n_nodes, kNullNet);
  loc_.assign(n_nodes, 0.0f);
  level_.assign(n_nodes, 0);
  out_.assign(n_nodes, 0);
  near_miv_.assign(n_nodes, 0);

  for (PinId p = 0; p < num_pins_; ++p) {
    const PinRef ref = nl.pin_ref(p);
    const NetId net = nl.pin_net(p);
    node_net_[static_cast<std::size_t>(p)] = net;
    loc_[static_cast<std::size_t>(p)] =
        static_cast<float>(tiers.tier_of(ref.gate));
    level_[static_cast<std::size_t>(p)] = nl.level(ref.gate);
    out_[static_cast<std::size_t>(p)] = ref.is_output() ? 1 : 0;
    if (net != kNullNet && mivs.miv_of_net(net) != kNullMiv) {
      near_miv_[static_cast<std::size_t>(p)] = 1;
    }
  }
  for (MivId m = 0; m < num_mivs_; ++m) {
    const NodeId node = miv_node(m);
    const Miv& miv = mivs.miv(m);
    node_net_[static_cast<std::size_t>(node)] = miv.net;
    loc_[static_cast<std::size_t>(node)] = 0.5f;  // MIVs belong to no tier
    level_[static_cast<std::size_t>(node)] =
        nl.level(nl.net(miv.net).driver);
    near_miv_[static_cast<std::size_t>(node)] = 1;
  }
}

NodeId HeteroGraph::topnode_of_po(std::int32_t po_index) const {
  return topnodes_[static_cast<std::size_t>(num_flops_ + po_index)];
}

void HeteroGraph::build_top_level(const Netlist& nl) {
  // Observation anchors: flop D pins (flop-index order), then PO pins.
  topnodes_.clear();
  for (GateId ff : nl.flops()) topnodes_.push_back(nl.input_pin(ff, 0));
  for (GateId po : nl.primary_outputs()) {
    topnodes_.push_back(nl.input_pin(po, 0));
  }

  const auto n_nodes = static_cast<std::size_t>(num_nodes());
  std::vector<std::int64_t> cnt(n_nodes, 0);
  std::vector<double> sum_d(n_nodes, 0.0), sumsq_d(n_nodes, 0.0);
  std::vector<double> sum_m(n_nodes, 0.0), sumsq_m(n_nodes, 0.0);

  // One BFS per Topnode over the predecessor relation.  BFS layers give the
  // shortest Topedge distance; MIV counts follow the discovery path.
  std::vector<std::int32_t> dist(n_nodes, -1);
  std::vector<std::int32_t> mivs_on_path(n_nodes, 0);
  std::vector<NodeId> bfs_queue;
  std::vector<NodeId> touched;
  for (NodeId top : topnodes_) {
    bfs_queue.clear();
    touched.clear();
    dist[static_cast<std::size_t>(top)] = 0;
    mivs_on_path[static_cast<std::size_t>(top)] = 0;
    bfs_queue.push_back(top);
    touched.push_back(top);
    for (std::size_t head = 0; head < bfs_queue.size(); ++head) {
      const NodeId u = bfs_queue[head];
      const auto ui = static_cast<std::size_t>(u);
      if (u != top) {
        cnt[ui] += 1;
        const double d = dist[ui];
        const double m = mivs_on_path[ui];
        sum_d[ui] += d;
        sumsq_d[ui] += d * d;
        sum_m[ui] += m;
        sumsq_m[ui] += m * m;
      }
      for (NodeId v : predecessors(u)) {
        const auto vi = static_cast<std::size_t>(v);
        if (dist[vi] >= 0) continue;
        dist[vi] = dist[ui] + 1;
        mivs_on_path[vi] =
            mivs_on_path[ui] + (is_miv_node(v) ? 1 : 0);
        bfs_queue.push_back(v);
        touched.push_back(v);
      }
    }
    for (NodeId t : touched) dist[static_cast<std::size_t>(t)] = -1;
  }

  n_top_.assign(n_nodes, 0);
  dist_mean_.assign(n_nodes, 0.0f);
  dist_std_.assign(n_nodes, 0.0f);
  miv_mean_.assign(n_nodes, 0.0f);
  miv_std_.assign(n_nodes, 0.0f);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    if (cnt[i] == 0) continue;
    const double c = static_cast<double>(cnt[i]);
    n_top_[i] = static_cast<std::int32_t>(cnt[i]);
    const double md = sum_d[i] / c;
    const double mm = sum_m[i] / c;
    dist_mean_[i] = static_cast<float>(md);
    miv_mean_[i] = static_cast<float>(mm);
    dist_std_[i] = static_cast<float>(
        std::sqrt(std::max(0.0, sumsq_d[i] / c - md * md)));
    miv_std_[i] = static_cast<float>(
        std::sqrt(std::max(0.0, sumsq_m[i] / c - mm * mm)));
  }
}

}  // namespace m3dfl
