// Heterogeneous diagnosis graph (paper Sec. III-A).
//
// Circuit level: one node per fault site (every gate pin) plus one node per
// MIV; directed edges follow signal flow — input-pin -> output-pin inside a
// gate, and stem -> branch along each net, with the MIV node spliced into
// the tier-crossing segment (stem -> MIV -> far-tier branches).  Flops and
// ports contribute pins but no traversal edges across them, so the edge
// relation is exactly the combinational structure.
//
// Top level: one Topnode per observation point (each scan-flop D pin and
// each PO pin) with Topedges to every node in its fan-in cone.  Topedges are
// never materialized; one backward BFS per Topnode computes, for every cone
// node, the shortest distance and the number of MIV nodes along that path,
// and these are folded into per-node running aggregates (count / mean / std)
// — the numerical encoding of the top level the paper feeds to the GNN
// (Table II).  Build complexity is O(#Topnodes * (V + E)); it runs once per
// design and is reused for every failure log (the amortization argument of
// Sec. III-A).
#ifndef M3DFL_GRAPH_HETERO_GRAPH_H_
#define M3DFL_GRAPH_HETERO_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "m3d/miv.h"
#include "m3d/partition.h"
#include "netlist/netlist.h"

namespace m3dfl {

// Node id space: [0, num_pins) are pin nodes (ids equal Netlist PinIds);
// [num_pins, num_pins + num_mivs) are MIV nodes.
using NodeId = std::int32_t;

class HeteroGraph {
 public:
  HeteroGraph() = default;
  HeteroGraph(const Netlist& netlist, const TierAssignment& tiers,
              const MivMap& mivs);

  std::int32_t num_pins() const { return num_pins_; }
  std::int32_t num_mivs() const { return num_mivs_; }
  std::int32_t num_nodes() const { return num_pins_ + num_mivs_; }
  std::int32_t num_edges() const {
    return static_cast<std::int32_t>(succ_.size());
  }

  bool is_miv_node(NodeId n) const { return n >= num_pins_; }
  NodeId miv_node(MivId miv) const { return num_pins_ + miv; }
  MivId miv_of_node(NodeId n) const {
    M3DFL_ASSERT(is_miv_node(n));
    return n - num_pins_;
  }

  // Directed adjacency (signal direction).
  std::span<const NodeId> successors(NodeId n) const {
    return {succ_.data() + succ_off_[static_cast<std::size_t>(n)],
            static_cast<std::size_t>(
                succ_off_[static_cast<std::size_t>(n) + 1] -
                succ_off_[static_cast<std::size_t>(n)])};
  }
  std::span<const NodeId> predecessors(NodeId n) const {
    return {pred_.data() + pred_off_[static_cast<std::size_t>(n)],
            static_cast<std::size_t>(
                pred_off_[static_cast<std::size_t>(n) + 1] -
                pred_off_[static_cast<std::size_t>(n)])};
  }

  // ---- Static node attributes ---------------------------------------------

  // Net observed at the node (pin net, or the MIV's net); drives the
  // transition lookups of back-tracing.
  NetId node_net(NodeId n) const {
    return node_net_[static_cast<std::size_t>(n)];
  }
  // Tier location: 0 / 1 for pins; 0.5 for MIV nodes (no tier).
  float loc(NodeId n) const { return loc_[static_cast<std::size_t>(n)]; }
  // Topological level of the owning gate (stem driver for MIV nodes).
  std::int32_t level(NodeId n) const {
    return level_[static_cast<std::size_t>(n)];
  }
  bool is_output_pin(NodeId n) const {
    return out_[static_cast<std::size_t>(n)] != 0;
  }
  // True when the node is an MIV node or shares a net with one.
  bool near_miv(NodeId n) const {
    return near_miv_[static_cast<std::size_t>(n)] != 0;
  }
  std::int32_t fanin_degree(NodeId n) const {
    return pred_off_[static_cast<std::size_t>(n) + 1] -
           pred_off_[static_cast<std::size_t>(n)];
  }
  std::int32_t fanout_degree(NodeId n) const {
    return succ_off_[static_cast<std::size_t>(n) + 1] -
           succ_off_[static_cast<std::size_t>(n)];
  }

  // ---- Top level -----------------------------------------------------------

  std::int32_t num_topnodes() const {
    return static_cast<std::int32_t>(topnodes_.size());
  }
  // Topnode anchors: D pins of all flops (by flop index), then PO pins.
  const std::vector<NodeId>& topnodes() const { return topnodes_; }
  NodeId topnode_of_flop(std::int32_t flop_index) const {
    return topnodes_[static_cast<std::size_t>(flop_index)];
  }
  NodeId topnode_of_po(std::int32_t po_index) const;

  // Per-node Topedge aggregates (over all Topnodes whose cone contains the
  // node): count, mean/std of the shortest distance, mean/std of the MIV
  // count along the path.
  std::int32_t n_top(NodeId n) const {
    return n_top_[static_cast<std::size_t>(n)];
  }
  float dist_mean(NodeId n) const {
    return dist_mean_[static_cast<std::size_t>(n)];
  }
  float dist_std(NodeId n) const {
    return dist_std_[static_cast<std::size_t>(n)];
  }
  float miv_mean(NodeId n) const {
    return miv_mean_[static_cast<std::size_t>(n)];
  }
  float miv_std(NodeId n) const {
    return miv_std_[static_cast<std::size_t>(n)];
  }

  std::int32_t max_level() const { return max_level_; }
  std::int32_t num_flops() const { return num_flops_; }

 private:
  void build_edges(const Netlist& nl, const MivMap& mivs);
  void build_attributes(const Netlist& nl, const TierAssignment& tiers,
                        const MivMap& mivs);
  void build_top_level(const Netlist& nl);

  std::int32_t num_pins_ = 0;
  std::int32_t num_mivs_ = 0;
  std::int32_t num_flops_ = 0;
  std::int32_t max_level_ = 1;

  std::vector<std::int32_t> succ_off_, pred_off_;
  std::vector<NodeId> succ_, pred_;

  std::vector<NetId> node_net_;
  std::vector<float> loc_;
  std::vector<std::int32_t> level_;
  std::vector<std::uint8_t> out_;
  std::vector<std::uint8_t> near_miv_;

  std::vector<NodeId> topnodes_;
  std::vector<std::int32_t> n_top_;
  std::vector<float> dist_mean_, dist_std_, miv_mean_, miv_std_;
};

}  // namespace m3dfl

#endif  // M3DFL_GRAPH_HETERO_GRAPH_H_
