// Node feature computation (paper Tables I and II).
//
// Thirteen features per subgraph node, in the paper's Table II order:
//   0  number of fan-in edges in the circuit
//   1  number of fan-out edges in the circuit
//   2  number of Topedges connected (N_top)
//   3  tier-level location (0 bottom / 1 top / 0.5 MIV)
//   4  level in topological order
//   5  whether it is a gate output
//   6  whether it connects to an MIV
//   7  number of fan-in edges in the subgraph
//   8  number of fan-out edges in the subgraph
//   9  mean length of Topedges connected
//  10  std-dev of length of Topedges connected
//  11  mean number of MIVs passed through by Topedges connected
//  12  std-dev of number of MIVs passed through by Topedges connected
//
// Counts and distances are squashed to O(1) ranges with fixed scales (not
// per-dataset statistics) so that a model trained on one design
// configuration transfers to another without renormalization.
#ifndef M3DFL_GRAPH_FEATURES_H_
#define M3DFL_GRAPH_FEATURES_H_

#include <string>

#include "gnn/matrix.h"
#include "graph/hetero_graph.h"

namespace m3dfl {

// Human-readable feature names, Table II order.
extern const char* const kFeatureNames[];

// Fills `features` (pre-sized [n x kNumNodeFeatures]) for the given nodes;
// sub_fanin/sub_fanout are the induced-subgraph degrees per local index.
void compute_node_features(const HeteroGraph& graph,
                           const std::vector<NodeId>& nodes,
                           const std::vector<std::int32_t>& sub_fanin,
                           const std::vector<std::int32_t>& sub_fanout,
                           Matrix& features);

}  // namespace m3dfl

#endif  // M3DFL_GRAPH_FEATURES_H_
