// ATPG-style logic diagnosis engine.
//
// The stand-in for the commercial fault-diagnosis tool the paper
// post-processes (DESIGN.md §2): a classic effect-cause + cause-effect flow.
//
//  1. Effect-cause: for every erroneous tester response, trace back from the
//     failing observation point(s) through the combinational cone, keeping
//     nets that transition under the failing pattern; intersect the per-
//     response suspect sets.  When the intersection dies (multi-fault dies),
//     the engine switches to iterative covering: diagnose the strongest
//     remaining fault, subtract the responses it explains, repeat.
//  2. Cause-effect: enumerate candidate TDFs (stem + branch pins, both
//     transition directions) and MIV delay faults on the suspect nets,
//     fault-simulate each candidate, and score it by how well its predicted
//     failure log matches the observed one (TFSF/TFSP/TPSF counts).
//  3. Report: rank by score and keep the near-best candidates.
//
// Resolution/accuracy/first-hit-index of these reports define the "ATPG
// diagnosis report" columns of paper Tables V and VII.
#ifndef M3DFL_DIAG_ATPG_DIAGNOSIS_H_
#define M3DFL_DIAG_ATPG_DIAGNOSIS_H_

#include <cstdint>
#include <vector>

#include "diag/datagen.h"
#include "diag/failure_log.h"
#include "sim/fault.h"

namespace m3dfl {

// One ranked diagnosis candidate.  Match counts are *pattern-granular*, the
// resolution at which delay-fault diagnosis actually compares behaviours: a
// candidate explains a failing pattern when it predicts any failure there.
// (Bit-exact matching over-trusts the gross-delay model — on silicon, which
// cells capture a marginal transition varies with timing — so tools rank at
// pattern granularity, and so do we.)  perfect() means every observed
// failing pattern is explained; tpsf is recorded but untrusted (see
// DiagnosisOptions::w_tpsf).
struct Candidate {
  Fault fault;
  double score = 0.0;
  std::int32_t tfsf = 0;  // tester-fail, simulation-fail (explained patterns)
  std::int32_t tfsp = 0;  // tester-fail, simulation-pass (unexplained)
  std::int32_t tpsf = 0;  // tester-pass, simulation-fail (mispredicted)
  // Observed failing *bits* the candidate does not predict.  A failing bit
  // is hard tester evidence, so unlike tpsf this secondary count is
  // trustworthy; it separates sibling-branch and upstream candidates from
  // true equivalents (e.g. faults along one fan-out-free chain, which match
  // bit-for-bit and remain indistinguishable).
  std::int32_t bit_tfsp = 0;
  bool perfect() const { return tfsp == 0 && bit_tfsp == 0; }
};

struct DiagnosisReport {
  std::vector<Candidate> candidates;  // best first
  std::int32_t resolution() const {
    return static_cast<std::int32_t>(candidates.size());
  }
};

struct DiagnosisOptions {
  // Candidates scoring below keep_ratio * best_score are dropped.
  double keep_ratio = 0.60;
  std::int32_t max_candidates = 64;
  // Mismatch weights in the score: tfsf - w_tfsp*tfsp - w_tpsf*tpsf.
  // Unexplained tester failures (tfsp) strongly discredit a candidate; a
  // candidate predicting failures the tester did not see (tpsf) is barely
  // penalized, because for *delay* faults gross-delay simulation
  // over-predicts — whether a marginal transition actually misses the
  // capture edge depends on path slack the tool cannot see.  This is what
  // makes behaviourally indistinguishable candidate classes large on
  // high-fan-out designs.
  double w_tfsp = 1.0;
  double w_tpsf = 0.0;
  // Weight of unexplained failing bits (see Candidate::bit_tfsp).
  double w_bit_tfsp = 0.5;
  // Suspect nets must appear in at least this fraction of the traced
  // responses.  1.0 would be the strict intersection of the effect-cause
  // pass; commercial tools keep near-consistent suspects too (noise,
  // timing marginality), which is what inflates their reports.
  double near_fraction = 0.85;
  // At most this many failing responses drive suspect extraction (the
  // intersection converges after a handful; a cap bounds runtime).
  std::int32_t max_traced_responses = 60;
  // Also enumerate static stuck-at candidates on the suspect nets (the
  // static-diagnosis extension; off for the paper's TDF-only flow).
  bool include_stuck_at_candidates = false;
  // Simulate one member per structural TDF equivalence class
  // (sta::collapse_tdf_faults) and reuse the cached observation list for
  // the rest of the class.  Equivalent faults produce identical
  // observations, so every candidate's match counts — and therefore the
  // ranked report — are byte-identical to the uncollapsed run; candidate
  // enumeration itself is untouched.  MIV and stuck-at candidates bypass
  // the cache (the TDF collapsing rules do not apply to them).
  bool collapse_equivalent_candidates = false;
};

// Runs the full diagnosis flow on one failure log.
DiagnosisReport diagnose_atpg(const DesignContext& design,
                              const FailureLog& log,
                              const DiagnosisOptions& options = {});

// True if the candidate names the same defect location as the injected
// fault: same pin for TDFs (either transition direction); for MIV defects,
// the MIV itself or any pin on the MIV's net.
bool candidate_matches_fault(const DesignContext& design,
                             const Candidate& candidate, const Fault& truth);

// Tier of a candidate's location; kMivTier for MIV candidates.
int candidate_tier(const DesignContext& design, const Candidate& candidate);

// True if the candidate's location is electrically tied to an MIV (it is an
// MIV fault or sits on a tier-crossing net).
bool candidate_on_miv(const DesignContext& design, const Candidate& candidate);

}  // namespace m3dfl

#endif  // M3DFL_DIAG_ATPG_DIAGNOSIS_H_
