// Incremental back-trace over a live tester feed (ROADMAP item 4).
//
// The batch pipeline (graph/backtrace.h) needs the complete failure log
// before it produces anything, so first-answer latency is coupled to log
// length and a stalled feed blocks diagnosis entirely.  StreamingBacktrace
// maintains the same intersection / support / quarantine state
// response-by-response:
//
//  * Per-observation-point fan-in cones are computed once and cached
//    (pattern-independent); each arriving response's suspect set is the
//    union of its Topnode cones filtered by the failing pattern's
//    transitions — provably the same set the batch DFS extracts.
//  * While the strict intersection across all accepted responses is
//    non-empty (the clean-feed fast path), each response only narrows it —
//    monotone set intersection, no recount — and the snapshot is exactly
//    what select_backtrace_candidates would emit (unit support, no
//    relaxation, no quarantine).
//  * Once the intersection dies (or the thinning cap engages), every update
//    re-runs the *shared* decision layer select_backtrace_candidates over
//    the accumulated suspect sets in canonical log order, so quarantine is
//    online: a response condemned early is rehabilitated if later consensus
//    outvotes the early evidence, and vice versa.  The snapshot carries
//    cumulative condemnation/rehabilitation counts.
//  * After each response the calibrated confidence (diag/report.h) is
//    re-scored; when the candidate set survives `stability_window`
//    consecutive responses unchanged and the confidence clears the
//    T_P-derived cut, the snapshot turns `stable` — the feed can early-exit.
//
// finalize() assembles the accumulated responses in canonical log order
// (scan_fails, channel_fails, po_fails), applies the same uniform-stride
// thinning, and calls the same select_backtrace_candidates the batch path
// delegates to — so on any feed, finalize() is byte-identical to
// backtrace_with_support(graph, design, log()) by construction, not by
// coincidence.
#ifndef M3DFL_DIAG_STREAM_BACKTRACE_H_
#define M3DFL_DIAG_STREAM_BACKTRACE_H_

#include <cstdint>
#include <set>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "diag/datagen.h"
#include "diag/failure_log.h"
#include "diag/log_io.h"
#include "diag/report.h"
#include "graph/backtrace.h"
#include "graph/hetero_graph.h"

namespace m3dfl {

struct StreamingOptions {
  BacktraceOptions backtrace;
  // Framework T_P in [0.5, 1], for the stability cut (1.0 when untrained:
  // only perfect evidence may early-exit then).
  double tp_threshold = 1.0;
  // Consecutive accepted responses the candidate set must survive unchanged
  // before the snapshot may turn stable.
  std::int32_t stability_window = 4;
  // Stability additionally requires at least this many accepted responses
  // (a single-response "intersection" is trivially unchanged).
  std::int32_t min_responses_for_stability = 3;
};

// What feeding one record did to the session state.
enum class StreamAccept {
  kAccepted,     // failing response accepted; snapshot updated
  kDuplicate,    // observation already accepted; state unchanged
  kMeta,         // mode/limit/blank line; no response added
  kEndOfStream,  // 'end' trailer
};

// The diagnosis state after the most recent accepted response.
struct StreamSnapshot {
  // Candidates / support / quarantine exactly as the shared decision layer
  // scores the accepted responses so far.
  BacktraceResult backtrace;
  // Calibrated confidence over the back-trace evidence alone (model margin
  // unknown mid-stream, so confidence.model_margin stays -1).
  DiagnosisConfidence confidence;
  // The candidate set held unchanged for stability_window consecutive
  // responses and the confidence clears the T_P-derived cut: the caller may
  // early-exit the feed.
  bool stable = false;
  // Accepted-response count at which `stable` first turned true; -1 if it
  // never has.  Latched — it survives later instability so the early-exit
  // point remains reportable.
  std::int32_t early_exit_at = -1;
  // Cumulative online-quarantine churn across all updates: responses that
  // entered quarantine (condemnations) and that later left it again
  // (rehabilitations).  A response can contribute to both repeatedly.
  std::int64_t condemnations = 0;
  std::int64_t rehabilitations = 0;
};

class StreamingBacktrace {
 public:
  // `design.good` must be non-null; `design.compactor` is required only once
  // a chan record arrives.  The graph and context must outlive the session.
  StreamingBacktrace(const HeteroGraph& graph, const DesignContext& design,
                     StreamingOptions options = {});

  // Feeds one parsed record.  Throws m3dfl::Error on semantic violations
  // (scan record in compacted mode, chan record without a compactor) —
  // the same conditions the batch reader rejects.
  StreamAccept add(const StreamRecord& record);

  // State after the most recent accepted response.
  const StreamSnapshot& snapshot() const { return snapshot_; }

  // The accumulated failure log (canonical vectors, arrival order within
  // each kind) — what finalize() scores and what the serving layer hands to
  // the ATPG/GNN stages.
  const FailureLog& log() const { return log_; }
  std::int32_t num_responses() const { return n_accepted_; }

  // Canonical-order thinning + the shared decision layer: byte-identical to
  // backtrace_with_support(graph, design, log()).
  BacktraceResult finalize() const;

 private:
  // (kind, within-kind index) — stable identity of an accepted response.
  // Canonical positions shift as records of earlier kinds arrive, so
  // quarantine churn is tracked under these keys instead.
  using RecordKey = std::pair<int, std::size_t>;

  const std::vector<NodeId>& cone(NodeId topnode);
  std::vector<NodeId> suspects_for(const std::vector<NodeId>& topnodes,
                                   std::int32_t pattern);
  // Assembles all accepted responses in canonical log order; fills
  // `keys[i]` with the stable identity of response i.
  std::vector<TracedResponse> canonical_responses(
      std::vector<RecordKey>* keys) const;
  void update(const std::vector<NodeId>& added_suspects);

  const HeteroGraph* graph_;
  const DesignContext* design_;
  StreamingOptions options_;

  FailureLog log_;
  // Suspect sets parallel to log_.scan_fails / channel_fails / po_fails.
  std::vector<std::vector<NodeId>> scan_suspects_;
  std::vector<std::vector<NodeId>> chan_suspects_;
  std::vector<std::vector<NodeId>> po_suspects_;

  // Pattern-independent fan-in cone per Topnode, sorted ascending.
  std::unordered_map<NodeId, std::vector<NodeId>> cone_cache_;
  // Stamped-visited scratch for cone walks (cleared in O(1) per walk).
  std::vector<std::uint32_t> seen_;
  std::uint32_t stamp_ = 0;
  std::vector<NodeId> stack_;

  // Duplicate rejection against the accumulated state (same policy the
  // batch reader applies over the whole log).
  std::set<std::pair<std::int32_t, std::int32_t>> seen_scan_;
  std::set<std::tuple<std::int32_t, std::int32_t, std::int32_t>> seen_chan_;
  std::set<std::pair<std::int32_t, std::int32_t>> seen_po_;

  // Fast path: running strict intersection, valid while every accepted
  // response is traced (no thinning) and the intersection is non-empty.
  std::vector<NodeId> intersection_;
  std::int32_t n_accepted_ = 0;

  // Responses currently quarantined, for condemnation/rehabilitation diffs.
  std::set<RecordKey> quarantined_keys_;
  // Consecutive updates that produced the current candidate set.
  std::int32_t same_candidates_streak_ = 0;

  StreamSnapshot snapshot_;
};

}  // namespace m3dfl

#endif  // M3DFL_DIAG_STREAM_BACKTRACE_H_
