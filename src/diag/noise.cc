#include "diag/noise.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>

#include "netlist/netlist.h"
#include "util/error.h"

namespace m3dfl {
namespace {

constexpr int kMaxDrawRetries = 16;

// Arms the injector seam matching `kind` with the per-response rate.
void arm_for_kind(FaultInjector& injector, NoiseKind kind, double rate) {
  switch (kind) {
    case NoiseKind::kDropResponse:
      injector.arm(0, rate);
      break;
    case NoiseKind::kSpuriousResponse:
      injector.arm(1, rate);
      break;
    case NoiseKind::kFlipBit:
      injector.arm(2, rate);
      break;
    case NoiseKind::kNone:
    case NoiseKind::kTruncateStore:
      // kTruncateStore is deterministic given the depth; no seam to arm.
      break;
  }
}

}  // namespace

const char* noise_kind_name(NoiseKind kind) {
  switch (kind) {
    case NoiseKind::kNone:
      return "none";
    case NoiseKind::kDropResponse:
      return "drop";
    case NoiseKind::kSpuriousResponse:
      return "spurious";
    case NoiseKind::kFlipBit:
      return "flip";
    case NoiseKind::kTruncateStore:
      return "truncate";
  }
  return "none";
}

NoiseKind parse_noise_kind(std::string_view text) {
  if (text == "none") return NoiseKind::kNone;
  if (text == "drop") return NoiseKind::kDropResponse;
  if (text == "spurious") return NoiseKind::kSpuriousResponse;
  if (text == "flip") return NoiseKind::kFlipBit;
  if (text == "truncate") return NoiseKind::kTruncateStore;
  throw Error("m3dfl: unknown noise kind '" + std::string(text) +
              "' (expected none|drop|spurious|flip|truncate)");
}

LogNoiseModel::LogNoiseModel(const DesignContext& design,
                             const NoiseOptions& options)
    : design_(design),
      options_(options),
      injector_(kNumSeams, options.seed),
      value_rng_(options.seed ^ 0x9E3779B97F4A7C15ull) {
  M3DFL_REQUIRE(options.rate >= 0.0 && options.rate <= 1.0,
                "noise rate must be in [0, 1]");
  M3DFL_REQUIRE(options.store_depth >= 0,
                "noise store depth must be non-negative");
  arm_for_kind(injector_, options_.kind, options_.rate);
}

std::int32_t LogNoiseModel::draw_below(std::int32_t n) {
  M3DFL_ASSERT(n > 0);
  return static_cast<std::int32_t>(
      value_rng_.next_below(static_cast<std::uint64_t>(n)));
}

bool LogNoiseModel::quiet() const {
  if (options_.kind == NoiseKind::kNone) return true;
  if (options_.kind == NoiseKind::kTruncateStore) {
    return options_.rate <= 0.0 && options_.store_depth <= 0;
  }
  return options_.rate <= 0.0;
}

FailureLog LogNoiseModel::perturb(const FailureLog& log) {
  // Byte-identical fast path: the armed-but-quiet noise layer must never
  // change a diagnosis (asserted by the chaos harness).
  if (quiet()) return log;
  switch (options_.kind) {
    case NoiseKind::kDropResponse:
      return drop_responses(log);
    case NoiseKind::kSpuriousResponse:
      return inject_spurious(log);
    case NoiseKind::kFlipBit:
      return flip_bits(log);
    case NoiseKind::kTruncateStore:
      return truncate_store(log);
    case NoiseKind::kNone:
      break;
  }
  return log;
}

// Responses are always visited in log order (scan_fails, channel_fails,
// po_fails) so the i-th seam draw maps to the i-th response — the same
// convention backtrace_with_support() uses for response indices, which is
// what lets the chaos test predict exactly which positions get hit.

FailureLog LogNoiseModel::drop_responses(const FailureLog& log) {
  FailureLog out;
  out.compacted = log.compacted;
  out.pattern_limit = log.pattern_limit;
  for (const Observation& o : log.scan_fails) {
    if (injector_.should_fail(kDropSeam)) {
      ++summary_.dropped;
    } else {
      out.scan_fails.push_back(o);
    }
  }
  for (const ChannelFail& c : log.channel_fails) {
    if (injector_.should_fail(kDropSeam)) {
      ++summary_.dropped;
    } else {
      out.channel_fails.push_back(c);
    }
  }
  for (const Observation& o : log.po_fails) {
    if (injector_.should_fail(kDropSeam)) {
      ++summary_.dropped;
    } else {
      out.po_fails.push_back(o);
    }
  }
  return out;
}

FailureLog LogNoiseModel::inject_spurious(const FailureLog& log) {
  // Spurious bits stay at valid observation points of the same mode and the
  // same failing pattern as the response whose record they corrupt: the
  // result must survive input validation (lint range checks) so the noise
  // reaches the back-trace, where it belongs to the quarantine's problem.
  std::set<Observation> scan_seen(log.scan_fails.begin(),
                                  log.scan_fails.end());
  std::set<ChannelFail> chan_seen(log.channel_fails.begin(),
                                  log.channel_fails.end());
  std::set<Observation> po_seen(log.po_fails.begin(), log.po_fails.end());
  FailureLog out;
  out.compacted = log.compacted;
  out.pattern_limit = log.pattern_limit;
  for (const Observation& o : log.scan_fails) {
    out.scan_fails.push_back(o);
    if (!injector_.should_fail(kSpuriousSeam)) continue;
    M3DFL_REQUIRE(design_.scan != nullptr, "spurious noise needs scan chains");
    for (int tries = 0; tries < kMaxDrawRetries; ++tries) {
      Observation s{o.pattern, /*at_po=*/false,
                    draw_below(design_.scan->num_flops())};
      if (!scan_seen.insert(s).second) continue;
      out.scan_fails.push_back(s);
      ++summary_.injected;
      break;
    }
  }
  for (const ChannelFail& c : log.channel_fails) {
    out.channel_fails.push_back(c);
    if (!injector_.should_fail(kSpuriousSeam)) continue;
    M3DFL_REQUIRE(design_.scan != nullptr && design_.compactor != nullptr,
                  "spurious noise on a compacted log needs the compactor");
    for (int tries = 0; tries < kMaxDrawRetries; ++tries) {
      ChannelFail s{c.pattern,
                    draw_below(design_.compactor->num_channels()),
                    draw_below(design_.scan->max_chain_length())};
      if (design_.compactor->cells_at(*design_.scan, s.channel, s.position)
              .empty()) {
        continue;  // past the end of every chain in the channel
      }
      if (!chan_seen.insert(s).second) continue;
      out.channel_fails.push_back(s);
      ++summary_.injected;
      break;
    }
  }
  for (const Observation& o : log.po_fails) {
    out.po_fails.push_back(o);
    if (!injector_.should_fail(kSpuriousSeam)) continue;
    M3DFL_REQUIRE(design_.netlist != nullptr,
                  "spurious PO noise needs the netlist");
    const auto num_pos =
        static_cast<std::int32_t>(design_.netlist->primary_outputs().size());
    if (num_pos <= 0) continue;
    for (int tries = 0; tries < kMaxDrawRetries; ++tries) {
      Observation s{o.pattern, /*at_po=*/true, draw_below(num_pos)};
      if (!po_seen.insert(s).second) continue;
      out.po_fails.push_back(s);
      ++summary_.injected;
      break;
    }
  }
  return out;
}

FailureLog LogNoiseModel::flip_bits(const FailureLog& log) {
  // Occupied observation points (original + already-moved): a flipped bit
  // must not land on another failing bit — real fail memories hold one
  // record per address, and the log reader rejects duplicates.
  std::set<Observation> scan_used(log.scan_fails.begin(),
                                  log.scan_fails.end());
  std::set<ChannelFail> chan_used(log.channel_fails.begin(),
                                  log.channel_fails.end());
  std::set<Observation> po_used(log.po_fails.begin(), log.po_fails.end());
  FailureLog out;
  out.compacted = log.compacted;
  out.pattern_limit = log.pattern_limit;
  for (const Observation& o : log.scan_fails) {
    Observation moved = o;
    if (injector_.should_fail(kFlipSeam)) {
      M3DFL_REQUIRE(design_.scan != nullptr, "flip noise needs scan chains");
      for (int tries = 0;
           tries < kMaxDrawRetries && design_.scan->num_flops() > 1; ++tries) {
        const Observation candidate{o.pattern, /*at_po=*/false,
                                    draw_below(design_.scan->num_flops())};
        if (scan_used.count(candidate) != 0) continue;
        moved = candidate;
        scan_used.insert(candidate);
        ++summary_.flipped;
        break;
      }
    }
    out.scan_fails.push_back(moved);
  }
  for (const ChannelFail& c : log.channel_fails) {
    ChannelFail moved = c;
    if (injector_.should_fail(kFlipSeam)) {
      M3DFL_REQUIRE(design_.scan != nullptr && design_.compactor != nullptr,
                    "flip noise on a compacted log needs the compactor");
      for (int tries = 0; tries < kMaxDrawRetries; ++tries) {
        const ChannelFail candidate{
            c.pattern, c.channel,
            draw_below(design_.scan->max_chain_length())};
        if (chan_used.count(candidate) != 0) continue;
        if (design_.compactor
                ->cells_at(*design_.scan, candidate.channel,
                           candidate.position)
                .empty()) {
          continue;
        }
        moved = candidate;
        chan_used.insert(candidate);
        ++summary_.flipped;
        break;
      }
    }
    out.channel_fails.push_back(moved);
  }
  for (const Observation& o : log.po_fails) {
    Observation moved = o;
    if (injector_.should_fail(kFlipSeam)) {
      M3DFL_REQUIRE(design_.netlist != nullptr, "flip PO noise needs netlist");
      const auto num_pos =
          static_cast<std::int32_t>(design_.netlist->primary_outputs().size());
      for (int tries = 0; tries < kMaxDrawRetries && num_pos > 1; ++tries) {
        const Observation candidate{o.pattern, /*at_po=*/true,
                                    draw_below(num_pos)};
        if (po_used.count(candidate) != 0) continue;
        moved = candidate;
        po_used.insert(candidate);
        ++summary_.flipped;
        break;
      }
    }
    out.po_fails.push_back(moved);
  }
  return out;
}

FailureLog LogNoiseModel::truncate_store(const FailureLog& log) {
  // Per-pattern failing-bit counts, to size the derived depth.
  std::map<std::int32_t, std::int32_t> per_pattern;
  for (const Observation& o : log.scan_fails) ++per_pattern[o.pattern];
  for (const ChannelFail& c : log.channel_fails) ++per_pattern[c.pattern];
  for (const Observation& o : log.po_fails) ++per_pattern[o.pattern];
  std::int32_t max_bits = 0;
  for (const auto& [pattern, bits] : per_pattern) {
    max_bits = std::max(max_bits, bits);
  }
  std::int32_t depth = options_.store_depth;
  if (depth <= 0) {
    depth = std::max<std::int32_t>(
        1, static_cast<std::int32_t>(
               std::ceil((1.0 - options_.rate) * max_bits)));
  }
  if (depth >= max_bits) return log;  // the store never filled up

  // The tester stores bits in scan-out order; we clip each pattern's list in
  // log order (scan, then channel, then PO bits).
  std::map<std::int32_t, std::int32_t> stored;
  const auto keep = [&](std::int32_t pattern) {
    if (stored[pattern] < depth) {
      ++stored[pattern];
      return true;
    }
    ++summary_.truncated;
    return false;
  };
  FailureLog out;
  out.compacted = log.compacted;
  out.pattern_limit = log.pattern_limit;
  for (const Observation& o : log.scan_fails) {
    if (keep(o.pattern)) out.scan_fails.push_back(o);
  }
  for (const ChannelFail& c : log.channel_fails) {
    if (keep(c.pattern)) out.channel_fails.push_back(c);
  }
  for (const Observation& o : log.po_fails) {
    if (keep(o.pattern)) out.po_fails.push_back(o);
  }
  return out;
}

FailureLog perturb_failure_log(const FailureLog& log,
                               const DesignContext& design,
                               const NoiseOptions& options,
                               NoiseSummary* summary) {
  LogNoiseModel model(design, options);
  FailureLog out = model.perturb(log);
  if (summary != nullptr) *summary = model.summary();
  return out;
}

}  // namespace m3dfl
