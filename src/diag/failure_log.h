// Tester failure logs.
//
// A failure log is what the tester reports for one failing die: the set of
// test patterns that failed and, per failing pattern, the observation points
// where the response mismatched.  Two acquisition modes exist, mirroring the
// paper's with/without response compaction studies:
//  * bypass     — raw scan-out: every failing *scan cell* is identified;
//  * compacted  — XOR space compaction: a failing bit only identifies a
//    (pattern, channel, shift-position) triple, i.e. the parity of the
//    aliased cells, losing which chain actually failed.
// Primary outputs are observed directly in both modes.
#ifndef M3DFL_DIAG_FAILURE_LOG_H_
#define M3DFL_DIAG_FAILURE_LOG_H_

#include <cstdint>
#include <vector>

#include "dft/compactor.h"
#include "dft/scan.h"
#include "sim/fault_sim.h"

namespace m3dfl {

// One failing compacted scan bit.
struct ChannelFail {
  std::int32_t pattern = 0;
  std::int32_t channel = 0;
  std::int32_t position = 0;
  friend bool operator==(const ChannelFail&, const ChannelFail&) = default;
  friend auto operator<=>(const ChannelFail&, const ChannelFail&) = default;
};

struct FailureLog {
  bool compacted = false;
  // Bypass mode: failing scan cells (Observation::at_po == false).
  std::vector<Observation> scan_fails;
  // Compacted mode: failing channel bits.
  std::vector<ChannelFail> channel_fails;
  // Failing primary outputs (both modes).
  std::vector<Observation> po_fails;
  // Tester fail-memory depth: when positive, the log only covers the first
  // `pattern_limit` failing patterns (the tester stopped logging after
  // that).  Diagnosis must truncate candidate predictions the same way.
  std::int32_t pattern_limit = 0;

  bool empty() const {
    return scan_fails.empty() && channel_fails.empty() && po_fails.empty();
  }
  // Number of distinct failing patterns.
  std::int32_t num_failing_patterns() const;
  // Total failing tester bits.
  std::int32_t num_failing_bits() const;
};

// Builds a failure log from raw fault-simulation observations.  When
// `compactor` is non-null the scan part is passed through XOR compaction
// (odd parity over the aliased cells fails); otherwise bypass mode.
FailureLog make_failure_log(const std::vector<Observation>& raw,
                            const ScanChains& chains,
                            const XorCompactor* compactor);

// Models the tester's limited fail memory: keeps only the entries of the
// first `max_failing_patterns` distinct failing patterns (stop-on-Nth-fail).
// Real ATE always truncates failure logs this way, and diagnosing from
// truncated logs is the root of much of the resolution loss commercial
// tools exhibit — especially with large pattern sets (netcard) and response
// compaction, where each surviving bit carries less information.
// No-op when max_failing_patterns <= 0.
FailureLog truncate_failure_log(const FailureLog& log,
                                std::int32_t max_failing_patterns);

}  // namespace m3dfl

#endif  // M3DFL_DIAG_FAILURE_LOG_H_
