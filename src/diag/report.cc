#include "diag/report.h"

#include <algorithm>
#include <sstream>

namespace m3dfl {

void move_to_top(DiagnosisReport& report, const CandidatePredicate& pred) {
  std::stable_partition(report.candidates.begin(), report.candidates.end(),
                        pred);
}

std::vector<Candidate> prune_candidates(DiagnosisReport& report,
                                        const CandidatePredicate& pred) {
  std::vector<Candidate> removed;
  std::vector<Candidate> kept;
  kept.reserve(report.candidates.size());
  for (const Candidate& c : report.candidates) {
    (pred(c) ? removed : kept).push_back(c);
  }
  report.candidates = std::move(kept);
  return removed;
}

void BackupDictionary::record(std::int32_t sample_id,
                              std::vector<Candidate> pruned) {
  if (pruned.empty()) return;
  entries_.emplace_back(sample_id, std::move(pruned));
}

const std::vector<Candidate>& BackupDictionary::lookup(
    std::int32_t sample_id) const {
  static const std::vector<Candidate> kEmpty;
  for (const auto& [id, pruned] : entries_) {
    if (id == sample_id) return pruned;
  }
  return kEmpty;
}

std::int32_t BackupDictionary::num_candidates() const {
  std::int32_t n = 0;
  for (const auto& [id, pruned] : entries_) {
    (void)id;
    n += static_cast<std::int32_t>(pruned.size());
  }
  return n;
}

std::size_t BackupDictionary::size_bytes() const {
  // One record per entry plus one Candidate per pruned item.
  return entries_.size() * sizeof(std::int32_t) +
         static_cast<std::size_t>(num_candidates()) * sizeof(Candidate);
}

std::string report_to_string(const Netlist& netlist,
                             const DiagnosisReport& report,
                             std::size_t max_lines) {
  std::ostringstream os;
  os << "diagnosis report: " << report.candidates.size() << " candidate(s)\n";
  for (std::size_t i = 0; i < report.candidates.size() && i < max_lines; ++i) {
    const Candidate& c = report.candidates[i];
    os << "  #" << (i + 1) << " " << fault_to_string(netlist, c.fault)
       << " score=" << c.score << " tfsf=" << c.tfsf << " tfsp=" << c.tfsp
       << " tpsf=" << c.tpsf << "\n";
  }
  if (report.candidates.size() > max_lines) {
    os << "  ... (" << (report.candidates.size() - max_lines) << " more)\n";
  }
  return os.str();
}

DiagnosisConfidence calibrate_confidence(double backtrace_support,
                                         bool relaxed,
                                         std::int32_t quarantined,
                                         double model_margin,
                                         double tp_threshold) {
  DiagnosisConfidence c;
  c.backtrace_support = std::clamp(backtrace_support, 0.0, 1.0);
  c.model_margin = model_margin;
  c.relaxed = relaxed;
  c.quarantined = quarantined;
  c.noisy_log = relaxed || quarantined > 0;
  const double margin =
      model_margin >= 0.0 ? std::clamp(model_margin, 0.0, 1.0) : 1.0;
  c.combined = c.backtrace_support * margin;
  const double cut = std::clamp(2.0 * tp_threshold - 1.0, 0.0, 1.0);
  c.low_confidence = c.combined < cut;
  return c;
}

}  // namespace m3dfl
