#include "diag/stream_backtrace.h"

#include <algorithm>

#include "util/error.h"
#include "util/thinning.h"

namespace m3dfl {
namespace {

// In-place intersection of two sorted ascending vectors.
void intersect_sorted(std::vector<NodeId>& a, const std::vector<NodeId>& b) {
  std::size_t out = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      a[out++] = a[i];
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  a.resize(out);
}

}  // namespace

StreamingBacktrace::StreamingBacktrace(const HeteroGraph& graph,
                                       const DesignContext& design,
                                       StreamingOptions options)
    : graph_(&graph), design_(&design), options_(options) {
  M3DFL_REQUIRE(design.good != nullptr, "design context missing simulation");
  seen_.assign(static_cast<std::size_t>(graph.num_nodes()), 0);
  // Empty-evidence confidence: nothing supports anything yet.
  snapshot_.confidence =
      calibrate_confidence(0.0, false, 0, -1.0, options_.tp_threshold);
}

const std::vector<NodeId>& StreamingBacktrace::cone(NodeId topnode) {
  auto it = cone_cache_.find(topnode);
  if (it != cone_cache_.end()) return it->second;
  // Backward DFS over the full fan-in cone, pattern-independent — computed
  // once per observation point and reused for every later response.
  std::vector<NodeId> nodes;
  ++stamp_;
  seen_[static_cast<std::size_t>(topnode)] = stamp_;
  stack_.push_back(topnode);
  while (!stack_.empty()) {
    const NodeId u = stack_.back();
    stack_.pop_back();
    nodes.push_back(u);
    for (NodeId v : graph_->predecessors(u)) {
      if (seen_[static_cast<std::size_t>(v)] != stamp_) {
        seen_[static_cast<std::size_t>(v)] = stamp_;
        stack_.push_back(v);
      }
    }
  }
  std::sort(nodes.begin(), nodes.end());
  return cone_cache_.emplace(topnode, std::move(nodes)).first->second;
}

std::vector<NodeId> StreamingBacktrace::suspects_for(
    const std::vector<NodeId>& topnodes, std::int32_t pattern) {
  // Resolve the cones first: cone() uses the shared stamp scratch, so the
  // union pass below needs all of them materialized before taking a stamp
  // of its own.  (unordered_map never moves elements, so the references
  // stay valid across later insertions.)
  std::vector<const std::vector<NodeId>*> cones;
  cones.reserve(topnodes.size());
  for (NodeId t : topnodes) cones.push_back(&cone(t));

  const LocSimulator& good = *design_->good;
  std::vector<NodeId> suspects;
  if (cones.size() == 1) {
    // Single cone is already sorted and duplicate-free.
    for (NodeId u : *cones[0]) {
      const NetId net = graph_->node_net(u);
      if (net != kNullNet && good.has_transition(net, pattern)) {
        suspects.push_back(u);
      }
    }
    return suspects;
  }
  ++stamp_;
  for (const std::vector<NodeId>* c : cones) {
    for (NodeId u : *c) {
      if (seen_[static_cast<std::size_t>(u)] == stamp_) continue;
      seen_[static_cast<std::size_t>(u)] = stamp_;
      const NetId net = graph_->node_net(u);
      if (net != kNullNet && good.has_transition(net, pattern)) {
        suspects.push_back(u);
      }
    }
  }
  std::sort(suspects.begin(), suspects.end());
  return suspects;
}

StreamAccept StreamingBacktrace::add(const StreamRecord& record) {
  switch (record.kind) {
    case StreamRecord::Kind::kNone:
      return StreamAccept::kMeta;
    case StreamRecord::Kind::kEnd:
      return StreamAccept::kEndOfStream;
    case StreamRecord::Kind::kMode:
      M3DFL_REQUIRE(!record.compacted || log_.scan_fails.empty(),
                    "failure log: scan records in compacted mode");
      log_.compacted = record.compacted;
      return StreamAccept::kMeta;
    case StreamRecord::Kind::kLimit:
      log_.pattern_limit = record.pattern_limit;
      return StreamAccept::kMeta;
    case StreamRecord::Kind::kScan: {
      const Observation& o = record.observation;
      M3DFL_REQUIRE(!log_.compacted,
                    "failure log: scan records in compacted mode");
      if (!seen_scan_.emplace(o.pattern, o.index).second) {
        return StreamAccept::kDuplicate;
      }
      log_.scan_fails.push_back(o);
      scan_suspects_.push_back(
          suspects_for({graph_->topnode_of_flop(o.index)}, o.pattern));
      update(scan_suspects_.back());
      return StreamAccept::kAccepted;
    }
    case StreamRecord::Kind::kChan: {
      const ChannelFail& c = record.channel;
      M3DFL_REQUIRE(design_->compactor != nullptr,
                    "compacted log requires a compactor");
      if (!seen_chan_.emplace(c.pattern, c.channel, c.position).second) {
        return StreamAccept::kDuplicate;
      }
      std::vector<NodeId> topnodes;
      for (std::int32_t flop : design_->compactor->cells_at(
               *design_->scan, c.channel, c.position)) {
        topnodes.push_back(graph_->topnode_of_flop(flop));
      }
      log_.channel_fails.push_back(c);
      chan_suspects_.push_back(suspects_for(topnodes, c.pattern));
      update(chan_suspects_.back());
      return StreamAccept::kAccepted;
    }
    case StreamRecord::Kind::kPo: {
      const Observation& o = record.observation;
      if (!seen_po_.emplace(o.pattern, o.index).second) {
        return StreamAccept::kDuplicate;
      }
      log_.po_fails.push_back(o);
      po_suspects_.push_back(
          suspects_for({graph_->topnode_of_po(o.index)}, o.pattern));
      update(po_suspects_.back());
      return StreamAccept::kAccepted;
    }
  }
  return StreamAccept::kMeta;  // unreachable
}

std::vector<TracedResponse> StreamingBacktrace::canonical_responses(
    std::vector<RecordKey>* keys) const {
  std::vector<TracedResponse> responses;
  responses.reserve(static_cast<std::size_t>(n_accepted_));
  if (keys != nullptr) keys->reserve(static_cast<std::size_t>(n_accepted_));
  std::int32_t index = 0;
  for (std::size_t i = 0; i < log_.scan_fails.size(); ++i) {
    responses.push_back(TracedResponse{log_.scan_fails[i].pattern, index++,
                                       &scan_suspects_[i]});
    if (keys != nullptr) keys->push_back(RecordKey{0, i});
  }
  for (std::size_t i = 0; i < log_.channel_fails.size(); ++i) {
    responses.push_back(TracedResponse{log_.channel_fails[i].pattern, index++,
                                       &chan_suspects_[i]});
    if (keys != nullptr) keys->push_back(RecordKey{1, i});
  }
  for (std::size_t i = 0; i < log_.po_fails.size(); ++i) {
    responses.push_back(
        TracedResponse{log_.po_fails[i].pattern, index++, &po_suspects_[i]});
    if (keys != nullptr) keys->push_back(RecordKey{2, i});
  }
  return responses;
}

void StreamingBacktrace::update(const std::vector<NodeId>& added_suspects) {
  ++n_accepted_;
  const bool within_cap =
      n_accepted_ <= options_.backtrace.max_traced_responses;

  // Monotone narrowing: while no thinning is in effect the strict
  // intersection only shrinks, so one sorted-merge pass per response keeps
  // it current.  Once it dies (or the cap engages) the shared decision
  // layer takes over below.
  if (within_cap) {
    if (n_accepted_ == 1) {
      intersection_ = added_suspects;
    } else {
      intersect_sorted(intersection_, added_suspects);
    }
  }

  BacktraceResult result;
  std::set<RecordKey> now_quarantined;
  if (within_cap && !intersection_.empty()) {
    // Exactly what select_backtrace_candidates emits when the strict
    // intersection holds: the intersection with unit support, nothing
    // relaxed, nothing quarantined.
    result.num_responses = n_accepted_;
    result.candidates = intersection_;
    result.support.assign(intersection_.size(), 1.0);
  } else {
    std::vector<RecordKey> keys;
    std::vector<TracedResponse> all = canonical_responses(&keys);
    const std::vector<std::size_t> kept = uniform_stride_indices(
        all.size(), options_.backtrace.max_traced_responses);
    std::vector<TracedResponse> thinned;
    thinned.reserve(kept.size());
    for (std::size_t i : kept) thinned.push_back(all[i]);
    std::vector<std::size_t> quarantined_positions;
    result = select_backtrace_candidates(
        thinned, static_cast<std::size_t>(graph_->num_nodes()),
        options_.backtrace, &quarantined_positions);
    for (std::size_t p : quarantined_positions) {
      now_quarantined.insert(keys[kept[p]]);
    }
  }

  // Online-quarantine churn: condemned = newly quarantined this update,
  // rehabilitated = quarantined before but cleared by the new consensus.
  for (const RecordKey& k : now_quarantined) {
    if (quarantined_keys_.count(k) == 0) ++snapshot_.condemnations;
  }
  for (const RecordKey& k : quarantined_keys_) {
    if (now_quarantined.count(k) == 0) ++snapshot_.rehabilitations;
  }
  quarantined_keys_ = std::move(now_quarantined);

  if (result.candidates == snapshot_.backtrace.candidates &&
      n_accepted_ > 1) {
    ++same_candidates_streak_;
  } else {
    same_candidates_streak_ = 1;
  }

  snapshot_.confidence = calibrate_confidence(
      result.min_support(), result.relaxed,
      static_cast<std::int32_t>(result.quarantined.size()), -1.0,
      options_.tp_threshold);
  snapshot_.backtrace = std::move(result);
  snapshot_.stable =
      !snapshot_.backtrace.candidates.empty() &&
      same_candidates_streak_ >= options_.stability_window &&
      n_accepted_ >= options_.min_responses_for_stability &&
      !snapshot_.confidence.low_confidence;
  if (snapshot_.stable && snapshot_.early_exit_at < 0) {
    snapshot_.early_exit_at = n_accepted_;
  }
}

BacktraceResult StreamingBacktrace::finalize() const {
  std::vector<TracedResponse> all = canonical_responses(nullptr);
  const std::vector<std::size_t> kept = uniform_stride_indices(
      all.size(), options_.backtrace.max_traced_responses);
  std::vector<TracedResponse> thinned;
  thinned.reserve(kept.size());
  for (std::size_t i : kept) thinned.push_back(all[i]);
  return select_backtrace_candidates(
      thinned, static_cast<std::size_t>(graph_->num_nodes()),
      options_.backtrace);
}

}  // namespace m3dfl
