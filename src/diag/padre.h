// PADRE-style baseline: physically-aware diagnostic resolution enhancement.
//
// The paper's baseline [Xue et al., ITC 2013] post-processes a diagnosis
// report one candidate at a time, eliminating candidates whose predicted
// behaviour is inconsistent with the tester evidence.  Only the *first-level*
// classifier is used (as in the paper's comparison), because it improves
// resolution without sacrificing accuracy.
//
// Our substitute applies the same contract to our reports, without any
// further fault simulation (PADRE itself is simulation-free): a candidate is
// eliminated iff another candidate *Pareto-dominates* its match statistics
// (explains at least as many failing patterns, mispredicts no more, with one
// strict inequality).  The ground truth is never dominated — it explains
// everything — so accuracy is preserved; but candidates that tie on every
// statistic all survive, which is why the method loses effectiveness on
// large ambiguous designs (netcard) and cannot deliver tier-level
// localization on M3D designs (paper Table VI, "Tier local." column).
#ifndef M3DFL_DIAG_PADRE_H_
#define M3DFL_DIAG_PADRE_H_

#include "diag/atpg_diagnosis.h"

namespace m3dfl {

struct PadreOptions {
  // Reserved for future elimination-rule tuning; the first level itself is
  // parameter-free (pure dominance).
};

// First-level candidate elimination; returns the refined report.
DiagnosisReport padre_first_level(const DiagnosisReport& report,
                                  const PadreOptions& options = {});

}  // namespace m3dfl

#endif  // M3DFL_DIAG_PADRE_H_
