// Tester-noise model: seeded, deterministic perturbation of failure logs.
//
// Real failure logs are not the clean fault-simulation output the rest of
// the pipeline is trained on.  Four failure modes dominate on actual ATE:
//
//  * drop      — an intermittent delay fault near threshold passes on the
//                tester retest, so a genuinely failing response never makes
//                it into the log;
//  * spurious  — a flipped bit in the tester's fail memory invents a failing
//                response at an observation point the defect never reached;
//  * flip      — the failing value is real but its recorded *address* is
//                corrupted, moving the response to a neighbouring
//                observation point;
//  * truncate  — the fail store has a fixed per-pattern depth, so every
//                pattern's failing-bit list is clipped at the same cap
//                (distinct from truncate_failure_log(), which models the
//                stop-on-Nth-failing-*pattern* limit).
//
// LogNoiseModel applies one of these modes to a FailureLog with a seeded
// util::FaultInjector seam per mode, so a perturbation is a pure function of
// (seed, options, log): chaos tests can replay the exact same corruption,
// and the CLI can reproduce a noisy run from its recorded seed.  Rate 0 (or
// kind kNone) returns the log byte-identical — the noise layer being armed
// but quiet must never change a diagnosis.
#ifndef M3DFL_DIAG_NOISE_H_
#define M3DFL_DIAG_NOISE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "diag/datagen.h"
#include "diag/failure_log.h"
#include "util/fault_injector.h"
#include "util/rng.h"

namespace m3dfl {

enum class NoiseKind {
  kNone = 0,
  kDropResponse,
  kSpuriousResponse,
  kFlipBit,
  kTruncateStore,
};

// Stable short names ("none", "drop", "spurious", "flip", "truncate") used
// by the CLI and in reports.
const char* noise_kind_name(NoiseKind kind);
// Inverse of noise_kind_name; throws M3dflError on an unknown name.
NoiseKind parse_noise_kind(std::string_view text);
// All perturbing kinds (everything but kNone), for sweeps.
inline constexpr NoiseKind kAllNoiseKinds[] = {
    NoiseKind::kDropResponse,
    NoiseKind::kSpuriousResponse,
    NoiseKind::kFlipBit,
    NoiseKind::kTruncateStore,
};

struct NoiseOptions {
  NoiseKind kind = NoiseKind::kNone;
  // Per-response perturbation probability (drop/spurious/flip).  For
  // kTruncateStore it is the severity used to derive the store depth when
  // store_depth == 0: depth = ceil((1 - rate) * max per-pattern bits).
  double rate = 0.0;
  std::uint64_t seed = 0xD1E5EEDull;
  // kTruncateStore only: explicit per-pattern failing-bit cap (the tester's
  // fail-store depth).  0 derives the cap from `rate`.
  std::int32_t store_depth = 0;
};

// What a perturbation actually did (exact accounting, like the injector's
// triggered() counts — chaos tests assert against these).
struct NoiseSummary {
  std::int32_t dropped = 0;    // responses removed (drop kind)
  std::int32_t injected = 0;   // spurious responses added
  std::int32_t flipped = 0;    // responses moved to another observation point
  std::int32_t truncated = 0;  // bits clipped by the simulated store depth
  std::int32_t total() const { return dropped + injected + flipped + truncated; }
};

// Seeded log perturbation.  The injector seams advance across perturb()
// calls (i-th call to a seam sees the i-th draw); construct one model per
// log when per-log reproducibility is wanted.
class LogNoiseModel {
 public:
  // `design` must outlive the model; spurious/flip draws use its scan
  // chains, compactor, and primary outputs to stay at valid observation
  // points (corrupt-but-parseable logs, so the noise reaches the back-trace
  // instead of dying in input validation).
  LogNoiseModel(const DesignContext& design, const NoiseOptions& options);

  // Returns the perturbed copy of `log`.  kNone/rate-0 (with no explicit
  // store depth) returns `log` unchanged.
  FailureLog perturb(const FailureLog& log);

  // Accumulated counts over every perturb() call so far.
  const NoiseSummary& summary() const { return summary_; }
  const FaultInjector& injector() const { return injector_; }
  const NoiseOptions& options() const { return options_; }

 private:
  // Injector seams, one per perturbing kind.
  enum Seam : int { kDropSeam = 0, kSpuriousSeam, kFlipSeam, kNumSeams };

  bool quiet() const;
  // Uniform draw in [0, n) from the value stream.
  std::int32_t draw_below(std::int32_t n);
  FailureLog drop_responses(const FailureLog& log);
  FailureLog inject_spurious(const FailureLog& log);
  FailureLog flip_bits(const FailureLog& log);
  FailureLog truncate_store(const FailureLog& log);

  const DesignContext& design_;
  NoiseOptions options_;
  FaultInjector injector_;
  Rng value_rng_;  // observation-point draws for spurious/flip
  NoiseSummary summary_;
};

// One-shot convenience wrapper around LogNoiseModel.
FailureLog perturb_failure_log(const FailureLog& log,
                               const DesignContext& design,
                               const NoiseOptions& options,
                               NoiseSummary* summary = nullptr);

}  // namespace m3dfl

#endif  // M3DFL_DIAG_NOISE_H_
