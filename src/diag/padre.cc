#include "diag/padre.h"

#include <algorithm>

namespace m3dfl {
namespace {

// c1 dominates c2 when c1 explains at least as much of the tester evidence
// (tfsf) and leaves no more of it unexplained (tfsp), with one strict
// inequality.  tpsf does not participate: over-prediction is untrusted for
// delay faults (path slack), so a candidate cannot be eliminated for it.
// Dominated candidates can never be the best explanation of the evidence,
// so eliminating them cannot remove the ground truth ahead of an
// equally-good candidate — the "no accuracy loss" contract of the
// baseline's first level.
bool dominates(const Candidate& c1, const Candidate& c2) {
  if (c1.tfsf < c2.tfsf || c1.tfsp > c2.tfsp || c1.bit_tfsp > c2.bit_tfsp) {
    return false;
  }
  return c1.tfsf > c2.tfsf || c1.tfsp < c2.tfsp || c1.bit_tfsp < c2.bit_tfsp;
}

}  // namespace

DiagnosisReport padre_first_level(const DiagnosisReport& report,
                                  const PadreOptions& options) {
  (void)options;
  DiagnosisReport out;
  if (report.candidates.empty()) return out;

  // Keep the Pareto front of (tfsf, -tfsp, -tpsf).  Candidates that tie on
  // every match statistic are mutually non-dominated and all survive —
  // which is why the method loses its bite on large, ambiguous designs
  // whose reports are full of behaviourally equivalent candidates.
  for (const Candidate& c : report.candidates) {
    const bool dominated =
        std::any_of(report.candidates.begin(), report.candidates.end(),
                    [&](const Candidate& other) { return dominates(other, c); });
    if (!dominated) out.candidates.push_back(c);
  }
  return out;
}

}  // namespace m3dfl
