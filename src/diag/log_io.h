// Tester failure-log text format.
//
// A minimal STDF-like datalog so failure logs can move between the tester,
// this library, and archival storage:
//
//   m3dfl-faillog 1
//   mode bypass|compacted
//   limit <pattern_limit>
//   scan <pattern> <flop_index>
//   chan <pattern> <channel> <position>
//   po <pattern> <po_index>
//   end
//
// Line order within a record kind is preserved; '#' starts a comment.
//
// The reader is strict: truncated or non-numeric records, trailing garbage,
// negative pattern/flop/channel indices, and duplicate observations are all
// rejected with an m3dfl::Error citing the offending line — a malformed log
// fails loudly at the boundary instead of propagating garbage into
// back-trace (the serving layer maps these to kInvalidInput).
#ifndef M3DFL_DIAG_LOG_IO_H_
#define M3DFL_DIAG_LOG_IO_H_

#include <iosfwd>
#include <string>

#include "diag/failure_log.h"

namespace m3dfl {

void write_failure_log(const FailureLog& log, std::ostream& os);
std::string failure_log_to_string(const FailureLog& log);

// Throws m3dfl::Error on malformed input.
FailureLog read_failure_log(std::istream& is);
FailureLog failure_log_from_string(const std::string& text);

}  // namespace m3dfl

#endif  // M3DFL_DIAG_LOG_IO_H_
