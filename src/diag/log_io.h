// Tester failure-log text format.
//
// A minimal STDF-like datalog so failure logs can move between the tester,
// this library, and archival storage:
//
//   m3dfl-faillog 1
//   mode bypass|compacted
//   limit <pattern_limit>
//   scan <pattern> <flop_index>
//   chan <pattern> <channel> <position>
//   po <pattern> <po_index>
//   end
//
// Line order within a record kind is preserved; '#' starts a comment.
// Lines may end in LF or CRLF (testers on Windows, text-mode transfer
// hops): one trailing '\r' per line is stripped in both the batch and the
// streaming parser, so a CRLF log parses byte-identical to its LF twin.  A
// '\r' anywhere else is still record garbage.
//
// The reader is strict: truncated or non-numeric records, trailing garbage,
// negative pattern/flop/channel indices, and duplicate observations are all
// rejected with an m3dfl::Error citing the offending line — a malformed log
// fails loudly at the boundary instead of propagating garbage into
// back-trace (the serving layer maps these to kInvalidInput).
//
// One tail-following concession: a log whose final line is a *well-formed*
// record but carries no trailing newline is accepted without the 'end'
// trailer.  A live feed snapshotted mid-append ends exactly like that, and
// rejecting it would make every tail-follower wait for a trailer the tester
// has not written yet.  A newline-terminated log without 'end' is still a
// truncation (the writer finished a line and then died), and a partial
// final record still fails its own parse.
#ifndef M3DFL_DIAG_LOG_IO_H_
#define M3DFL_DIAG_LOG_IO_H_

#include <iosfwd>
#include <string>

#include "diag/failure_log.h"
#include "util/limits.h"

namespace m3dfl {

void write_failure_log(const FailureLog& log, std::ostream& os);
std::string failure_log_to_string(const FailureLog& log);

// Throws m3dfl::Error on malformed input.  `limits` bounds adversarial
// input (util/limits.h): line bytes — including an unterminated tail-follow
// line, which must reject at the cap instead of accumulating without limit —
// pattern/index magnitudes, and the total observation count, each rejected
// with a line-cited "limit exceeded" diagnostic.
FailureLog read_failure_log(std::istream& is, const ParseLimits& limits = {});
FailureLog failure_log_from_string(const std::string& text,
                                   const ParseLimits& limits = {});

// One line of the faillog body, parsed for incremental consumption: the
// serving session layer and `m3dfl_tool diagnose --stream` read live tester
// feeds record-by-record instead of waiting for the complete log.  Same
// grammar and same line-cited diagnostics as read_failure_log; duplicate and
// ordering policy is the *caller's* (a batch reader rejects duplicates over
// the whole log, a session rejects them against its accumulated state).
struct StreamRecord {
  enum class Kind {
    kNone,   // blank line or comment
    kMode,   // "mode bypass|compacted"
    kLimit,  // "limit N"
    kScan,   // "scan <pattern> <flop_index>"
    kChan,   // "chan <pattern> <channel> <position>"
    kPo,     // "po <pattern> <po_index>"
    kEnd,    // "end" trailer
  };
  Kind kind = Kind::kNone;
  bool compacted = false;          // kMode
  std::int32_t pattern_limit = 0;  // kLimit
  Observation observation;         // kScan / kPo (at_po set for kPo)
  ChannelFail channel;             // kChan
};

// Parses one body line (anything after the "m3dfl-faillog 1" header).
// Throws m3dfl::Error citing `line_no` on malformed input.  Enforces
// `limits` on the line itself (byte length, pattern/index caps) so callers
// that receive lines from untrusted feeds — SessionManager::add_response
// foremost — inherit the guardrails without their own checks.
StreamRecord parse_stream_record(const std::string& line, int line_no,
                                 const ParseLimits& limits = {});

}  // namespace m3dfl

#endif  // M3DFL_DIAG_LOG_IO_H_
