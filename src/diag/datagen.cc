#include "diag/datagen.h"

#include <algorithm>

#include "util/rng.h"

namespace m3dfl {
namespace {

void check_context(const DesignContext& d, bool needs_compactor) {
  M3DFL_REQUIRE(d.netlist != nullptr && d.tiers != nullptr &&
                    d.mivs != nullptr && d.scan != nullptr &&
                    d.patterns != nullptr && d.good != nullptr,
                "incomplete design context");
  M3DFL_REQUIRE(!needs_compactor || d.compactor != nullptr,
                "compacted data generation requires a compactor");
}

}  // namespace

int pin_tier(const DesignContext& design, PinId pin) {
  return design.tiers->tier_of(design.netlist->pin_gate(pin));
}

std::vector<Sample> generate_samples(const DesignContext& design,
                                     const DataGenOptions& options) {
  check_context(design, options.compacted);
  M3DFL_REQUIRE(options.min_faults >= 1 &&
                    options.max_faults >= options.min_faults,
                "invalid fault-count range");
  const Netlist& nl = *design.netlist;
  Rng rng(options.seed);
  FaultSimulator fsim(nl, *design.good, design.mivs);

  // Injectable TDF sites: pins of logic gates and flops, grouped by tier.
  // Package-port pseudo-cell pins are excluded: fabrication defects live in
  // the device tiers.
  std::vector<PinId> pins_by_tier[kNumTiers];
  for (PinId p = 0; p < nl.num_pins(); ++p) {
    const GateType type = nl.gate(nl.pin_gate(p)).type;
    if (type == GateType::kPrimaryInput || type == GateType::kPrimaryOutput) {
      continue;
    }
    pins_by_tier[pin_tier(design, p)].push_back(p);
  }
  M3DFL_REQUIRE(!pins_by_tier[kBottomTier].empty() &&
                    !pins_by_tier[kTopTier].empty(),
                "a tier has no injectable fault sites");

  const XorCompactor* compactor =
      options.compacted ? design.compactor : nullptr;

  std::vector<Sample> samples;
  samples.reserve(static_cast<std::size_t>(options.num_samples));
  while (static_cast<std::int32_t>(samples.size()) < options.num_samples) {
    Sample sample;
    bool ok = false;
    for (std::int32_t attempt = 0; attempt < options.max_attempts && !ok;
         ++attempt) {
      sample.faults.clear();
      sample.faulty_mivs.clear();

      if (design.mivs->num_mivs() > 0 && rng.next_bool(options.miv_fault_prob)) {
        const MivId miv = static_cast<MivId>(
            rng.next_below(static_cast<std::uint64_t>(design.mivs->num_mivs())));
        sample.faults.push_back(Fault::miv_delay(miv));
        sample.faulty_mivs.push_back(miv);
        sample.fault_tier = kMivTier;
      } else {
        const auto k = static_cast<std::int32_t>(
            rng.next_int(options.min_faults, options.max_faults));
        const int tier =
            rng.next_bool() ? kTopTier : kBottomTier;
        sample.fault_tier = tier;
        const auto& pool = pins_by_tier[tier];
        for (std::int32_t i = 0; i < k; ++i) {
          // Distinct pins within one sample.
          PinId pin;
          do {
            pin = rng.pick(pool);
          } while (std::any_of(sample.faults.begin(), sample.faults.end(),
                               [&](const Fault& f) { return f.pin == pin; }));
          // Guarded so the paper's TDF-only configurations consume the
          // exact same random stream as before this extension existed.
          if (options.stuck_at_prob > 0 &&
              rng.next_bool(options.stuck_at_prob)) {
            sample.faults.push_back(Fault::stuck_at(pin, rng.next_bool()));
          } else {
            sample.faults.push_back(rng.next_bool()
                                        ? Fault::slow_to_rise(pin)
                                        : Fault::slow_to_fall(pin));
          }
        }
      }

      // Every injected fault must be individually detectable so that a
      // fully accurate report is achievable (tester reality: undetected
      // defects produce no failure log at all).
      bool all_detected = true;
      for (const Fault& f : sample.faults) {
        if (!fsim.detects(f)) {
          all_detected = false;
          break;
        }
      }
      if (!all_detected) continue;

      const std::vector<Observation> raw = fsim.simulate(
          std::span<const Fault>(sample.faults.data(), sample.faults.size()));
      if (raw.empty()) continue;
      const std::int32_t fail_memory = options.max_failing_patterns < 0
                                           ? design.fail_memory_patterns
                                           : options.max_failing_patterns;
      sample.log = truncate_failure_log(
          make_failure_log(raw, *design.scan, compactor), fail_memory);
      ok = !sample.log.empty();
    }
    M3DFL_REQUIRE(ok, "failed to generate a detectable fault sample");
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace m3dfl
