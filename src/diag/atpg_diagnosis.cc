#include "diag/atpg_diagnosis.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_set>

#include "sim/fault_sim.h"
#include "sta/collapse.h"
#include "util/thinning.h"

namespace m3dfl {
namespace {

// Failure-log entries encoded as sortable 64-bit keys (bit granularity).
std::vector<std::uint64_t> bit_signature(const FailureLog& log) {
  std::vector<std::uint64_t> sig;
  sig.reserve(static_cast<std::size_t>(log.num_failing_bits()));
  for (const Observation& o : log.scan_fails) {
    sig.push_back((0ULL << 62) | (static_cast<std::uint64_t>(o.pattern) << 24) |
                  static_cast<std::uint64_t>(o.index));
  }
  for (const ChannelFail& c : log.channel_fails) {
    sig.push_back((2ULL << 62) | (static_cast<std::uint64_t>(c.pattern) << 32) |
                  (static_cast<std::uint64_t>(c.channel) << 16) |
                  static_cast<std::uint64_t>(c.position));
  }
  for (const Observation& o : log.po_fails) {
    sig.push_back((1ULL << 62) | (static_cast<std::uint64_t>(o.pattern) << 24) |
                  static_cast<std::uint64_t>(o.index));
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

// Distinct failing patterns of a log, sorted (the scoring granularity).
std::vector<std::int32_t> pattern_signature(const FailureLog& log) {
  std::vector<std::int32_t> sig;
  for (const Observation& o : log.scan_fails) sig.push_back(o.pattern);
  for (const ChannelFail& c : log.channel_fails) sig.push_back(c.pattern);
  for (const Observation& o : log.po_fails) sig.push_back(o.pattern);
  std::sort(sig.begin(), sig.end());
  sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
  return sig;
}

// |a ∩ b| for sorted vectors.
template <typename T>
std::int32_t sorted_overlap(const std::vector<T>& a, const std::vector<T>& b) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::int32_t overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

// One erroneous tester response to back-trace: the failing pattern plus the
// observation-anchor nets (several when compaction aliases chains).
struct Response {
  std::int32_t pattern = 0;
  std::vector<NetId> anchors;
};

std::vector<Response> collect_responses(const DesignContext& design,
                                        const FailureLog& log) {
  const Netlist& nl = *design.netlist;
  std::vector<Response> responses;
  for (const Observation& o : log.scan_fails) {
    responses.push_back(Response{
        o.pattern,
        {nl.gate(nl.flops()[static_cast<std::size_t>(o.index)]).fanin[0]}});
  }
  for (const ChannelFail& c : log.channel_fails) {
    Response r;
    r.pattern = c.pattern;
    for (std::int32_t flop :
         design.compactor->cells_at(*design.scan, c.channel, c.position)) {
      r.anchors.push_back(
          nl.gate(nl.flops()[static_cast<std::size_t>(flop)]).fanin[0]);
    }
    responses.push_back(std::move(r));
  }
  for (const Observation& o : log.po_fails) {
    responses.push_back(Response{
        o.pattern,
        {nl.gate(nl.primary_outputs()[static_cast<std::size_t>(o.index)])
             .fanin[0]}});
  }
  return responses;
}

// Back-cone suspect extraction.  For each response, the suspect set is the
// union over anchors of the nets in the anchor's combinational back-cone
// that transition under the failing pattern.  Returns, per net, in how many
// responses it was suspect.  Static (stuck-at) defects are activated by a
// wrong *level* rather than a missed transition, so when the flow also hunts
// static candidates the transition requirement is dropped.
std::vector<std::int32_t> count_suspects(const DesignContext& design,
                                         const std::vector<Response>& traced,
                                         bool require_transition) {
  const Netlist& nl = *design.netlist;
  const LocSimulator& good = *design.good;
  std::vector<std::int32_t> count(static_cast<std::size_t>(nl.num_nets()), 0);
  std::vector<std::uint32_t> seen(static_cast<std::size_t>(nl.num_nets()), 0);
  std::uint32_t stamp = 0;
  std::vector<NetId> stack;

  for (const Response& r : traced) {
    ++stamp;
    for (NetId anchor : r.anchors) {
      if (seen[static_cast<std::size_t>(anchor)] != stamp) {
        seen[static_cast<std::size_t>(anchor)] = stamp;
        stack.push_back(anchor);
      }
    }
    while (!stack.empty()) {
      const NetId n = stack.back();
      stack.pop_back();
      if (!require_transition || good.has_transition(n, r.pattern)) {
        ++count[static_cast<std::size_t>(n)];
      }
      const GateId driver = nl.net(n).driver;
      const Gate& dg = nl.gate(driver);
      if (!is_combinational(dg.type)) continue;
      for (NetId in : dg.fanin) {
        if (seen[static_cast<std::size_t>(in)] != stamp) {
          seen[static_cast<std::size_t>(in)] = stamp;
          stack.push_back(in);
        }
      }
    }
  }
  return count;
}

// Per-equivalence-class observation cache for the opt-in collapsed
// candidate simulation (DiagnosisOptions::collapse_equivalent_candidates).
// The first TDF seen from a class is simulated; later members reuse its
// observation list, which structural equivalence guarantees is identical.
// Observations depend only on (netlist, good simulation), so one cache
// serves every FaultSimulator instance of a diagnosis run.
class ObservationCache {
 public:
  ObservationCache(const Netlist& netlist, bool enabled) {
    if (!enabled) return;
    collapsed_ = sta::collapse_tdf_faults(netlist);
    cache_.resize(static_cast<std::size_t>(collapsed_->num_classes()));
    filled_.assign(cache_.size(), 0);
  }

  const std::vector<Observation>& simulate(FaultSimulator& fsim,
                                           const Fault& fault) {
    if (!collapsed_ || fault.is_miv() || fault.is_static()) {
      scratch_ = fsim.simulate(fault);
      return scratch_;
    }
    const auto cls = static_cast<std::size_t>(
        collapsed_->class_of[static_cast<std::size_t>(
            sta::tdf_fault_index(fault))]);
    if (!filled_[cls]) {
      cache_[cls] = fsim.simulate(fault);
      filled_[cls] = 1;
    }
    return cache_[cls];
  }

 private:
  std::optional<sta::CollapsedFaults> collapsed_;
  std::vector<std::vector<Observation>> cache_;
  std::vector<char> filled_;
  std::vector<Observation> scratch_;
};

// Candidate faults on a suspect net (stem + branch pins, both directions,
// optional static candidates, plus the MIV if the net crosses tiers).
std::vector<Fault> enumerate_candidates(const DesignContext& design,
                                        const std::vector<NetId>& suspects,
                                        const DiagnosisOptions& options) {
  const Netlist& nl = *design.netlist;
  std::vector<Fault> candidates;
  for (NetId n : suspects) {
    const Net& net = nl.net(n);
    const PinId stem = nl.output_pin(net.driver);
    const auto add_pin = [&](PinId pin) {
      candidates.push_back(Fault::slow_to_rise(pin));
      candidates.push_back(Fault::slow_to_fall(pin));
      if (options.include_stuck_at_candidates) {
        candidates.push_back(Fault::stuck_at(pin, false));
        candidates.push_back(Fault::stuck_at(pin, true));
      }
    };
    add_pin(stem);
    for (const PinRef& sink : net.sinks) add_pin(nl.pin_id(sink));
    const MivId miv = design.mivs->miv_of_net(n);
    if (miv != kNullMiv) candidates.push_back(Fault::miv_delay(miv));
  }
  return candidates;
}

// Iterative-cover ("multiplet") diagnosis for multi-fault dies.  Each round
// anchors on the earliest still-unexplained failing pattern: the responsible
// fault must transition there and reach that pattern's failing observation
// points, so the strict per-anchor suspect intersection contains its site.
// The anchor-consistent candidates are ranked by how many of the remaining
// failing patterns they explain (no penalty for leaving patterns to the
// other faults), the best explanation's patterns are subtracted, and the
// loop continues until every response is accounted for.
DiagnosisReport diagnose_cover(const DesignContext& design,
                               const FailureLog& log,
                               const DiagnosisOptions& options,
                               const std::vector<Response>& responses,
                               ObservationCache& obs_cache) {
  const Netlist& nl = *design.netlist;
  FaultSimulator fsim(nl, *design.good, design.mivs);
  const XorCompactor* compactor = log.compacted ? design.compactor : nullptr;

  DiagnosisReport report;
  std::vector<Response> remaining = responses;
  for (int round = 0; round < 24 && !remaining.empty(); ++round) {
    // Anchor on ONE response (earliest pattern): whatever else is failing,
    // the culprit of this response transitions at its pattern and lies in
    // its cone, so the single-response suspect set must contain its site.
    // (Anchoring on whole patterns breaks when two faults fail the same
    // pattern at different observation points: the cone intersection then
    // contains neither site.)
    std::size_t anchor_idx = 0;
    for (std::size_t i = 1; i < remaining.size(); ++i) {
      if (remaining[i].pattern < remaining[anchor_idx].pattern) {
        anchor_idx = i;
      }
    }
    const std::int32_t anchor = remaining[anchor_idx].pattern;
    const std::vector<Response> cluster = {remaining[anchor_idx]};

    const std::vector<std::int32_t> count = count_suspects(
        design, cluster, !options.include_stuck_at_candidates);
    std::vector<NetId> suspects;
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      if (count[static_cast<std::size_t>(n)] > 0) suspects.push_back(n);
    }

    std::vector<std::int32_t> observed;
    for (const Response& r : remaining) observed.push_back(r.pattern);
    std::sort(observed.begin(), observed.end());
    observed.erase(std::unique(observed.begin(), observed.end()),
                   observed.end());

    // Score the anchor-consistent candidates by how many remaining failing
    // patterns they explain.
    struct Scored {
      Candidate candidate;
      std::vector<std::int32_t> predicted;
    };
    std::vector<Scored> scored;
    for (const Fault& f : enumerate_candidates(design, suspects, options)) {
      const std::vector<Observation>& raw = obs_cache.simulate(fsim, f);
      if (raw.empty()) continue;
      const FailureLog predicted_log = truncate_failure_log(
          make_failure_log(raw, *design.scan, compactor), log.pattern_limit);
      std::vector<std::int32_t> predicted = pattern_signature(predicted_log);
      Candidate c;
      c.fault = f;
      c.tfsf = sorted_overlap(observed, predicted);
      c.tfsp = static_cast<std::int32_t>(observed.size()) - c.tfsf;
      c.tpsf = static_cast<std::int32_t>(predicted.size()) - c.tfsf;
      // Fault interaction can mask a culprit's solo behaviour at the anchor
      // itself, so anchor-explanation is a bonus rather than a filter.
      c.score = c.tfsf +
                (std::binary_search(predicted.begin(), predicted.end(),
                                    anchor)
                     ? 2.0
                     : 0.0);
      if (c.tfsf > 0) scored.push_back(Scored{c, std::move(predicted)});
    }

    if (!scored.empty()) {
      std::sort(scored.begin(), scored.end(),
                [](const Scored& a, const Scored& b) {
                  if (a.candidate.score != b.candidate.score) {
                    return a.candidate.score > b.candidate.score;
                  }
                  if (a.candidate.fault.is_miv() !=
                      b.candidate.fault.is_miv()) {
                    return a.candidate.fault.is_miv();
                  }
                  if (a.candidate.fault.pin != b.candidate.fault.pin) {
                    return a.candidate.fault.pin < b.candidate.fault.pin;
                  }
                  return a.candidate.fault.type < b.candidate.fault.type;
                });
      // Keep the cluster's plausible explanations: all anchor-consistent
      // candidates within a generous score band (the true fault explains
      // only its own share of a multi-fault log).
      const double floor_score =
          scored.front().candidate.score * 0.5 * options.keep_ratio;
      std::int32_t kept = 0;
      for (const Scored& sc : scored) {
        if (sc.candidate.score < floor_score || kept >= 6) break;
        const bool duplicate = std::any_of(
            report.candidates.begin(), report.candidates.end(),
            [&](const Candidate& c) {
              return c.fault == sc.candidate.fault;
            });
        if (!duplicate) {
          report.candidates.push_back(sc.candidate);
          ++kept;
        }
        if (report.resolution() >= options.max_candidates) return report;
      }
    }

    // Subtract the anchored response (guaranteed progress) plus every
    // response whose pattern the round's best explanation covers.
    std::vector<std::int32_t> explained;
    if (!scored.empty()) explained = scored.front().predicted;
    std::vector<Response> next;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      if (i == anchor_idx) continue;
      if (!std::binary_search(explained.begin(), explained.end(),
                              remaining[i].pattern)) {
        next.push_back(std::move(remaining[i]));
      }
    }
    remaining = std::move(next);
  }
  return report;
}

}  // namespace

DiagnosisReport diagnose_atpg(const DesignContext& design,
                              const FailureLog& log,
                              const DiagnosisOptions& options) {
  M3DFL_REQUIRE(design.netlist != nullptr && design.good != nullptr &&
                    design.mivs != nullptr && design.scan != nullptr,
                "incomplete design context");
  M3DFL_REQUIRE(!log.compacted || design.compactor != nullptr,
                "compacted log requires a compactor in the context");
  DiagnosisReport report;
  if (log.empty()) return report;
  const Netlist& nl = *design.netlist;
  ObservationCache obs_cache(nl, options.collapse_equivalent_candidates);

  // ---- Effect-cause: suspect nets -----------------------------------------
  std::vector<Response> responses = collect_responses(design, log);
  thin_uniform_stride(responses, options.max_traced_responses);
  const auto n_traced = static_cast<std::int32_t>(responses.size());
  const std::vector<std::int32_t> count = count_suspects(
      design, responses, !options.include_stuck_at_candidates);

  std::vector<NetId> suspects;
  const auto near_threshold = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(
             std::ceil(options.near_fraction * n_traced)));
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (count[static_cast<std::size_t>(n)] >= near_threshold) {
      suspects.push_back(n);
    }
  }
  if (suspects.empty()) {
    // Multi-fault dies rarely share a common cone across all responses; the
    // standard remedy is iterative covering: diagnose the strongest
    // remaining fault, subtract the responses it explains, repeat.
    return diagnose_cover(design, log, options, responses, obs_cache);
  }

  // ---- Cause-effect: candidate enumeration and simulation -----------------
  const std::vector<Fault> candidates =
      enumerate_candidates(design, suspects, options);

  const std::vector<std::int32_t> observed = pattern_signature(log);
  const std::vector<std::uint64_t> observed_bits = bit_signature(log);
  FaultSimulator fsim(nl, *design.good, design.mivs);
  const XorCompactor* compactor = log.compacted ? design.compactor : nullptr;

  std::vector<Candidate> scored;
  for (const Fault& f : candidates) {
    const std::vector<Observation>& raw = obs_cache.simulate(fsim, f);
    if (raw.empty()) continue;
    // Candidate predictions see the same tester fail-memory truncation as
    // the observed log, so the comparison stays apples-to-apples.
    const FailureLog predicted_log = truncate_failure_log(
        make_failure_log(raw, *design.scan, compactor), log.pattern_limit);
    const std::vector<std::int32_t> predicted =
        pattern_signature(predicted_log);

    Candidate c;
    c.fault = f;
    c.tfsf = sorted_overlap(observed, predicted);
    c.tfsp = static_cast<std::int32_t>(observed.size()) - c.tfsf;
    c.tpsf = static_cast<std::int32_t>(predicted.size()) - c.tfsf;
    c.bit_tfsp = static_cast<std::int32_t>(observed_bits.size()) -
                 sorted_overlap(observed_bits, bit_signature(predicted_log));
    c.score = static_cast<double>(c.tfsf) - options.w_tfsp * c.tfsp -
              options.w_tpsf * c.tpsf - options.w_bit_tfsp * c.bit_tfsp;
    if (c.score <= 0.0) continue;
    scored.push_back(c);
  }
  // No credible explanation from the one-shot intersection: static faults
  // corrupt the launch state, so some responses arise outside their
  // capture-cycle back-cones and poison the intersection.  The iterative
  // cover handles those response-by-response.
  bool have_perfect = false;
  for (const Candidate& c : scored) have_perfect |= c.perfect();
  if (scored.empty() ||
      (options.include_stuck_at_candidates && !have_perfect)) {
    return diagnose_cover(design, log, options, responses, obs_cache);
  }

  // Rank by pattern-level score; within a tie the candidates are behaviour-
  // equivalent as far as the tester evidence goes, so the order falls back
  // to a structural enumeration (stem first, then branches) — the ground
  // truth lands somewhere inside its equivalence class, which is what gives
  // diagnosis reports a non-trivial first-hit index.
  std::vector<std::size_t> order(scored.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    const Candidate& a = scored[x];
    const Candidate& b = scored[y];
    if (a.score != b.score) return a.score > b.score;
    if (a.fault.is_miv() != b.fault.is_miv()) return a.fault.is_miv();
    if (a.fault.pin != b.fault.pin) return a.fault.pin < b.fault.pin;
    return a.fault.type < b.fault.type;
  });
  std::vector<Candidate> ranked;
  ranked.reserve(scored.size());
  for (std::size_t i : order) ranked.push_back(scored[i]);
  scored = std::move(ranked);

  const double floor_score = scored.front().score * options.keep_ratio;
  for (const Candidate& c : scored) {
    if (c.score < floor_score) break;
    report.candidates.push_back(c);
    if (report.resolution() >= options.max_candidates) break;
  }
  return report;
}

bool candidate_matches_fault(const DesignContext& design,
                             const Candidate& candidate, const Fault& truth) {
  if (truth.type == FaultType::kMivDelay) {
    if (candidate.fault.is_miv()) return candidate.fault.miv == truth.miv;
    const Miv& miv = design.mivs->miv(truth.miv);
    return design.netlist->pin_net(candidate.fault.pin) == miv.net;
  }
  if (candidate.fault.is_miv()) {
    const Miv& miv = design.mivs->miv(candidate.fault.miv);
    return design.netlist->pin_net(truth.pin) == miv.net;
  }
  return candidate.fault.pin == truth.pin;
}

int candidate_tier(const DesignContext& design, const Candidate& candidate) {
  if (candidate.fault.is_miv()) return kMivTier;
  return pin_tier(design, candidate.fault.pin);
}

bool candidate_on_miv(const DesignContext& design, const Candidate& candidate) {
  if (candidate.fault.is_miv()) return true;
  const NetId net = design.netlist->pin_net(candidate.fault.pin);
  return design.mivs->miv_of_net(net) != kNullMiv;
}

}  // namespace m3dfl
