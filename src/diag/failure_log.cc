#include "diag/failure_log.h"

#include <algorithm>
#include <map>
#include <set>

namespace m3dfl {

std::int32_t FailureLog::num_failing_patterns() const {
  std::set<std::int32_t> patterns;
  for (const Observation& o : scan_fails) patterns.insert(o.pattern);
  for (const ChannelFail& c : channel_fails) patterns.insert(c.pattern);
  for (const Observation& o : po_fails) patterns.insert(o.pattern);
  return static_cast<std::int32_t>(patterns.size());
}

std::int32_t FailureLog::num_failing_bits() const {
  return static_cast<std::int32_t>(scan_fails.size() + channel_fails.size() +
                                   po_fails.size());
}

FailureLog make_failure_log(const std::vector<Observation>& raw,
                            const ScanChains& chains,
                            const XorCompactor* compactor) {
  FailureLog log;
  log.compacted = compactor != nullptr;
  if (!log.compacted) {
    for (const Observation& o : raw) {
      (o.at_po ? log.po_fails : log.scan_fails).push_back(o);
    }
    return log;
  }

  // XOR compaction: a channel bit fails iff an odd number of the aliased
  // scan cells differ from the good response.
  std::map<ChannelFail, std::int32_t> parity;
  for (const Observation& o : raw) {
    if (o.at_po) {
      log.po_fails.push_back(o);
      continue;
    }
    const std::int32_t chain = chains.chain_of_flop(o.index);
    const std::int32_t position = chains.position_of_flop(o.index);
    const std::int32_t channel = compactor->channel_of_chain(chain);
    ++parity[ChannelFail{o.pattern, channel, position}];
  }
  for (const auto& [key, count] : parity) {
    if (count % 2 == 1) log.channel_fails.push_back(key);
  }
  std::sort(log.channel_fails.begin(), log.channel_fails.end());
  return log;
}

FailureLog truncate_failure_log(const FailureLog& log,
                                std::int32_t max_failing_patterns) {
  if (max_failing_patterns <= 0) return log;
  // Distinct failing patterns in test order; keep the first N.
  std::set<std::int32_t> patterns;
  for (const Observation& o : log.scan_fails) patterns.insert(o.pattern);
  for (const ChannelFail& c : log.channel_fails) patterns.insert(c.pattern);
  for (const Observation& o : log.po_fails) patterns.insert(o.pattern);
  if (static_cast<std::int32_t>(patterns.size()) <= max_failing_patterns) {
    FailureLog out = log;
    out.pattern_limit = max_failing_patterns;
    return out;
  }
  std::int32_t cutoff = 0;
  std::int32_t kept = 0;
  for (std::int32_t p : patterns) {
    cutoff = p;
    if (++kept == max_failing_patterns) break;
  }
  FailureLog out;
  out.compacted = log.compacted;
  out.pattern_limit = max_failing_patterns;
  for (const Observation& o : log.scan_fails) {
    if (o.pattern <= cutoff) out.scan_fails.push_back(o);
  }
  for (const ChannelFail& c : log.channel_fails) {
    if (c.pattern <= cutoff) out.channel_fails.push_back(c);
  }
  for (const Observation& o : log.po_fails) {
    if (o.pattern <= cutoff) out.po_fails.push_back(o);
  }
  return out;
}

}  // namespace m3dfl
