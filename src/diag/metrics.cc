#include "diag/metrics.h"

namespace m3dfl {

SampleEvaluation evaluate_report(const DesignContext& design,
                                 const DiagnosisReport& report,
                                 const Sample& sample) {
  SampleEvaluation eval;
  eval.resolution = report.resolution();
  if (report.candidates.empty()) {
    eval.fhi = 0;
    return eval;
  }

  // Accuracy: every injected fault is named by some candidate.
  eval.accurate = true;
  for (const Fault& truth : sample.faults) {
    bool found = false;
    for (const Candidate& c : report.candidates) {
      if (candidate_matches_fault(design, c, truth)) {
        found = true;
        break;
      }
    }
    if (!found) {
      eval.accurate = false;
      break;
    }
  }

  // FHI: rank of the first candidate matching any injected fault.
  eval.fhi = eval.resolution;  // charged in full on a miss
  for (std::size_t i = 0; i < report.candidates.size(); ++i) {
    bool hit = false;
    for (const Fault& truth : sample.faults) {
      if (candidate_matches_fault(design, report.candidates[i], truth)) {
        hit = true;
        break;
      }
    }
    if (hit) {
      eval.fhi = static_cast<std::int32_t>(i) + 1;
      break;
    }
  }

  // Tier analysis of the candidate list.  MIV candidates belong to no tier
  // and do not break single-tier-ness.
  int tier_seen = kMivTier;
  bool multi = false;
  for (const Candidate& c : report.candidates) {
    const int t = candidate_tier(design, c);
    if (t == kMivTier) continue;
    if (tier_seen == kMivTier) {
      tier_seen = t;
    } else if (tier_seen != t) {
      multi = true;
      break;
    }
  }
  eval.single_tier = !multi;
  eval.tier_localized =
      !multi && tier_seen != kMivTier && tier_seen == sample.fault_tier;
  return eval;
}

}  // namespace m3dfl
