#include "diag/log_io.h"

#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

#include "util/error.h"

namespace m3dfl {

void write_failure_log(const FailureLog& log, std::ostream& os) {
  os << "m3dfl-faillog 1\n";
  os << "mode " << (log.compacted ? "compacted" : "bypass") << "\n";
  os << "limit " << log.pattern_limit << "\n";
  for (const Observation& o : log.scan_fails) {
    os << "scan " << o.pattern << " " << o.index << "\n";
  }
  for (const ChannelFail& c : log.channel_fails) {
    os << "chan " << c.pattern << " " << c.channel << " " << c.position
       << "\n";
  }
  for (const Observation& o : log.po_fails) {
    os << "po " << o.pattern << " " << o.index << "\n";
  }
  os << "end\n";
}

std::string failure_log_to_string(const FailureLog& log) {
  std::ostringstream os;
  write_failure_log(log, os);
  return os.str();
}

namespace {

// All parse diagnostics cite the 1-based line, so a malformed multi-
// megabyte tester log is debuggable from the message alone.
[[noreturn]] void parse_fail(int line_no, const std::string& what) {
  throw Error("failure log line " + std::to_string(line_no) + ": " + what);
}

// Reads the record's numeric fields and rejects truncated records (too few
// fields), non-numeric garbage, and trailing junk after the last field.
void read_fields(std::istringstream& ls, int line_no, const char* kind,
                 std::initializer_list<std::int32_t*> fields) {
  for (std::int32_t* field : fields) {
    if (!(ls >> *field)) {
      parse_fail(line_no, std::string("truncated or non-numeric '") + kind +
                              "' record (expected " +
                              std::to_string(fields.size()) +
                              " integer fields)");
    }
  }
  std::string extra;
  if (ls >> extra) {
    parse_fail(line_no, std::string("trailing garbage '") + extra +
                            "' after '" + kind + "' record");
  }
}

void require_nonnegative(int line_no, const char* what, std::int32_t value) {
  if (value < 0) {
    parse_fail(line_no, std::string("out-of-range ") + what + " " +
                            std::to_string(value) + " (must be >= 0)");
  }
}

// Non-negativity plus the policy cap: a pattern index of 2^31-1 is
// grammatically fine but adversarial — downstream it would size per-pattern
// tables, so it is rejected at the boundary like every other limit.
void require_in_range(int line_no, const char* what, std::int32_t value,
                      std::int32_t cap) {
  require_nonnegative(line_no, what, value);
  if (value > cap) {
    parse_fail(line_no,
               limit_exceeded(what, static_cast<unsigned long long>(value),
                              static_cast<unsigned long long>(cap)));
  }
}

// No token may follow a complete record: "end garbage" or "mode bypass x"
// would silently drop bytes an adversarial feed smuggled onto a valid line.
void reject_trailing(std::istringstream& ls, int line_no, const char* kind) {
  std::string extra;
  if (ls >> extra) {
    parse_fail(line_no, std::string("trailing garbage '") + extra +
                            "' after '" + kind + "' record");
  }
}

// Drops one trailing '\r' so CRLF logs (testers on Windows, logs that
// crossed an FTP/SMB hop in text mode) parse byte-identical to LF logs.
// Only the line terminator is normalized; a '\r' anywhere else is still
// record garbage.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

StreamRecord parse_stream_record(const std::string& line, int line_no,
                                 const ParseLimits& limits) {
  StreamRecord record;
  // The byte bound applies to lines handed in whole (the session layer
  // receives them from the network); lines read through bounded_getline
  // were already capped at the read.
  if (line.size() > limits.max_line_bytes) {
    parse_fail(line_no, limit_exceeded("line bytes", line.size(),
                                       limits.max_line_bytes));
  }
  std::string body = line;
  strip_cr(body);
  const auto hash = body.find('#');
  if (hash != std::string::npos) body.resize(hash);
  std::istringstream ls(body);
  std::string kind;
  if (!(ls >> kind)) return record;  // blank / comment-only line
  if (kind == "end") {
    record.kind = StreamRecord::Kind::kEnd;
    reject_trailing(ls, line_no, "end");
    return record;
  }
  if (kind == "mode") {
    std::string mode;
    ls >> mode;
    if (mode != "bypass" && mode != "compacted") {
      parse_fail(line_no, "bad mode '" + mode + "'");
    }
    record.kind = StreamRecord::Kind::kMode;
    record.compacted = mode == "compacted";
    reject_trailing(ls, line_no, "mode");
    return record;
  }
  if (kind == "limit") {
    record.kind = StreamRecord::Kind::kLimit;
    read_fields(ls, line_no, "limit", {&record.pattern_limit});
    require_in_range(line_no, "pattern limit", record.pattern_limit,
                     limits.max_patterns);
    return record;
  }
  if (kind == "scan") {
    record.kind = StreamRecord::Kind::kScan;
    read_fields(ls, line_no, "scan",
                {&record.observation.pattern, &record.observation.index});
    require_in_range(line_no, "scan pattern", record.observation.pattern,
                     limits.max_patterns);
    require_in_range(line_no, "scan flop index", record.observation.index,
                     limits.max_log_index);
    return record;
  }
  if (kind == "chan") {
    record.kind = StreamRecord::Kind::kChan;
    read_fields(ls, line_no, "chan",
                {&record.channel.pattern, &record.channel.channel,
                 &record.channel.position});
    require_in_range(line_no, "chan pattern", record.channel.pattern,
                     limits.max_patterns);
    require_in_range(line_no, "chan channel", record.channel.channel,
                     limits.max_log_index);
    require_in_range(line_no, "chan position", record.channel.position,
                     limits.max_log_index);
    return record;
  }
  if (kind == "po") {
    record.kind = StreamRecord::Kind::kPo;
    record.observation.at_po = true;
    read_fields(ls, line_no, "po",
                {&record.observation.pattern, &record.observation.index});
    require_in_range(line_no, "po pattern", record.observation.pattern,
                     limits.max_patterns);
    require_in_range(line_no, "po output index", record.observation.index,
                     limits.max_log_index);
    return record;
  }
  parse_fail(line_no, "unknown record '" + kind + "'");
}

FailureLog read_failure_log(std::istream& is, const ParseLimits& limits) {
  std::string line;
  int line_no = 1;
  const BoundedLine header = bounded_getline(is, line, limits.max_line_bytes);
  if (header.too_long()) {
    parse_fail(1, limit_exceeded_over("line bytes", limits.max_line_bytes));
  }
  strip_cr(line);
  M3DFL_REQUIRE(header.ok() && line == "m3dfl-faillog 1",
                "failure log line 1: missing 'm3dfl-faillog 1' header");
  FailureLog log;
  bool saw_end = false;
  // Whether the most recently read line ended at EOF with no trailing
  // newline: a tail-follower's snapshot of a live feed ends that way, and —
  // provided the line itself parsed as a well-formed record — is accepted
  // without the 'end' trailer below.
  bool last_line_unterminated = header.unterminated;
  // Duplicate observations would double-count tester evidence in the
  // candidate match scores downstream, so they are rejected here rather
  // than silently skewing the diagnosis.
  std::set<std::pair<std::int32_t, std::int32_t>> seen_scan;
  std::set<std::tuple<std::int32_t, std::int32_t, std::int32_t>> seen_chan;
  std::set<std::pair<std::int32_t, std::int32_t>> seen_po;
  // Running observation total, capped so a log can never grow the three
  // observation vectors (and the dedup sets shadowing them) without bound.
  std::size_t observations = 0;
  const auto count_observation = [&] {
    ++observations;
    if (observations > limits.max_observations) {
      parse_fail(line_no, limit_exceeded("observations", observations,
                                         limits.max_observations));
    }
  };
  for (;;) {
    const BoundedLine bl = bounded_getline(is, line, limits.max_line_bytes);
    if (bl.too_long()) {
      parse_fail(line_no + 1,
                 limit_exceeded_over("line bytes", limits.max_line_bytes));
    }
    if (!bl.ok()) break;
    ++line_no;
    last_line_unterminated = bl.unterminated;
    const StreamRecord record = parse_stream_record(line, line_no, limits);
    if (record.kind == StreamRecord::Kind::kEnd) {
      saw_end = true;
      break;
    }
    switch (record.kind) {
      case StreamRecord::Kind::kNone:
        break;
      case StreamRecord::Kind::kMode:
        log.compacted = record.compacted;
        break;
      case StreamRecord::Kind::kLimit:
        log.pattern_limit = record.pattern_limit;
        break;
      case StreamRecord::Kind::kScan: {
        const Observation& o = record.observation;
        if (!seen_scan.emplace(o.pattern, o.index).second) {
          parse_fail(line_no, "duplicate scan observation (pattern " +
                                  std::to_string(o.pattern) + ", flop " +
                                  std::to_string(o.index) + ")");
        }
        count_observation();
        log.scan_fails.push_back(o);
        break;
      }
      case StreamRecord::Kind::kChan: {
        const ChannelFail& c = record.channel;
        if (!seen_chan.emplace(c.pattern, c.channel, c.position).second) {
          parse_fail(line_no, "duplicate chan observation (pattern " +
                                  std::to_string(c.pattern) + ", channel " +
                                  std::to_string(c.channel) + ", position " +
                                  std::to_string(c.position) + ")");
        }
        count_observation();
        log.channel_fails.push_back(c);
        break;
      }
      case StreamRecord::Kind::kPo: {
        const Observation& o = record.observation;
        if (!seen_po.emplace(o.pattern, o.index).second) {
          parse_fail(line_no, "duplicate po observation (pattern " +
                                  std::to_string(o.pattern) + ", output " +
                                  std::to_string(o.index) + ")");
        }
        count_observation();
        log.po_fails.push_back(o);
        break;
      }
      case StreamRecord::Kind::kEnd:
        break;  // handled above
    }
  }
  // A newline-terminated log without 'end' is a truncation: the writer
  // completed its last line and then died mid-log.  An *unterminated* final
  // line that nevertheless parsed cleanly is a live feed caught mid-append
  // (tail-following), which must be accepted or no tail-follower could ever
  // read a feed the tester is still writing.
  M3DFL_REQUIRE(saw_end || last_line_unterminated,
                "failure log: truncated (missing 'end' after line " +
                    std::to_string(line_no) + ")");
  M3DFL_REQUIRE(!log.compacted || log.scan_fails.empty(),
                "failure log: scan records in compacted mode");
  return log;
}

FailureLog failure_log_from_string(const std::string& text,
                                   const ParseLimits& limits) {
  std::istringstream is(text);
  return read_failure_log(is, limits);
}

}  // namespace m3dfl
