#include "diag/log_io.h"

#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

#include "util/error.h"

namespace m3dfl {

void write_failure_log(const FailureLog& log, std::ostream& os) {
  os << "m3dfl-faillog 1\n";
  os << "mode " << (log.compacted ? "compacted" : "bypass") << "\n";
  os << "limit " << log.pattern_limit << "\n";
  for (const Observation& o : log.scan_fails) {
    os << "scan " << o.pattern << " " << o.index << "\n";
  }
  for (const ChannelFail& c : log.channel_fails) {
    os << "chan " << c.pattern << " " << c.channel << " " << c.position
       << "\n";
  }
  for (const Observation& o : log.po_fails) {
    os << "po " << o.pattern << " " << o.index << "\n";
  }
  os << "end\n";
}

std::string failure_log_to_string(const FailureLog& log) {
  std::ostringstream os;
  write_failure_log(log, os);
  return os.str();
}

namespace {

// All parse diagnostics cite the 1-based line, so a malformed multi-
// megabyte tester log is debuggable from the message alone.
[[noreturn]] void parse_fail(int line_no, const std::string& what) {
  throw Error("failure log line " + std::to_string(line_no) + ": " + what);
}

// Reads the record's numeric fields and rejects truncated records (too few
// fields), non-numeric garbage, and trailing junk after the last field.
void read_fields(std::istringstream& ls, int line_no, const char* kind,
                 std::initializer_list<std::int32_t*> fields) {
  for (std::int32_t* field : fields) {
    if (!(ls >> *field)) {
      parse_fail(line_no, std::string("truncated or non-numeric '") + kind +
                              "' record (expected " +
                              std::to_string(fields.size()) +
                              " integer fields)");
    }
  }
  std::string extra;
  if (ls >> extra) {
    parse_fail(line_no, std::string("trailing garbage '") + extra +
                            "' after '" + kind + "' record");
  }
}

void require_nonnegative(int line_no, const char* what, std::int32_t value) {
  if (value < 0) {
    parse_fail(line_no, std::string("out-of-range ") + what + " " +
                            std::to_string(value) + " (must be >= 0)");
  }
}

}  // namespace

FailureLog read_failure_log(std::istream& is) {
  std::string line;
  int line_no = 1;
  M3DFL_REQUIRE(std::getline(is, line) && line == "m3dfl-faillog 1",
                "failure log line 1: missing 'm3dfl-faillog 1' header");
  FailureLog log;
  bool saw_end = false;
  // Duplicate observations would double-count tester evidence in the
  // candidate match scores downstream, so they are rejected here rather
  // than silently skewing the diagnosis.
  std::set<std::pair<std::int32_t, std::int32_t>> seen_scan;
  std::set<std::tuple<std::int32_t, std::int32_t, std::int32_t>> seen_chan;
  std::set<std::pair<std::int32_t, std::int32_t>> seen_po;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;
    if (kind == "end") {
      saw_end = true;
      break;
    }
    if (kind == "mode") {
      std::string mode;
      ls >> mode;
      if (mode != "bypass" && mode != "compacted") {
        parse_fail(line_no, "bad mode '" + mode + "'");
      }
      log.compacted = mode == "compacted";
      continue;
    }
    if (kind == "limit") {
      read_fields(ls, line_no, "limit", {&log.pattern_limit});
      require_nonnegative(line_no, "pattern limit", log.pattern_limit);
      continue;
    }
    if (kind == "scan") {
      Observation o;
      read_fields(ls, line_no, "scan", {&o.pattern, &o.index});
      require_nonnegative(line_no, "scan pattern", o.pattern);
      require_nonnegative(line_no, "scan flop index", o.index);
      if (!seen_scan.emplace(o.pattern, o.index).second) {
        parse_fail(line_no, "duplicate scan observation (pattern " +
                                std::to_string(o.pattern) + ", flop " +
                                std::to_string(o.index) + ")");
      }
      log.scan_fails.push_back(o);
      continue;
    }
    if (kind == "chan") {
      ChannelFail c;
      read_fields(ls, line_no, "chan", {&c.pattern, &c.channel, &c.position});
      require_nonnegative(line_no, "chan pattern", c.pattern);
      require_nonnegative(line_no, "chan channel", c.channel);
      require_nonnegative(line_no, "chan position", c.position);
      if (!seen_chan.emplace(c.pattern, c.channel, c.position).second) {
        parse_fail(line_no, "duplicate chan observation (pattern " +
                                std::to_string(c.pattern) + ", channel " +
                                std::to_string(c.channel) + ", position " +
                                std::to_string(c.position) + ")");
      }
      log.channel_fails.push_back(c);
      continue;
    }
    if (kind == "po") {
      Observation o;
      o.at_po = true;
      read_fields(ls, line_no, "po", {&o.pattern, &o.index});
      require_nonnegative(line_no, "po pattern", o.pattern);
      require_nonnegative(line_no, "po output index", o.index);
      if (!seen_po.emplace(o.pattern, o.index).second) {
        parse_fail(line_no, "duplicate po observation (pattern " +
                                std::to_string(o.pattern) + ", output " +
                                std::to_string(o.index) + ")");
      }
      log.po_fails.push_back(o);
      continue;
    }
    parse_fail(line_no, "unknown record '" + kind + "'");
  }
  M3DFL_REQUIRE(saw_end,
                "failure log: truncated (missing 'end' after line " +
                    std::to_string(line_no) + ")");
  M3DFL_REQUIRE(!log.compacted || log.scan_fails.empty(),
                "failure log: scan records in compacted mode");
  return log;
}

FailureLog failure_log_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_failure_log(is);
}

}  // namespace m3dfl
