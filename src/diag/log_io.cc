#include "diag/log_io.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace m3dfl {

void write_failure_log(const FailureLog& log, std::ostream& os) {
  os << "m3dfl-faillog 1\n";
  os << "mode " << (log.compacted ? "compacted" : "bypass") << "\n";
  os << "limit " << log.pattern_limit << "\n";
  for (const Observation& o : log.scan_fails) {
    os << "scan " << o.pattern << " " << o.index << "\n";
  }
  for (const ChannelFail& c : log.channel_fails) {
    os << "chan " << c.pattern << " " << c.channel << " " << c.position
       << "\n";
  }
  for (const Observation& o : log.po_fails) {
    os << "po " << o.pattern << " " << o.index << "\n";
  }
  os << "end\n";
}

std::string failure_log_to_string(const FailureLog& log) {
  std::ostringstream os;
  write_failure_log(log, os);
  return os.str();
}

FailureLog read_failure_log(std::istream& is) {
  std::string line;
  M3DFL_REQUIRE(std::getline(is, line) && line == "m3dfl-faillog 1",
                "failure log: missing 'm3dfl-faillog 1' header");
  FailureLog log;
  bool saw_end = false;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;
    if (kind == "end") {
      saw_end = true;
      break;
    }
    if (kind == "mode") {
      std::string mode;
      ls >> mode;
      M3DFL_REQUIRE(mode == "bypass" || mode == "compacted",
                    "failure log: bad mode '" + mode + "'");
      log.compacted = mode == "compacted";
      continue;
    }
    if (kind == "limit") {
      ls >> log.pattern_limit;
      M3DFL_REQUIRE(!ls.fail(), "failure log: bad limit");
      continue;
    }
    if (kind == "scan") {
      Observation o;
      ls >> o.pattern >> o.index;
      M3DFL_REQUIRE(!ls.fail(), "failure log: bad scan record");
      log.scan_fails.push_back(o);
      continue;
    }
    if (kind == "chan") {
      ChannelFail c;
      ls >> c.pattern >> c.channel >> c.position;
      M3DFL_REQUIRE(!ls.fail(), "failure log: bad chan record");
      log.channel_fails.push_back(c);
      continue;
    }
    if (kind == "po") {
      Observation o;
      o.at_po = true;
      ls >> o.pattern >> o.index;
      M3DFL_REQUIRE(!ls.fail(), "failure log: bad po record");
      log.po_fails.push_back(o);
      continue;
    }
    throw Error("failure log: unknown record '" + kind + "'");
  }
  M3DFL_REQUIRE(saw_end, "failure log: missing 'end'");
  M3DFL_REQUIRE(!log.compacted || log.scan_fails.empty(),
                "failure log: scan records in compacted mode");
  return log;
}

FailureLog failure_log_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_failure_log(is);
}

}  // namespace m3dfl
