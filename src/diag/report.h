// Report manipulation primitives used by the candidate pruning & reordering
// policy (paper Sec. V-D) and the backup dictionary (Sec. VI-A).
#ifndef M3DFL_DIAG_REPORT_H_
#define M3DFL_DIAG_REPORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "diag/atpg_diagnosis.h"

namespace m3dfl {

using CandidatePredicate = std::function<bool(const Candidate&)>;

// Stably moves candidates satisfying `pred` to the head of the report.
void move_to_top(DiagnosisReport& report, const CandidatePredicate& pred);

// Removes candidates satisfying `pred`; returns them (for the backup
// dictionary) in their original order.
std::vector<Candidate> prune_candidates(DiagnosisReport& report,
                                        const CandidatePredicate& pred);

// Backup dictionary: per failing die, the candidates removed by pruning.
// Whenever PFA cannot confirm any candidate of a pruned report, the engineer
// consults the dictionary, restoring full ATPG accuracy (paper Sec. VI-A).
class BackupDictionary {
 public:
  void record(std::int32_t sample_id, std::vector<Candidate> pruned);
  // Pruned candidates for a die; empty if nothing was pruned.
  const std::vector<Candidate>& lookup(std::int32_t sample_id) const;
  std::int32_t num_entries() const {
    return static_cast<std::int32_t>(entries_.size());
  }
  std::int32_t num_candidates() const;
  // Approximate serialized size, for the paper's memory-overhead argument.
  std::size_t size_bytes() const;

 private:
  std::vector<std::pair<std::int32_t, std::vector<Candidate>>> entries_;
};

// Renders a report as text (one candidate per line) for examples/logs.
std::string report_to_string(const Netlist& netlist,
                             const DiagnosisReport& report,
                             std::size_t max_lines = 16);

// Calibrated end-to-end diagnosis confidence.
//
// A diagnosis is only as good as the evidence behind it, and the evidence
// degrades in two independent places: the back-trace (noisy tester logs —
// quarantined responses, majority relaxation, sub-unit support) and the GNN
// read-out (a soft tier verdict near 0.5).  The calibrated confidence
// multiplies the two so that either weakness alone pulls the result down:
//
//   combined = backtrace_support × model_margin
//
// where backtrace_support is the minimum support fraction among the
// surviving candidates (1.0 when the strict intersection held) and
// model_margin = |P(top) - P(bottom)| is the Tier-predictor softmax margin
// (1.0 when no trained model contributed, e.g. degraded serving).  The
// low-confidence cut reuses the framework's PR-selected T_P threshold
// (probability space) mapped to margin space:
//
//   low_confidence  ⇔  combined < clamp(2·T_P − 1, 0, 1)
//
// so a clean back-trace with a model verdict right at T_P sits exactly at
// the boundary, and any evidence loss beyond that flags the result.
struct DiagnosisConfidence {
  double backtrace_support = 1.0;  // min candidate support fraction
  double model_margin = -1.0;      // softmax margin; < 0 = no GNN verdict
  double combined = 1.0;           // support × margin (see above)
  std::int32_t quarantined = 0;    // tester responses excluded as outliers
  bool relaxed = false;            // back-trace used the majority relaxation
  bool noisy_log = false;          // quarantined > 0 || relaxed
  bool low_confidence = false;     // combined below the T_P-derived cut
};

// Computes the calibrated confidence.  `model_margin` < 0 means no GNN
// verdict exists (untrained framework, degraded serving) and only the
// back-trace evidence counts.  `tp_threshold` is the framework's T_P in
// [0.5, 1] (1.0 when untrained: everything short of perfect evidence is
// low-confidence then).
DiagnosisConfidence calibrate_confidence(double backtrace_support,
                                         bool relaxed,
                                         std::int32_t quarantined,
                                         double model_margin,
                                         double tp_threshold);

}  // namespace m3dfl

#endif  // M3DFL_DIAG_REPORT_H_
