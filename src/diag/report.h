// Report manipulation primitives used by the candidate pruning & reordering
// policy (paper Sec. V-D) and the backup dictionary (Sec. VI-A).
#ifndef M3DFL_DIAG_REPORT_H_
#define M3DFL_DIAG_REPORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "diag/atpg_diagnosis.h"

namespace m3dfl {

using CandidatePredicate = std::function<bool(const Candidate&)>;

// Stably moves candidates satisfying `pred` to the head of the report.
void move_to_top(DiagnosisReport& report, const CandidatePredicate& pred);

// Removes candidates satisfying `pred`; returns them (for the backup
// dictionary) in their original order.
std::vector<Candidate> prune_candidates(DiagnosisReport& report,
                                        const CandidatePredicate& pred);

// Backup dictionary: per failing die, the candidates removed by pruning.
// Whenever PFA cannot confirm any candidate of a pruned report, the engineer
// consults the dictionary, restoring full ATPG accuracy (paper Sec. VI-A).
class BackupDictionary {
 public:
  void record(std::int32_t sample_id, std::vector<Candidate> pruned);
  // Pruned candidates for a die; empty if nothing was pruned.
  const std::vector<Candidate>& lookup(std::int32_t sample_id) const;
  std::int32_t num_entries() const {
    return static_cast<std::int32_t>(entries_.size());
  }
  std::int32_t num_candidates() const;
  // Approximate serialized size, for the paper's memory-overhead argument.
  std::size_t size_bytes() const;

 private:
  std::vector<std::pair<std::int32_t, std::vector<Candidate>>> entries_;
};

// Renders a report as text (one candidate per line) for examples/logs.
std::string report_to_string(const Netlist& netlist,
                             const DiagnosisReport& report,
                             std::size_t max_lines = 16);

}  // namespace m3dfl

#endif  // M3DFL_DIAG_REPORT_H_
