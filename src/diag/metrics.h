// Diagnosis quality metrics.
//
// The three measures of paper Sec. II-B, plus tier-level localization:
//  * diagnostic resolution — candidate count of the report (ideal: 1);
//  * accuracy             — every injected defect location appears among the
//                           candidates (single-fault: the one defect);
//  * first-hit index (FHI) — 1-based rank of the first candidate that is a
//                           ground-truth location; when the report misses,
//                           FHI is charged the full resolution (the PFA
//                           engineer walks the whole list fruitlessly).
//  * candidate-based tier localization — all candidates in one tier, and it
//                           is the faulty tier (how a tier-blind flow can
//                           still "localize", paper Table VI).
#ifndef M3DFL_DIAG_METRICS_H_
#define M3DFL_DIAG_METRICS_H_

#include <cstdint>

#include "diag/atpg_diagnosis.h"
#include "diag/datagen.h"
#include "util/stats.h"

namespace m3dfl {

// Quality of one report against one sample's ground truth.
struct SampleEvaluation {
  std::int32_t resolution = 0;
  bool accurate = false;
  std::int32_t fhi = 0;
  // All candidates sit in a single tier == the faulty tier.
  bool tier_localized = false;
  // All candidates sit in a single tier (whichever it is): such reports are
  // excluded from the paper's tier-localization percentages because the ATPG
  // report alone already localized them.
  bool single_tier = false;
};

SampleEvaluation evaluate_report(const DesignContext& design,
                                 const DiagnosisReport& report,
                                 const Sample& sample);

// Aggregate over a test set.
struct QualityStats {
  Accumulator resolution;
  Accumulator fhi;
  std::int32_t hits = 0;
  std::int32_t total = 0;

  void add(const SampleEvaluation& e) {
    resolution.add(static_cast<double>(e.resolution));
    fhi.add(static_cast<double>(e.fhi));
    if (e.accurate) ++hits;
    ++total;
  }
  double accuracy() const {
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

}  // namespace m3dfl

#endif  // M3DFL_DIAG_METRICS_H_
