// Diagnosis dataset generation.
//
// Reproduces the paper's data-generation flow (Fig. 4): faults are injected
// one sample at a time — a single TDF, a set of 2-5 same-tier TDFs (the
// systematic-defect study of Sec. VII-A), or an MIV delay fault — the TDF
// pattern set is fault-simulated, and the erroneous responses are collected
// into a failure log.  Undetected injections are resampled so every sample
// carries a non-empty log, as on a real tester.
#ifndef M3DFL_DIAG_DATAGEN_H_
#define M3DFL_DIAG_DATAGEN_H_

#include <cstdint>
#include <vector>

#include "diag/failure_log.h"
#include "m3d/miv.h"
#include "m3d/partition.h"
#include "sim/fault.h"
#include "sim/fault_sim.h"
#include "sim/logic.h"
#include "sim/simulator.h"

namespace m3dfl {

// Non-owning view over one fully prepared design (netlist + M3D structure +
// DfT + patterns + good-machine results).  Owned by core::Design; every
// diagnosis-layer function operates through this view.
struct DesignContext {
  const Netlist* netlist = nullptr;
  const TierAssignment* tiers = nullptr;
  const MivMap* mivs = nullptr;
  const ScanChains* scan = nullptr;
  const XorCompactor* compactor = nullptr;  // used only in compacted mode
  const PatternSet* patterns = nullptr;
  const LocSimulator* good = nullptr;       // run over *patterns
  // Tester fail-memory depth for this design's test program (failing
  // patterns per die; 0 = unlimited).
  std::int32_t fail_memory_patterns = 0;
};

// Tier label for samples whose defect is an MIV (MIVs belong to no tier).
inline constexpr int kMivTier = -1;

// One labeled diagnosis sample: the tester view plus the ground truth.
struct Sample {
  FailureLog log;
  std::vector<Fault> faults;        // injected fault(s)
  int fault_tier = 0;               // common tier of the TDFs, or kMivTier
  std::vector<MivId> faulty_mivs;   // non-empty for MIV-fault samples
};

struct DataGenOptions {
  std::int32_t num_samples = 100;
  std::uint64_t seed = 1;
  // TDFs injected per sample (uniform in [min,max]); multi-fault samples
  // place all faults in one tier (systematic-defect model).
  std::int32_t min_faults = 1;
  std::int32_t max_faults = 1;
  // Probability that a sample is an MIV delay fault instead of gate TDFs.
  double miv_fault_prob = 0.0;
  // Probability that an injected pin fault is a static stuck-at instead of a
  // TDF (the library's static-diagnosis extension; 0 reproduces the paper).
  double stuck_at_prob = 0.0;
  // Compact the scan responses (uses the context's compactor).
  bool compacted = false;
  // Tester fail-memory depth in failing patterns; 0 = unlimited, -1 = use
  // the design context's configured depth.  See truncate_failure_log().
  std::int32_t max_failing_patterns = -1;
  // Resampling budget per sample before giving up (undetectable faults).
  std::int32_t max_attempts = 64;
};

// Generates labeled samples by fault injection.
std::vector<Sample> generate_samples(const DesignContext& design,
                                     const DataGenOptions& options);

// Tier of the gate owning `pin`.
int pin_tier(const DesignContext& design, PinId pin);

}  // namespace m3dfl

#endif  // M3DFL_DIAG_DATAGEN_H_
