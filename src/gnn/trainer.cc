#include "gnn/trainer.h"

#include <algorithm>
#include <cmath>

#include "diag/datagen.h"  // kMivTier

namespace m3dfl {

double run_epoch_loop(std::size_t dataset_size, const TrainOptions& options,
                      Adam& adam, EpochLoopState& state,
                      const TrainStepFn& step, const EpochHook& hook) {
  if (dataset_size == 0) {
    state.done = true;
    return 0.0;
  }
  std::vector<std::size_t> order(dataset_size);
  while (!state.done && state.next_epoch < options.epochs) {
    // Reset to the identity before shuffling: the epoch's visit order is
    // then a pure function of the rng state, so a state restored from a
    // checkpoint replays exactly the epochs the interrupted run would have.
    for (std::size_t i = 0; i < dataset_size; ++i) order[i] = i;
    state.rng.shuffle(order);

    double epoch_loss = 0.0;
    std::int32_t in_batch = 0;
    for (std::size_t idx : order) {
      epoch_loss += step(idx);
      if (++in_batch >= options.batch_size) {
        adam.step(in_batch);
        in_batch = 0;
      }
    }
    if (in_batch > 0) adam.step(in_batch);
    epoch_loss /= static_cast<double>(dataset_size);

    state.last_loss = epoch_loss;
    ++state.next_epoch;
    if (epoch_loss < state.best_loss - options.min_improvement) {
      state.best_loss = epoch_loss;
      state.stale = 0;
    } else if (++state.stale >= options.patience) {
      state.done = true;
    }
    if (state.next_epoch >= options.epochs) state.done = true;
    if (hook && !hook(state)) break;  // paused (or rolled back and paused)
  }
  return state.last_loss;
}

// ---- Dataset selection ------------------------------------------------------

TrainSet select_tier_samples(std::span<const Subgraph> graphs) {
  TrainSet set;
  // Usable samples: tier-labeled, non-empty.
  for (const Subgraph& g : graphs) {
    if (!g.empty() && (g.tier_label == 0 || g.tier_label == 1)) {
      set.data.push_back(&g);
    }
  }
  set.adj.reserve(set.data.size());
  for (const Subgraph* g : set.data) set.adj.push_back(subgraph_adjacency(*g));
  return set;
}

TrainSet select_miv_samples(std::span<const Subgraph> graphs) {
  TrainSet set;
  for (const Subgraph& g : graphs) {
    if (!g.empty() && !g.miv_local.empty()) set.data.push_back(&g);
  }
  set.adj.reserve(set.data.size());
  for (const Subgraph* g : set.data) set.adj.push_back(subgraph_adjacency(*g));
  return set;
}

LabeledTrainSet select_classifier_samples(std::span<const Subgraph> graphs,
                                          std::span<const int> labels) {
  M3DFL_REQUIRE(graphs.size() == labels.size(),
                "classifier labels must match graphs");
  LabeledTrainSet out;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    if (graphs[i].empty()) continue;
    out.set.data.push_back(&graphs[i]);
    out.labels.push_back(labels[i]);
  }
  out.set.adj.reserve(out.set.data.size());
  for (const Subgraph* g : out.set.data) {
    out.set.adj.push_back(subgraph_adjacency(*g));
  }
  return out;
}

// ---- One-shot training ------------------------------------------------------

double train_tier_predictor(TierPredictor& model,
                            std::span<const Subgraph> graphs,
                            const TrainOptions& options) {
  const TrainSet set = select_tier_samples(graphs);
  Adam adam(AdamOptions{.lr = options.lr});
  model.register_params(adam);
  EpochLoopState state;
  state.rng.reseed(options.seed);
  return run_epoch_loop(set.size(), options, adam, state, [&](std::size_t i) {
    return model.train_step(*set.data[i], set.adj[i], set.data[i]->tier_label);
  });
}

double train_miv_pinpointer(MivPinpointer& model,
                            std::span<const Subgraph> graphs,
                            const TrainOptions& options) {
  const TrainSet set = select_miv_samples(graphs);
  Adam adam(AdamOptions{.lr = options.lr});
  model.register_params(adam);
  EpochLoopState state;
  state.rng.reseed(options.seed);
  return run_epoch_loop(set.size(), options, adam, state, [&](std::size_t i) {
    return model.train_step(*set.data[i], set.adj[i]);
  });
}

double train_prune_classifier(PruneClassifier& model,
                              std::span<const Subgraph> graphs,
                              std::span<const int> labels,
                              const TrainOptions& options) {
  const LabeledTrainSet set = select_classifier_samples(graphs, labels);
  Adam adam(AdamOptions{.lr = options.lr});
  model.register_params(adam);
  EpochLoopState state;
  state.rng.reseed(options.seed);
  return run_epoch_loop(set.set.size(), options, adam, state,
                        [&](std::size_t i) {
                          return model.train_step(*set.set.data[i],
                                                  set.set.adj[i],
                                                  set.labels[i]);
                        });
}

double tier_accuracy(const TierPredictor& model,
                     std::span<const Subgraph> graphs) {
  std::int32_t total = 0;
  std::int32_t correct = 0;
  for (const Subgraph& g : graphs) {
    if (g.empty() || (g.tier_label != 0 && g.tier_label != 1)) continue;
    ++total;
    if (model.predicted_tier(g) == g.tier_label) ++correct;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

double miv_accuracy(const MivPinpointer& model,
                    std::span<const Subgraph> graphs) {
  std::int32_t total = 0;
  std::int32_t correct = 0;
  for (const Subgraph& g : graphs) {
    if (g.empty() || g.miv_local.empty()) continue;
    ++total;
    const std::vector<double> probs = model.predict(g);
    bool ok = true;
    for (std::size_t i = 0; i < probs.size(); ++i) {
      const bool predicted = probs[i] >= 0.5;
      if (predicted != (g.miv_label[i] != 0)) {
        ok = false;
        break;
      }
    }
    if (ok) ++correct;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

std::vector<double> feature_significance(const TierPredictor& model,
                                         std::span<const Subgraph> graphs,
                                         std::uint64_t seed) {
  const double base = tier_accuracy(model, graphs);
  std::vector<double> significance(kNumNodeFeatures, 0.5);
  Rng rng(seed);
  for (std::int32_t f = 0; f < kNumNodeFeatures; ++f) {
    // Shuffle feature f across all nodes of all graphs.
    std::vector<Subgraph> permuted(graphs.begin(), graphs.end());
    std::vector<float> pool;
    for (const Subgraph& g : permuted) {
      for (std::int32_t i = 0; i < g.num_nodes(); ++i) {
        pool.push_back(g.features.at(i, f));
      }
    }
    rng.shuffle(pool);
    std::size_t k = 0;
    for (Subgraph& g : permuted) {
      for (std::int32_t i = 0; i < g.num_nodes(); ++i) {
        g.features.at(i, f) = pool[k++];
      }
    }
    const double drop = base - tier_accuracy(model, permuted);
    significance[static_cast<std::size_t>(f)] =
        std::clamp(0.5 + drop, 0.0, 1.0);
  }
  return significance;
}

}  // namespace m3dfl
