#include "gnn/trainer.h"

#include <algorithm>
#include <cmath>

#include "diag/datagen.h"  // kMivTier

namespace m3dfl {
namespace {

// Generic accumulate-and-step loop shared by the three models.  `step_fn`
// runs one forward/backward pass for dataset index i and returns its loss.
template <typename StepFn>
double run_epochs(std::size_t dataset_size, const TrainOptions& options,
                  Adam& adam, StepFn&& step_fn) {
  if (dataset_size == 0) return 0.0;
  Rng rng(options.seed);
  std::vector<std::size_t> order(dataset_size);
  for (std::size_t i = 0; i < dataset_size; ++i) order[i] = i;

  double best_loss = 1e30;
  std::int32_t stale = 0;
  double epoch_loss = 0.0;
  for (std::int32_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.shuffle(order);
    epoch_loss = 0.0;
    std::int32_t in_batch = 0;
    for (std::size_t idx : order) {
      epoch_loss += step_fn(idx);
      if (++in_batch >= options.batch_size) {
        adam.step(in_batch);
        in_batch = 0;
      }
    }
    if (in_batch > 0) adam.step(in_batch);
    epoch_loss /= static_cast<double>(dataset_size);

    if (epoch_loss < best_loss - options.min_improvement) {
      best_loss = epoch_loss;
      stale = 0;
    } else if (++stale >= options.patience) {
      break;
    }
  }
  return epoch_loss;
}

}  // namespace

double train_tier_predictor(TierPredictor& model,
                            std::span<const Subgraph> graphs,
                            const TrainOptions& options) {
  // Usable samples: tier-labeled, non-empty.
  std::vector<const Subgraph*> data;
  for (const Subgraph& g : graphs) {
    if (!g.empty() && (g.tier_label == 0 || g.tier_label == 1)) {
      data.push_back(&g);
    }
  }
  std::vector<NormalizedAdjacency> adj;
  adj.reserve(data.size());
  for (const Subgraph* g : data) adj.push_back(subgraph_adjacency(*g));

  Adam adam(AdamOptions{.lr = options.lr});
  model.register_params(adam);
  return run_epochs(data.size(), options, adam, [&](std::size_t i) {
    return model.train_step(*data[i], adj[i], data[i]->tier_label);
  });
}

double train_miv_pinpointer(MivPinpointer& model,
                            std::span<const Subgraph> graphs,
                            const TrainOptions& options) {
  std::vector<const Subgraph*> data;
  for (const Subgraph& g : graphs) {
    if (!g.empty() && !g.miv_local.empty()) data.push_back(&g);
  }
  std::vector<NormalizedAdjacency> adj;
  adj.reserve(data.size());
  for (const Subgraph* g : data) adj.push_back(subgraph_adjacency(*g));

  Adam adam(AdamOptions{.lr = options.lr});
  model.register_params(adam);
  return run_epochs(data.size(), options, adam, [&](std::size_t i) {
    return model.train_step(*data[i], adj[i]);
  });
}

double train_prune_classifier(PruneClassifier& model,
                              std::span<const Subgraph> graphs,
                              std::span<const int> labels,
                              const TrainOptions& options) {
  M3DFL_REQUIRE(graphs.size() == labels.size(),
                "classifier labels must match graphs");
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    if (!graphs[i].empty()) keep.push_back(i);
  }
  std::vector<NormalizedAdjacency> adj;
  adj.reserve(keep.size());
  for (std::size_t i : keep) adj.push_back(subgraph_adjacency(graphs[i]));

  Adam adam(AdamOptions{.lr = options.lr});
  model.register_params(adam);
  return run_epochs(keep.size(), options, adam, [&](std::size_t i) {
    return model.train_step(graphs[keep[i]], adj[i],
                            labels[keep[i]]);
  });
}

double tier_accuracy(const TierPredictor& model,
                     std::span<const Subgraph> graphs) {
  std::int32_t total = 0;
  std::int32_t correct = 0;
  for (const Subgraph& g : graphs) {
    if (g.empty() || (g.tier_label != 0 && g.tier_label != 1)) continue;
    ++total;
    if (model.predicted_tier(g) == g.tier_label) ++correct;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

double miv_accuracy(const MivPinpointer& model,
                    std::span<const Subgraph> graphs) {
  std::int32_t total = 0;
  std::int32_t correct = 0;
  for (const Subgraph& g : graphs) {
    if (g.empty() || g.miv_local.empty()) continue;
    ++total;
    const std::vector<double> probs = model.predict(g);
    bool ok = true;
    for (std::size_t i = 0; i < probs.size(); ++i) {
      const bool predicted = probs[i] >= 0.5;
      if (predicted != (g.miv_label[i] != 0)) {
        ok = false;
        break;
      }
    }
    if (ok) ++correct;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) /
                          static_cast<double>(total);
}

std::vector<double> feature_significance(const TierPredictor& model,
                                         std::span<const Subgraph> graphs,
                                         std::uint64_t seed) {
  const double base = tier_accuracy(model, graphs);
  std::vector<double> significance(kNumNodeFeatures, 0.5);
  Rng rng(seed);
  for (std::int32_t f = 0; f < kNumNodeFeatures; ++f) {
    // Shuffle feature f across all nodes of all graphs.
    std::vector<Subgraph> permuted(graphs.begin(), graphs.end());
    std::vector<float> pool;
    for (const Subgraph& g : permuted) {
      for (std::int32_t i = 0; i < g.num_nodes(); ++i) {
        pool.push_back(g.features.at(i, f));
      }
    }
    rng.shuffle(pool);
    std::size_t k = 0;
    for (Subgraph& g : permuted) {
      for (std::int32_t i = 0; i < g.num_nodes(); ++i) {
        g.features.at(i, f) = pool[k++];
      }
    }
    const double drop = base - tier_accuracy(model, permuted);
    significance[static_cast<std::size_t>(f)] =
        std::clamp(0.5 + drop, 0.0, 1.0);
  }
  return significance;
}

}  // namespace m3dfl
