#include "gnn/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace m3dfl {

void jacobi_eigen(std::vector<std::vector<double>> a,
                  std::vector<double>& eigenvalues,
                  std::vector<std::vector<double>>& eigenvectors) {
  const std::size_t n = a.size();
  for (const auto& row : a) {
    M3DFL_REQUIRE(row.size() == n, "jacobi_eigen requires a square matrix");
  }
  // V starts as identity; columns accumulate the rotations.
  std::vector<std::vector<double>> v(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) v[i][i] = 1.0;

  for (int sweep = 0; sweep < 64; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a[p][q] * a[p][q];
    }
    if (off < 1e-18) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a[p][q]) < 1e-15) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k][p];
          const double akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p][k];
          const double aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k][p];
          const double vkq = v[k][q];
          v[k][p] = c * vkp - s * vkq;
          v[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a[x][x] > a[y][y];
  });
  eigenvalues.resize(n);
  eigenvectors.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    eigenvalues[i] = a[order[i]][order[i]];
    for (std::size_t k = 0; k < n; ++k) {
      eigenvectors[i][k] = v[k][order[i]];
    }
  }
}

PcaResult fit_pca(const std::vector<std::vector<double>>& samples,
                  std::int32_t k) {
  M3DFL_REQUIRE(!samples.empty(), "PCA needs at least one sample");
  const std::size_t d = samples.front().size();
  for (const auto& s : samples) {
    M3DFL_REQUIRE(s.size() == d, "inconsistent PCA sample width");
  }
  M3DFL_REQUIRE(k >= 1 && static_cast<std::size_t>(k) <= d,
                "invalid PCA component count");

  PcaResult result;
  result.mean.assign(d, 0.0);
  for (const auto& s : samples) {
    for (std::size_t j = 0; j < d; ++j) result.mean[j] += s[j];
  }
  for (double& m : result.mean) m /= static_cast<double>(samples.size());

  std::vector<std::vector<double>> cov(d, std::vector<double>(d, 0.0));
  for (const auto& s : samples) {
    for (std::size_t i = 0; i < d; ++i) {
      const double di = s[i] - result.mean[i];
      for (std::size_t j = i; j < d; ++j) {
        cov[i][j] += di * (s[j] - result.mean[j]);
      }
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov[i][j] /= static_cast<double>(samples.size());
      cov[j][i] = cov[i][j];
    }
  }

  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;
  jacobi_eigen(cov, eigenvalues, eigenvectors);
  for (std::int32_t c = 0; c < k; ++c) {
    result.components.push_back(eigenvectors[static_cast<std::size_t>(c)]);
    result.explained_variance.push_back(
        std::max(0.0, eigenvalues[static_cast<std::size_t>(c)]));
  }
  return result;
}

std::vector<double> pca_project(const PcaResult& pca,
                                const std::vector<double>& sample) {
  M3DFL_REQUIRE(sample.size() == pca.mean.size(),
                "sample width does not match fitted PCA");
  std::vector<double> out(pca.components.size(), 0.0);
  for (std::size_t c = 0; c < pca.components.size(); ++c) {
    for (std::size_t j = 0; j < sample.size(); ++j) {
      out[c] += (sample[j] - pca.mean[j]) * pca.components[c][j];
    }
  }
  return out;
}

double cloud_overlap(const std::vector<std::array<double, 2>>& a,
                     const std::vector<std::array<double, 2>>& b) {
  M3DFL_REQUIRE(a.size() >= 2 && b.size() >= 2,
                "cloud_overlap needs at least two points per cloud");
  const auto fit = [](const std::vector<std::array<double, 2>>& pts,
                      double mean[2], double cov[3]) {
    mean[0] = mean[1] = 0.0;
    for (const auto& p : pts) {
      mean[0] += p[0];
      mean[1] += p[1];
    }
    mean[0] /= static_cast<double>(pts.size());
    mean[1] /= static_cast<double>(pts.size());
    cov[0] = cov[1] = cov[2] = 0.0;  // xx, xy, yy
    for (const auto& p : pts) {
      const double dx = p[0] - mean[0];
      const double dy = p[1] - mean[1];
      cov[0] += dx * dx;
      cov[1] += dx * dy;
      cov[2] += dy * dy;
    }
    const double n = static_cast<double>(pts.size());
    cov[0] = cov[0] / n + 1e-9;  // regularized
    cov[1] = cov[1] / n;
    cov[2] = cov[2] / n + 1e-9;
  };
  double ma[2], mb[2], ca[3], cb[3];
  fit(a, ma, ca);
  fit(b, mb, cb);

  // Bhattacharyya distance between Gaussians, coefficient = exp(-distance).
  const double sxx = 0.5 * (ca[0] + cb[0]);
  const double sxy = 0.5 * (ca[1] + cb[1]);
  const double syy = 0.5 * (ca[2] + cb[2]);
  const double det_s = sxx * syy - sxy * sxy;
  const double det_a = ca[0] * ca[2] - ca[1] * ca[1];
  const double det_b = cb[0] * cb[2] - cb[1] * cb[1];
  const double dx = ma[0] - mb[0];
  const double dy = ma[1] - mb[1];
  // (dx, dy) Sigma^-1 (dx, dy)^T
  const double quad =
      (dx * (syy * dx - sxy * dy) + dy * (sxx * dy - sxy * dx)) / det_s;
  const double distance =
      0.125 * quad +
      0.5 * std::log(det_s / std::sqrt(std::max(det_a * det_b, 1e-30)));
  return std::exp(-std::max(0.0, distance));
}

}  // namespace m3dfl
