// Dense row-major float matrix with the operations needed by the GCN stack.
//
// Shapes here are tiny (subgraphs of tens-to-hundreds of nodes, feature
// widths <= 64), so a straightforward dense implementation is both simple
// and fast; no external BLAS is used (the library is dependency-free by
// design).
#ifndef M3DFL_GNN_MATRIX_H_
#define M3DFL_GNN_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace m3dfl {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::int32_t rows, std::int32_t cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              0.0f) {
    M3DFL_ASSERT(rows >= 0 && cols >= 0);
  }

  std::int32_t rows() const { return rows_; }
  std::int32_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  float at(std::int32_t r, std::int32_t c) const { return data_[index(r, c)]; }
  float& at(std::int32_t r, std::int32_t c) { return data_[index(r, c)]; }

  std::span<const float> row(std::int32_t r) const {
    return std::span<const float>(&data_[index(r, 0)],
                                  static_cast<std::size_t>(cols_));
  }
  std::span<float> row(std::int32_t r) {
    return std::span<float>(&data_[index(r, 0)],
                            static_cast<std::size_t>(cols_));
  }

  std::span<const float> data() const { return data_; }
  std::span<float> data() { return data_; }

  void fill(float value) {
    for (float& x : data_) x = value;
  }
  // Glorot-style initialization for learnable weights.
  void init_glorot(Rng& rng);

 private:
  std::size_t index(std::int32_t r, std::int32_t c) const {
    M3DFL_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(c);
  }

  std::int32_t rows_ = 0;
  std::int32_t cols_ = 0;
  std::vector<float> data_;
};

// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);
// C = A^T * B.
Matrix matmul_tn(const Matrix& a, const Matrix& b);
// C = A * B^T.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

// a += b (same shape).
void add_inplace(Matrix& a, const Matrix& b);
// a += scale * b.
void axpy_inplace(Matrix& a, float scale, const Matrix& b);
void scale_inplace(Matrix& a, float scale);

// Elementwise ReLU; relu_backward zeroes gradient where the forward
// activation was non-positive.
Matrix relu(const Matrix& a);
Matrix relu_backward(const Matrix& grad, const Matrix& activated);

// Row-wise softmax.
Matrix softmax_rows(const Matrix& a);

// Column means of a matrix as a 1 x cols matrix.
Matrix column_mean(const Matrix& a);

}  // namespace m3dfl

#endif  // M3DFL_GNN_MATRIX_H_
