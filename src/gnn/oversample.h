// Graph-native oversampling for the prune/reorder classifier (paper
// Sec. V-C).
//
// The classifier's training set is extremely imbalanced (true-positive tier
// predictions outnumber false positives ~90:1 for Tate).  Euclidean
// oversamplers (SMOTE etc.) need a lossy graph-to-vector conversion, so the
// paper instead synthesizes minority samples directly on the graph: dummy
// buffers are appended at node outputs — a transformation that preserves
// circuit functionality — until the classes balance.
#ifndef M3DFL_GNN_OVERSAMPLE_H_
#define M3DFL_GNN_OVERSAMPLE_H_

#include <cstdint>
#include <vector>

#include "graph/subgraph.h"
#include "util/rng.h"

namespace m3dfl {

// Returns a copy of `sg` with a chain of `count` dummy buffer nodes appended
// at the output of local node `target`.  Buffer nodes inherit the target's
// top-level aggregates (a buffer sits on the same observation paths) with
// single-fan-in/single-fan-out local structure.
Subgraph insert_dummy_buffers(const Subgraph& sg, std::int32_t target,
                              std::int32_t count = 1);

// Balances a labeled dataset in place: synthesizes minority-class samples by
// dummy-buffer insertion (cycling through source samples and target nodes,
// growing buffer chains as needed) until the class counts match.
void balance_with_buffers(std::vector<Subgraph>& graphs,
                          std::vector<int>& labels, Rng& rng);

}  // namespace m3dfl

#endif  // M3DFL_GNN_OVERSAMPLE_H_
