// Principal component analysis for the transferability study (paper Fig. 5).
//
// The paper projects each sample's subgraph feature vector to 2-D with PCA
// and shows that samples from different design configurations of the same
// benchmark overlap heavily.  We reproduce the projection from scratch
// (covariance + cyclic Jacobi eigensolver) and, since a terminal bench
// cannot render a scatter plot, quantify the overlap with the Bhattacharyya
// coefficient of Gaussians fitted to each configuration's projected cloud
// (1 = identical distributions).
#ifndef M3DFL_GNN_PCA_H_
#define M3DFL_GNN_PCA_H_

#include <array>
#include <cstdint>
#include <vector>

namespace m3dfl {

struct PcaResult {
  std::vector<double> mean;                    // feature means
  std::vector<std::vector<double>> components; // top-k eigenvectors
  std::vector<double> explained_variance;      // matching eigenvalues
};

// Fits a k-component PCA on row-major samples (all rows same width).
PcaResult fit_pca(const std::vector<std::vector<double>>& samples,
                  std::int32_t k = 2);

// Projects one sample with a fitted PCA.
std::vector<double> pca_project(const PcaResult& pca,
                                const std::vector<double>& sample);

// Bhattacharyya coefficient (in [0, 1]) between 2-D Gaussians fitted to two
// projected clouds; ~1 means the clouds overlap almost completely.
double cloud_overlap(const std::vector<std::array<double, 2>>& a,
                     const std::vector<std::array<double, 2>>& b);

// Symmetric eigen-decomposition by cyclic Jacobi rotations; returns
// (eigenvalues, eigenvectors as rows), sorted by descending eigenvalue.
// Exposed for tests.
void jacobi_eigen(std::vector<std::vector<double>> matrix,
                  std::vector<double>& eigenvalues,
                  std::vector<std::vector<double>>& eigenvectors);

}  // namespace m3dfl

#endif  // M3DFL_GNN_PCA_H_
