#include "gnn/pr_curve.h"

#include <algorithm>

#include "util/error.h"

namespace m3dfl {

std::vector<PrPoint> pr_curve(const std::vector<PrSample>& samples) {
  std::vector<PrPoint> curve;
  if (samples.empty()) return curve;

  std::vector<PrSample> sorted = samples;
  std::sort(sorted.begin(), sorted.end(),
            [](const PrSample& a, const PrSample& b) {
              return a.confidence < b.confidence;
            });
  const auto n = sorted.size();
  std::size_t total_positive = 0;
  for (const PrSample& s : sorted) total_positive += s.correct ? 1 : 0;

  // Sweep thresholds at each distinct confidence: predicted positive =
  // suffix of the sorted array (confidence >= threshold).
  std::size_t suffix_tp = total_positive;
  std::size_t suffix_n = n;
  std::size_t i = 0;
  while (i < n) {
    const double threshold = sorted[i].confidence;
    PrPoint point;
    point.threshold = threshold;
    point.precision = suffix_n == 0 ? 1.0
                                    : static_cast<double>(suffix_tp) /
                                          static_cast<double>(suffix_n);
    point.recall = total_positive == 0
                       ? 0.0
                       : static_cast<double>(suffix_tp) /
                             static_cast<double>(total_positive);
    curve.push_back(point);
    // Remove all samples at this confidence from the suffix.
    while (i < n && sorted[i].confidence == threshold) {
      suffix_tp -= sorted[i].correct ? 1 : 0;
      --suffix_n;
      ++i;
    }
  }
  return curve;
}

std::vector<RocPoint> roc_curve(const std::vector<PrSample>& samples) {
  std::vector<RocPoint> curve;
  if (samples.empty()) return curve;

  std::vector<PrSample> sorted = samples;
  std::sort(sorted.begin(), sorted.end(),
            [](const PrSample& a, const PrSample& b) {
              return a.confidence < b.confidence;
            });
  std::size_t total_positive = 0;
  for (const PrSample& s : sorted) total_positive += s.correct ? 1 : 0;
  const std::size_t total_negative = sorted.size() - total_positive;

  std::size_t suffix_tp = total_positive;
  std::size_t suffix_fp = total_negative;
  std::size_t i = 0;
  while (i < sorted.size()) {
    const double threshold = sorted[i].confidence;
    RocPoint point;
    point.threshold = threshold;
    point.true_positive_rate =
        total_positive == 0 ? 0.0
                            : static_cast<double>(suffix_tp) /
                                  static_cast<double>(total_positive);
    point.false_positive_rate =
        total_negative == 0 ? 0.0
                            : static_cast<double>(suffix_fp) /
                                  static_cast<double>(total_negative);
    curve.push_back(point);
    while (i < sorted.size() && sorted[i].confidence == threshold) {
      suffix_tp -= sorted[i].correct ? 1 : 0;
      suffix_fp -= sorted[i].correct ? 0 : 1;
      ++i;
    }
  }
  return curve;
}

double roc_auc(const std::vector<PrSample>& samples) {
  const std::vector<RocPoint> curve = roc_curve(samples);
  if (curve.empty()) return 0.5;
  std::size_t positives = 0;
  for (const PrSample& s : samples) positives += s.correct ? 1 : 0;
  if (positives == 0 || positives == samples.size()) return 0.5;

  // Integrate TPR over FPR.  The curve above runs from (1,1) (lowest
  // threshold: everything predicted positive) toward the origin; append the
  // (0,0) endpoint for the highest threshold.
  double auc = 0.0;
  double prev_fpr = 0.0;
  double prev_tpr = 0.0;
  for (auto it = curve.rbegin(); it != curve.rend(); ++it) {
    auc += (it->false_positive_rate - prev_fpr) *
           (it->true_positive_rate + prev_tpr) / 2.0;
    prev_fpr = it->false_positive_rate;
    prev_tpr = it->true_positive_rate;
  }
  auc += (1.0 - prev_fpr) * (1.0 + prev_tpr) / 2.0;
  return auc;
}

double select_threshold(const std::vector<PrPoint>& curve,
                        double min_precision) {
  for (const PrPoint& p : curve) {
    if (p.precision >= min_precision) return p.threshold;
  }
  // Unattainable precision: return a threshold above every confidence so
  // the policy falls back to reordering only.
  double max_threshold = 1.0;
  for (const PrPoint& p : curve) {
    max_threshold = std::max(max_threshold, p.threshold);
  }
  return max_threshold + 1e-9;
}

}  // namespace m3dfl
