#include "gnn/serialize.h"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/artifact.h"
#include "util/error.h"
#include "util/limits.h"

namespace m3dfl {
namespace {

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  is >> token;
  M3DFL_REQUIRE(token == expected, "model stream: expected '" + expected +
                                       "', got '" + token + "'");
}

void save_config(std::ostream& os, const GcnModelConfig& config) {
  os << "config " << config.in_dim << " " << config.hidden << " "
     << config.num_layers << " " << config.classes << " " << config.seed
     << "\n";
}

GcnModelConfig load_config(std::istream& is) {
  expect_token(is, "config");
  GcnModelConfig config;
  is >> config.in_dim >> config.hidden >> config.num_layers >>
      config.classes >> config.seed;
  M3DFL_REQUIRE(is.good(), "model stream: truncated config");
  return config;
}

}  // namespace

void save_matrix(std::ostream& os, const Matrix& m) {
  os << "matrix " << m.rows() << " " << m.cols() << "\n" << std::hexfloat;
  for (std::int32_t i = 0; i < m.rows(); ++i) {
    for (std::int32_t j = 0; j < m.cols(); ++j) {
      os << (j ? " " : "") << m.at(i, j);
    }
    os << "\n";
  }
  os << std::defaultfloat;
}

Matrix load_matrix(std::istream& is) {
  expect_token(is, "matrix");
  std::int32_t rows = 0;
  std::int32_t cols = 0;
  is >> rows >> cols;
  M3DFL_REQUIRE(is.good() && rows >= 0 && cols >= 0,
                "model stream: bad matrix shape");
  // The declared shape sizes the allocation below, so it is validated
  // against the policy cap first: "matrix 60000 60000" is 14 GB of floats.
  const std::int64_t cells =
      static_cast<std::int64_t>(rows) * static_cast<std::int64_t>(cols);
  const std::int64_t cap = ParseLimits::defaults().max_matrix_cells;
  if (cells > cap) {
    throw Error("model stream: matrix shape " + std::to_string(rows) + " x " +
                std::to_string(cols) + ": " +
                limit_exceeded("matrix cells",
                               static_cast<unsigned long long>(cells),
                               static_cast<unsigned long long>(cap)));
  }
  Matrix m(rows, cols);
  is >> std::hexfloat;
  for (std::int32_t i = 0; i < rows; ++i) {
    for (std::int32_t j = 0; j < cols; ++j) {
      // libstdc++ does not parse hexfloat via operator>>; read the token and
      // convert explicitly for exact round trips.
      std::string token;
      is >> token;
      M3DFL_REQUIRE(!token.empty(), "model stream: truncated matrix");
      m.at(i, j) = std::strtof(token.c_str(), nullptr);
    }
  }
  M3DFL_REQUIRE(!is.fail(), "model stream: truncated matrix payload");
  return m;
}

// ---- Layer payloads (members of the layer classes) --------------------------

void GcnLayer::save(std::ostream& os) const {
  save_matrix(os, weight_);
  save_matrix(os, bias_);
}

void GcnLayer::load(std::istream& is) {
  const Matrix w = load_matrix(is);
  const Matrix b = load_matrix(is);
  M3DFL_REQUIRE(w.rows() == weight_.rows() && w.cols() == weight_.cols() &&
                    b.cols() == bias_.cols(),
                "model stream: GCN layer shape mismatch");
  weight_ = w;
  bias_ = b;
}

void DenseLayer::save(std::ostream& os) const {
  save_matrix(os, weight_);
  save_matrix(os, bias_);
}

void DenseLayer::load(std::istream& is) {
  const Matrix w = load_matrix(is);
  const Matrix b = load_matrix(is);
  M3DFL_REQUIRE(w.rows() == weight_.rows() && w.cols() == weight_.cols() &&
                    b.cols() == bias_.cols(),
                "model stream: dense layer shape mismatch");
  weight_ = w;
  bias_ = b;
}

void GcnEncoder::save(std::ostream& os) const {
  os << "encoder " << layers_.size() << "\n";
  for (const GcnLayer& layer : layers_) layer.save(os);
}

void GcnEncoder::load(std::istream& is) {
  expect_token(is, "encoder");
  std::size_t count = 0;
  is >> count;
  M3DFL_REQUIRE(count == layers_.size(),
                "model stream: encoder depth mismatch");
  for (GcnLayer& layer : layers_) layer.load(is);
}

void TierPredictor::save(std::ostream& os) const {
  os << "m3dfl-model 1 tier-predictor\n";
  save_config(os, config_);
  encoder_.save(os);
  head_.save(os);
}

void TierPredictor::load(std::istream& is) {
  encoder_.load(is);
  head_.load(is);
}

void MivPinpointer::save(std::ostream& os) const {
  os << "m3dfl-model 1 miv-pinpointer\n";
  save_config(os, config_);
  encoder_.save(os);
  head_.save(os);
}

void MivPinpointer::load(std::istream& is) {
  encoder_.load(is);
  head_.load(is);
}

void PruneClassifier::save(std::ostream& os) const {
  os << "m3dfl-model 1 prune-classifier\n";
  save_config(os, config_);
  encoder_.save(os);
  hidden_.save(os);
  head_.save(os);
}

void PruneClassifier::load(std::istream& is) {
  encoder_.load(is);
  hidden_.load(is);
  head_.load(is);
}

// ---- Container-level API -----------------------------------------------------

namespace {

GcnModelConfig read_header(std::istream& is, const std::string& type,
                           const std::string& source) {
  std::string token;
  is >> token;
  M3DFL_REQUIRE(token == "m3dfl-model",
                source + ": not a model stream: expected 'm3dfl-model', "
                         "found '" + token + "'");
  is >> token;
  M3DFL_REQUIRE(token == "1",
                source + ": unsupported model format version: expected 1, "
                         "found '" + token + "'");
  is >> token;
  M3DFL_REQUIRE(token == type, source + ": model kind mismatch: expected '" +
                                   type + "', found '" + token + "'");
  return load_config(is);
}

// Slurps the stream and unwraps the checksummed container when present; a
// bare "m3dfl-model 1" stream (the pre-container format) passes through
// unchanged — the migration shim.
std::string unwrap_model(std::istream& is, const std::string& kind,
                         const std::string& source) {
  const std::string text = slurp_stream(is);
  if (is_artifact(text)) return read_artifact(text, kind, source);
  return text;
}

}  // namespace

TierPredictor read_tier_predictor_payload(std::istream& is,
                                          const std::string& source) {
  TierPredictor model(read_header(is, kTierPredictorKind, source));
  model.load(is);
  return model;
}

MivPinpointer read_miv_pinpointer_payload(std::istream& is,
                                          const std::string& source) {
  MivPinpointer model(read_header(is, kMivPinpointerKind, source));
  model.load(is);
  return model;
}

PruneClassifier read_prune_classifier_payload(std::istream& is,
                                              const TierPredictor& host,
                                              const std::string& source) {
  const GcnModelConfig config =
      read_header(is, kPruneClassifierKind, source);
  PruneClassifier model(host, config);
  model.load(is);
  return model;
}

void save_model(std::ostream& os, const TierPredictor& model) {
  std::ostringstream payload;
  model.save(payload);
  write_artifact(os, kTierPredictorKind, payload.str());
}
void save_model(std::ostream& os, const MivPinpointer& model) {
  std::ostringstream payload;
  model.save(payload);
  write_artifact(os, kMivPinpointerKind, payload.str());
}
void save_model(std::ostream& os, const PruneClassifier& model) {
  std::ostringstream payload;
  model.save(payload);
  write_artifact(os, kPruneClassifierKind, payload.str());
}

TierPredictor load_tier_predictor(std::istream& is,
                                  const std::string& source) {
  std::istringstream payload(unwrap_model(is, kTierPredictorKind, source));
  return read_tier_predictor_payload(payload, source);
}

MivPinpointer load_miv_pinpointer(std::istream& is,
                                  const std::string& source) {
  std::istringstream payload(unwrap_model(is, kMivPinpointerKind, source));
  return read_miv_pinpointer_payload(payload, source);
}

PruneClassifier load_prune_classifier(std::istream& is,
                                      const TierPredictor& host,
                                      const std::string& source) {
  std::istringstream payload(unwrap_model(is, kPruneClassifierKind, source));
  return read_prune_classifier_payload(payload, host, source);
}

std::string tier_predictor_to_string(const TierPredictor& model) {
  std::ostringstream os;
  save_model(os, model);
  return os.str();
}

TierPredictor tier_predictor_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_tier_predictor(is);
}

}  // namespace m3dfl
