#include "gnn/serialize.h"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace m3dfl {
namespace {

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  is >> token;
  M3DFL_REQUIRE(token == expected, "model stream: expected '" + expected +
                                       "', got '" + token + "'");
}

void save_config(std::ostream& os, const GcnModelConfig& config) {
  os << "config " << config.in_dim << " " << config.hidden << " "
     << config.num_layers << " " << config.classes << " " << config.seed
     << "\n";
}

GcnModelConfig load_config(std::istream& is) {
  expect_token(is, "config");
  GcnModelConfig config;
  is >> config.in_dim >> config.hidden >> config.num_layers >>
      config.classes >> config.seed;
  M3DFL_REQUIRE(is.good(), "model stream: truncated config");
  return config;
}

}  // namespace

void save_matrix(std::ostream& os, const Matrix& m) {
  os << "matrix " << m.rows() << " " << m.cols() << "\n" << std::hexfloat;
  for (std::int32_t i = 0; i < m.rows(); ++i) {
    for (std::int32_t j = 0; j < m.cols(); ++j) {
      os << (j ? " " : "") << m.at(i, j);
    }
    os << "\n";
  }
  os << std::defaultfloat;
}

Matrix load_matrix(std::istream& is) {
  expect_token(is, "matrix");
  std::int32_t rows = 0;
  std::int32_t cols = 0;
  is >> rows >> cols;
  M3DFL_REQUIRE(is.good() && rows >= 0 && cols >= 0,
                "model stream: bad matrix shape");
  Matrix m(rows, cols);
  is >> std::hexfloat;
  for (std::int32_t i = 0; i < rows; ++i) {
    for (std::int32_t j = 0; j < cols; ++j) {
      // libstdc++ does not parse hexfloat via operator>>; read the token and
      // convert explicitly for exact round trips.
      std::string token;
      is >> token;
      M3DFL_REQUIRE(!token.empty(), "model stream: truncated matrix");
      m.at(i, j) = std::strtof(token.c_str(), nullptr);
    }
  }
  M3DFL_REQUIRE(!is.fail(), "model stream: truncated matrix payload");
  return m;
}

// ---- Layer payloads (members of the layer classes) --------------------------

void GcnLayer::save(std::ostream& os) const {
  save_matrix(os, weight_);
  save_matrix(os, bias_);
}

void GcnLayer::load(std::istream& is) {
  const Matrix w = load_matrix(is);
  const Matrix b = load_matrix(is);
  M3DFL_REQUIRE(w.rows() == weight_.rows() && w.cols() == weight_.cols() &&
                    b.cols() == bias_.cols(),
                "model stream: GCN layer shape mismatch");
  weight_ = w;
  bias_ = b;
}

void DenseLayer::save(std::ostream& os) const {
  save_matrix(os, weight_);
  save_matrix(os, bias_);
}

void DenseLayer::load(std::istream& is) {
  const Matrix w = load_matrix(is);
  const Matrix b = load_matrix(is);
  M3DFL_REQUIRE(w.rows() == weight_.rows() && w.cols() == weight_.cols() &&
                    b.cols() == bias_.cols(),
                "model stream: dense layer shape mismatch");
  weight_ = w;
  bias_ = b;
}

void GcnEncoder::save(std::ostream& os) const {
  os << "encoder " << layers_.size() << "\n";
  for (const GcnLayer& layer : layers_) layer.save(os);
}

void GcnEncoder::load(std::istream& is) {
  expect_token(is, "encoder");
  std::size_t count = 0;
  is >> count;
  M3DFL_REQUIRE(count == layers_.size(),
                "model stream: encoder depth mismatch");
  for (GcnLayer& layer : layers_) layer.load(is);
}

void TierPredictor::save(std::ostream& os) const {
  os << "m3dfl-model 1 tier-predictor\n";
  save_config(os, config_);
  encoder_.save(os);
  head_.save(os);
}

void TierPredictor::load(std::istream& is) {
  encoder_.load(is);
  head_.load(is);
}

void MivPinpointer::save(std::ostream& os) const {
  os << "m3dfl-model 1 miv-pinpointer\n";
  save_config(os, config_);
  encoder_.save(os);
  head_.save(os);
}

void MivPinpointer::load(std::istream& is) {
  encoder_.load(is);
  head_.load(is);
}

void PruneClassifier::save(std::ostream& os) const {
  os << "m3dfl-model 1 prune-classifier\n";
  save_config(os, config_);
  encoder_.save(os);
  hidden_.save(os);
  head_.save(os);
}

void PruneClassifier::load(std::istream& is) {
  encoder_.load(is);
  hidden_.load(is);
  head_.load(is);
}

// ---- Container-level API -----------------------------------------------------

namespace {

GcnModelConfig read_header(std::istream& is, const std::string& type) {
  expect_token(is, "m3dfl-model");
  expect_token(is, "1");
  expect_token(is, type);
  return load_config(is);
}

}  // namespace

void save_model(std::ostream& os, const TierPredictor& model) {
  model.save(os);
}
void save_model(std::ostream& os, const MivPinpointer& model) {
  model.save(os);
}
void save_model(std::ostream& os, const PruneClassifier& model) {
  model.save(os);
}

TierPredictor load_tier_predictor(std::istream& is) {
  TierPredictor model(read_header(is, "tier-predictor"));
  model.load(is);
  return model;
}

MivPinpointer load_miv_pinpointer(std::istream& is) {
  MivPinpointer model(read_header(is, "miv-pinpointer"));
  model.load(is);
  return model;
}

PruneClassifier load_prune_classifier(std::istream& is,
                                      const TierPredictor& host) {
  const GcnModelConfig config = read_header(is, "prune-classifier");
  PruneClassifier model(host, config);
  model.load(is);
  return model;
}

std::string tier_predictor_to_string(const TierPredictor& model) {
  std::ostringstream os;
  save_model(os, model);
  return os.str();
}

TierPredictor tier_predictor_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_tier_predictor(is);
}

}  // namespace m3dfl
