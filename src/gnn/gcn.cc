#include "gnn/gcn.h"

namespace m3dfl {
namespace {

void add_bias_rows(Matrix& x, const Matrix& bias) {
  M3DFL_ASSERT(bias.rows() == 1 && bias.cols() == x.cols());
  for (std::int32_t i = 0; i < x.rows(); ++i) {
    auto row = x.row(i);
    const auto b = bias.row(0);
    for (std::size_t j = 0; j < row.size(); ++j) row[j] += b[j];
  }
}

Matrix column_sum(const Matrix& x) {
  Matrix out(1, x.cols());
  for (std::int32_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    auto acc = out.row(0);
    for (std::size_t j = 0; j < row.size(); ++j) acc[j] += row[j];
  }
  return out;
}

}  // namespace

GcnLayer::GcnLayer(std::int32_t in_dim, std::int32_t out_dim, bool use_relu,
                   Rng& rng)
    : use_relu_(use_relu),
      weight_(in_dim, out_dim),
      bias_(1, out_dim),
      weight_grad_(in_dim, out_dim),
      bias_grad_(1, out_dim) {
  weight_.init_glorot(rng);
}

Matrix GcnLayer::forward(const NormalizedAdjacency& adj, const Matrix& x,
                         GcnCache& cache) const {
  cache.propagated = adj.propagate(x);
  Matrix pre = matmul(cache.propagated, weight_);
  add_bias_rows(pre, bias_);
  cache.activated = use_relu_ ? relu(pre) : std::move(pre);
  return cache.activated;
}

Matrix GcnLayer::backward(const NormalizedAdjacency& adj,
                          const GcnCache& cache, const Matrix& dy) {
  const Matrix dpre =
      use_relu_ ? relu_backward(dy, cache.activated) : dy;
  add_inplace(weight_grad_, matmul_tn(cache.propagated, dpre));
  add_inplace(bias_grad_, column_sum(dpre));
  const Matrix dprop = matmul_nt(dpre, weight_);
  // A_hat is symmetric, so the adjoint of propagate is propagate itself.
  return adj.propagate(dprop);
}

void GcnLayer::zero_grad() {
  weight_grad_.fill(0.0f);
  bias_grad_.fill(0.0f);
}

DenseLayer::DenseLayer(std::int32_t in_dim, std::int32_t out_dim,
                       bool use_relu, Rng& rng)
    : use_relu_(use_relu),
      weight_(in_dim, out_dim),
      bias_(1, out_dim),
      weight_grad_(in_dim, out_dim),
      bias_grad_(1, out_dim) {
  weight_.init_glorot(rng);
}

Matrix DenseLayer::forward(const Matrix& x, DenseCache& cache) const {
  cache.input = x;
  Matrix pre = matmul(x, weight_);
  add_bias_rows(pre, bias_);
  cache.activated = use_relu_ ? relu(pre) : std::move(pre);
  return cache.activated;
}

Matrix DenseLayer::backward(const DenseCache& cache, const Matrix& dy) {
  const Matrix dpre =
      use_relu_ ? relu_backward(dy, cache.activated) : dy;
  add_inplace(weight_grad_, matmul_tn(cache.input, dpre));
  add_inplace(bias_grad_, column_sum(dpre));
  return matmul_nt(dpre, weight_);
}

void DenseLayer::zero_grad() {
  weight_grad_.fill(0.0f);
  bias_grad_.fill(0.0f);
}

}  // namespace m3dfl
