#include "gnn/matrix.h"

#include <algorithm>
#include <cmath>

namespace m3dfl {

void Matrix::init_glorot(Rng& rng) {
  const double bound =
      std::sqrt(6.0 / static_cast<double>(std::max(1, rows_ + cols_)));
  for (float& x : data_) {
    x = static_cast<float>(rng.next_double(-bound, bound));
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  M3DFL_ASSERT(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (std::int32_t i = 0; i < a.rows(); ++i) {
    for (std::int32_t k = 0; k < a.cols(); ++k) {
      const float aik = a.at(i, k);
      if (aik == 0.0f) continue;
      for (std::int32_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  M3DFL_ASSERT(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (std::int32_t k = 0; k < a.rows(); ++k) {
    for (std::int32_t i = 0; i < a.cols(); ++i) {
      const float aki = a.at(k, i);
      if (aki == 0.0f) continue;
      for (std::int32_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aki * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  M3DFL_ASSERT(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (std::int32_t i = 0; i < a.rows(); ++i) {
    for (std::int32_t j = 0; j < b.rows(); ++j) {
      float sum = 0.0f;
      for (std::int32_t k = 0; k < a.cols(); ++k) {
        sum += a.at(i, k) * b.at(j, k);
      }
      c.at(i, j) = sum;
    }
  }
  return c;
}

void add_inplace(Matrix& a, const Matrix& b) { axpy_inplace(a, 1.0f, b); }

void axpy_inplace(Matrix& a, float scale, const Matrix& b) {
  M3DFL_ASSERT(a.rows() == b.rows() && a.cols() == b.cols());
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) da[i] += scale * db[i];
}

void scale_inplace(Matrix& a, float scale) {
  for (float& x : a.data()) x *= scale;
}

Matrix relu(const Matrix& a) {
  Matrix out = a;
  for (float& x : out.data()) x = std::max(0.0f, x);
  return out;
}

Matrix relu_backward(const Matrix& grad, const Matrix& activated) {
  M3DFL_ASSERT(grad.rows() == activated.rows() &&
               grad.cols() == activated.cols());
  Matrix out = grad;
  auto dg = out.data();
  auto act = activated.data();
  for (std::size_t i = 0; i < dg.size(); ++i) {
    if (act[i] <= 0.0f) dg[i] = 0.0f;
  }
  return out;
}

Matrix softmax_rows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (std::int32_t i = 0; i < a.rows(); ++i) {
    float mx = a.at(i, 0);
    for (std::int32_t j = 1; j < a.cols(); ++j) mx = std::max(mx, a.at(i, j));
    float sum = 0.0f;
    for (std::int32_t j = 0; j < a.cols(); ++j) {
      const float e = std::exp(a.at(i, j) - mx);
      out.at(i, j) = e;
      sum += e;
    }
    for (std::int32_t j = 0; j < a.cols(); ++j) out.at(i, j) /= sum;
  }
  return out;
}

Matrix column_mean(const Matrix& a) {
  Matrix out(1, a.cols());
  if (a.rows() == 0) return out;
  for (std::int32_t i = 0; i < a.rows(); ++i) {
    for (std::int32_t j = 0; j < a.cols(); ++j) {
      out.at(0, j) += a.at(i, j);
    }
  }
  scale_inplace(out, 1.0f / static_cast<float>(a.rows()));
  return out;
}

}  // namespace m3dfl
