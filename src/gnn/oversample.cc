#include "gnn/oversample.h"

#include <algorithm>

namespace m3dfl {

Subgraph insert_dummy_buffers(const Subgraph& sg, std::int32_t target,
                              std::int32_t count) {
  M3DFL_REQUIRE(!sg.empty(), "cannot oversample an empty subgraph");
  M3DFL_REQUIRE(target >= 0 && target < sg.num_nodes(),
                "buffer target out of range");
  M3DFL_REQUIRE(count >= 1, "buffer count must be positive");

  Subgraph out = sg;
  const std::int32_t base = sg.num_nodes();
  Matrix features(base + count, kNumNodeFeatures);
  for (std::int32_t i = 0; i < base; ++i) {
    for (std::int32_t j = 0; j < kNumNodeFeatures; ++j) {
      features.at(i, j) = sg.features.at(i, j);
    }
  }
  // Synthetic node ids continue past the heterogeneous graph's id space;
  // they are only ever used inside this training sample.
  std::int32_t prev = target;
  for (std::int32_t k = 0; k < count; ++k) {
    const std::int32_t node = base + k;
    // A buffer inherits its driver's observation-path profile...
    for (std::int32_t j = 0; j < kNumNodeFeatures; ++j) {
      features.at(node, j) = sg.features.at(target, j);
    }
    // ...with buffer-local structure: one fan-in, one fan-out, an output
    // pin, one level deeper.
    const float one = 1.0f / (1.0f + 4.0f);
    features.at(node, 0) = one;   // circuit fan-in
    features.at(node, 1) = one;   // circuit fan-out
    features.at(node, 5) = 1.0f;  // gate output
    features.at(node, 7) = one;   // subgraph fan-in
    features.at(node, 8) = one;   // subgraph fan-out
    out.edge_u.push_back(prev);
    out.edge_v.push_back(node);
    out.nodes.push_back(out.nodes.empty() ? node
                                          : out.nodes.back() + 1);
    prev = node;
  }
  out.features = std::move(features);
  return out;
}

void balance_with_buffers(std::vector<Subgraph>& graphs,
                          std::vector<int>& labels, Rng& rng) {
  M3DFL_REQUIRE(graphs.size() == labels.size(),
                "labels must match graphs");
  std::vector<std::size_t> minority;
  std::vector<std::size_t> majority;
  std::size_t positives = 0;
  for (int l : labels) positives += l == 1 ? 1 : 0;
  const int minority_label =
      positives * 2 <= labels.size() ? 1 : 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    (labels[i] == minority_label ? minority : majority).push_back(i);
  }
  if (minority.empty() || minority.size() >= majority.size()) return;

  // Cycle through the minority samples; each synthetic copy appends a buffer
  // chain at a random node, with the chain growing one buffer longer every
  // full cycle ("consecutive buffers", paper Sec. V-C).
  std::size_t cursor = 0;
  std::int32_t chain = 1;
  while (minority.size() < majority.size()) {
    const Subgraph& src = graphs[minority[cursor]];
    if (!src.empty()) {
      const auto target = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(src.num_nodes())));
      graphs.push_back(insert_dummy_buffers(src, target, chain));
      labels.push_back(minority_label);
      minority.push_back(graphs.size() - 1);
    }
    if (++cursor >= minority.size()) cursor = 0;
    if (cursor == 0) ++chain;
  }
}

}  // namespace m3dfl
