// Precision-recall analysis for the candidate pruning policy (paper
// Sec. V-B, Table IV).
//
// Per sample: Actual Positive iff the tier prediction is correct; Predicted
// Positive iff the prediction confidence clears the classification
// threshold.  Sweeping the threshold yields the PR curve; the policy's T_P
// is the smallest threshold whose precision reaches the target (paper: 99%),
// keeping the expected accuracy loss from pruning below 1%.
#ifndef M3DFL_GNN_PR_CURVE_H_
#define M3DFL_GNN_PR_CURVE_H_

#include <vector>

namespace m3dfl {

// One evaluated sample: prediction confidence + whether it was correct.
struct PrSample {
  double confidence = 0.0;
  bool correct = false;
};

struct PrPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
};

// PR curve over all distinct confidence thresholds (ascending threshold).
std::vector<PrPoint> pr_curve(const std::vector<PrSample>& samples);

// Smallest threshold with precision >= min_precision; falls back to the
// most conservative threshold (prune almost nothing) when unattainable.
double select_threshold(const std::vector<PrPoint>& curve,
                        double min_precision = 0.99);

// ROC analysis (paper Sec. V-B discusses why PR is preferred for the
// Tier-predictor's skewed class balance; the ROC machinery is provided for
// the comparison and for balanced diagnostics).
struct RocPoint {
  double threshold = 0.0;
  double true_positive_rate = 0.0;   // recall over actual positives
  double false_positive_rate = 0.0;  // fall-out over actual negatives
};

// ROC curve over all distinct confidence thresholds (ascending threshold,
// i.e. from the all-positive corner toward the origin).
std::vector<RocPoint> roc_curve(const std::vector<PrSample>& samples);

// Area under the ROC curve by trapezoidal integration; 0.5 for a random
// classifier, 1.0 for a perfect one.  Returns 0.5 for degenerate inputs
// (a single class).
double roc_auc(const std::vector<PrSample>& samples);

}  // namespace m3dfl

#endif  // M3DFL_GNN_PR_CURVE_H_
