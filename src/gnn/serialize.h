// Model persistence.
//
// A trained framework is the asset the paper's flow reuses across netlists
// ("reusing pretrained models on new netlists significantly reduces the
// runtime for diagnosis"), so it must survive a process restart — and a torn
// or bit-rotted artifact must be *detected*, not silently served.  Two
// layers:
//
//   * the payload: a line-oriented text stream ("m3dfl-model 1 <kind>") with
//     hex-float parameters, giving byte-exact round trips without binary
//     portability concerns;
//   * the container: the versioned, CRC32-checksummed envelope of
//     util/artifact.h that save_model() wraps the payload in.
//
// load_* accepts both the container form and a bare legacy payload (the
// pre-container "version 1" files) — the migration shim — and throws
// m3dfl::Error with offset-cited diagnostics on truncation, corruption, or
// version/kind mismatches.
#ifndef M3DFL_GNN_SERIALIZE_H_
#define M3DFL_GNN_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "gnn/matrix.h"
#include "gnn/model.h"

namespace m3dfl {

// Artifact kinds for the three model containers.
inline constexpr const char* kTierPredictorKind = "tier-predictor";
inline constexpr const char* kMivPinpointerKind = "miv-pinpointer";
inline constexpr const char* kPruneClassifierKind = "prune-classifier";

// Matrix payloads (shape header + hex-float values).
void save_matrix(std::ostream& os, const Matrix& m);
Matrix load_matrix(std::istream& is);

// Container-wrapped model artifacts; load_* throws m3dfl::Error on a
// checksum, version, kind, or shape mismatch.  `source` names the stream in
// diagnostics (pass the file path when loading from a file).
void save_model(std::ostream& os, const TierPredictor& model);
void save_model(std::ostream& os, const MivPinpointer& model);
void save_model(std::ostream& os, const PruneClassifier& model);
TierPredictor load_tier_predictor(std::istream& is,
                                  const std::string& source = "<stream>");
MivPinpointer load_miv_pinpointer(std::istream& is,
                                  const std::string& source = "<stream>");
// The classifier embeds its own frozen encoder copy, so loading does not
// need the original TierPredictor weights — only a shape-compatible host.
PruneClassifier load_prune_classifier(std::istream& is,
                                      const TierPredictor& host,
                                      const std::string& source = "<stream>");

// Bare-payload readers ("m3dfl-model 1 <kind>" onward), used for model
// sections embedded inside a larger artifact (frameworks, checkpoints) and
// by the legacy shim.  They consume exactly one model from the stream.
TierPredictor read_tier_predictor_payload(std::istream& is,
                                          const std::string& source);
MivPinpointer read_miv_pinpointer_payload(std::istream& is,
                                          const std::string& source);
PruneClassifier read_prune_classifier_payload(std::istream& is,
                                              const TierPredictor& host,
                                              const std::string& source);

// Convenience string round trips (used by tests and the examples).
std::string tier_predictor_to_string(const TierPredictor& model);
TierPredictor tier_predictor_from_string(const std::string& text);

}  // namespace m3dfl

#endif  // M3DFL_GNN_SERIALIZE_H_
