// Model persistence.
//
// A trained framework is the asset the paper's flow reuses across netlists
// ("reusing pretrained models on new netlists significantly reduces the
// runtime for diagnosis"), so it must survive a process restart.  The format
// is a line-oriented text container ("m3dfl-model 1") with hex-float
// parameter payloads, giving byte-exact round trips without binary
// portability concerns.
#ifndef M3DFL_GNN_SERIALIZE_H_
#define M3DFL_GNN_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "gnn/matrix.h"
#include "gnn/model.h"

namespace m3dfl {

// Matrix payloads (shape header + hex-float values).
void save_matrix(std::ostream& os, const Matrix& m);
Matrix load_matrix(std::istream& is);

// Model containers with a type tag; load_* throws m3dfl::Error on a tag or
// shape mismatch.
void save_model(std::ostream& os, const TierPredictor& model);
void save_model(std::ostream& os, const MivPinpointer& model);
void save_model(std::ostream& os, const PruneClassifier& model);
TierPredictor load_tier_predictor(std::istream& is);
MivPinpointer load_miv_pinpointer(std::istream& is);
// The classifier embeds its own frozen encoder copy, so loading does not
// need the original TierPredictor weights — only a shape-compatible host.
PruneClassifier load_prune_classifier(std::istream& is,
                                      const TierPredictor& host);

// Convenience string round trips (used by tests and the examples).
std::string tier_predictor_to_string(const TierPredictor& model);
TierPredictor tier_predictor_from_string(const std::string& text);

}  // namespace m3dfl

#endif  // M3DFL_GNN_SERIALIZE_H_
