// Normalized sparse adjacency in CSR form for GCN propagation.
//
// Implements the symmetric normalization of the paper's Eq. (1) with self
// loops added (Kipf & Welling's renormalization trick): coefficient for edge
// (i, j) is 1 / sqrt(deg(i) * deg(j)) where degrees count the self loop.
// The matrix is symmetric, so the same structure serves forward propagation
// and back-propagation.
#ifndef M3DFL_GNN_CSR_H_
#define M3DFL_GNN_CSR_H_

#include <cstdint>
#include <vector>

#include "gnn/matrix.h"

namespace m3dfl {

class NormalizedAdjacency {
 public:
  NormalizedAdjacency() = default;
  // Builds from an undirected edge list over `num_nodes` nodes (each pair
  // appears once; self loops are added automatically; duplicate edges are
  // tolerated and folded).
  NormalizedAdjacency(std::int32_t num_nodes,
                      const std::vector<std::int32_t>& edge_u,
                      const std::vector<std::int32_t>& edge_v);

  std::int32_t num_nodes() const { return num_nodes_; }
  std::int32_t num_entries() const {
    return static_cast<std::int32_t>(col_.size());
  }

  // Y = A_hat * X   (A_hat symmetric, [n x n]; X [n x f]).
  Matrix propagate(const Matrix& x) const;

 private:
  std::int32_t num_nodes_ = 0;
  std::vector<std::int32_t> row_offset_;
  std::vector<std::int32_t> col_;
  std::vector<float> coeff_;
};

}  // namespace m3dfl

#endif  // M3DFL_GNN_CSR_H_
