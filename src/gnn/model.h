// The paper's three GNN models (Sec. III-C and V-C).
//
//  * TierPredictor   — graph classification: GCN stack, mean-pool readout,
//                      linear head, softmax over [p_top, p_bottom]-style
//                      tier probabilities (we index [bottom, top]).
//  * MivPinpointer   — node classification: the same GCN stack shape with a
//                      per-node linear head; trained/evaluated on MIV nodes
//                      only, since local structure dominates for via defects.
//  * PruneClassifier — transfer-learned (network-based deep transfer,
//                      paper Sec. V-C): the *frozen* pretrained hidden
//                      layers of a TierPredictor, plus trainable
//                      classification layers and a pooled softmax deciding
//                      prune vs. reorder.
//
// All models share GcnEncoder; training is gradient accumulation + Adam and
// lives in gnn/trainer.h.
#ifndef M3DFL_GNN_MODEL_H_
#define M3DFL_GNN_MODEL_H_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "gnn/adam.h"
#include "gnn/csr.h"
#include "gnn/gcn.h"
#include "graph/subgraph.h"

namespace m3dfl {

struct GcnModelConfig {
  std::int32_t in_dim = kNumNodeFeatures;
  std::int32_t hidden = 32;
  std::int32_t num_layers = 3;
  std::int32_t classes = 2;
  std::uint64_t seed = 42;
};

// Stack of ReLU GCN layers producing node embeddings.
class GcnEncoder {
 public:
  GcnEncoder(const GcnModelConfig& config, Rng& rng);

  std::int32_t out_dim() const;
  // Node embeddings [n x hidden]; fills one cache per layer.
  Matrix encode(const NormalizedAdjacency& adj, const Matrix& x,
                std::vector<GcnCache>& caches) const;
  // Back-propagates dH through the stack, accumulating layer gradients.
  void backward(const NormalizedAdjacency& adj,
                const std::vector<GcnCache>& caches, const Matrix& dh,
                const Matrix& input);
  void register_params(Adam& adam);
  void zero_grad();

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::vector<GcnLayer> layers_;
};

// Builds the normalized adjacency of a subgraph.
NormalizedAdjacency subgraph_adjacency(const Subgraph& sg);

class TierPredictor {
 public:
  explicit TierPredictor(const GcnModelConfig& config = {});

  // [P(bottom), P(top)]; uniform for empty subgraphs.
  std::array<double, 2> predict(const Subgraph& sg) const;
  // Same, reusing a caller-provided normalized adjacency of `sg` (the
  // serving layer caches adjacencies across the three models).
  std::array<double, 2> predict(const Subgraph& sg,
                                const NormalizedAdjacency& adj) const;
  // Predicted tier and its probability (the paper's confidence score).
  // `margin`, when non-null, receives the softmax margin |P(top) - P(bottom)|
  // in [0, 1] — 0 means the model is indifferent between tiers, 1 means a
  // certain verdict.  The margin feeds the calibrated diagnosis confidence
  // (diag/report.h): unlike the raw max-probability it is 0-based, so it can
  // be multiplied with the back-trace support fraction.
  int predicted_tier(const Subgraph& sg, double* confidence = nullptr,
                     double* margin = nullptr) const;
  int predicted_tier(const Subgraph& sg, const NormalizedAdjacency& adj,
                     double* confidence, double* margin = nullptr) const;

  // One forward/backward pass on a labeled subgraph (label: tier 0/1);
  // returns the cross-entropy loss.  Pass a prebuilt adjacency when looping
  // over epochs.
  double train_step(const Subgraph& sg, const NormalizedAdjacency& adj,
                    int label);
  void register_params(Adam& adam);

  const GcnEncoder& encoder() const { return encoder_; }
  std::int32_t hidden_dim() const { return config_.hidden; }
  const GcnModelConfig& config() const { return config_; }

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  GcnModelConfig config_;
  GcnEncoder encoder_;
  DenseLayer head_;
};

class MivPinpointer {
 public:
  explicit MivPinpointer(const GcnModelConfig& config = {});

  // P(defective) for each MIV node of the subgraph (sg.miv_local order).
  std::vector<double> predict(const Subgraph& sg) const;
  std::vector<double> predict(const Subgraph& sg,
                              const NormalizedAdjacency& adj) const;
  // MIVs whose defect probability exceeds `threshold`.
  std::vector<MivId> predict_faulty(const Subgraph& sg,
                                    double threshold = 0.5) const;
  std::vector<MivId> predict_faulty(const Subgraph& sg,
                                    const NormalizedAdjacency& adj,
                                    double threshold) const;

  // One pass over a subgraph with MIV labels; returns the mean CE loss over
  // MIV nodes (0 when the subgraph has none; no gradients accumulate then).
  double train_step(const Subgraph& sg, const NormalizedAdjacency& adj);
  void register_params(Adam& adam);
  const GcnModelConfig& config() const { return config_; }

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  GcnModelConfig config_;
  GcnEncoder encoder_;
  DenseLayer head_;
};

class PruneClassifier {
 public:
  // Copies (and freezes) the pretrained encoder of `pretrained`.
  PruneClassifier(const TierPredictor& pretrained,
                  const GcnModelConfig& config = {});

  // P(prune is safe), i.e. P(the tier prediction is a true positive).
  double predict_prune_prob(const Subgraph& sg) const;
  double predict_prune_prob(const Subgraph& sg,
                            const NormalizedAdjacency& adj) const;

  // label: 1 = prune (true positive), 0 = reorder (false positive).
  double train_step(const Subgraph& sg, const NormalizedAdjacency& adj,
                    int label);
  void register_params(Adam& adam);  // trainable head only; encoder frozen

  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  GcnModelConfig config_;
  GcnEncoder encoder_;  // frozen copy
  DenseLayer hidden_;
  DenseLayer head_;
};

}  // namespace m3dfl

#endif  // M3DFL_GNN_MODEL_H_
