#include "gnn/adam.h"

#include <cmath>

namespace m3dfl {

void Adam::register_param(Matrix* value, Matrix* grad) {
  M3DFL_REQUIRE(value != nullptr && grad != nullptr,
                "null parameter registered with Adam");
  M3DFL_REQUIRE(value->rows() == grad->rows() && value->cols() == grad->cols(),
                "parameter/gradient shape mismatch");
  Slot slot{value, grad, Matrix(value->rows(), value->cols()),
            Matrix(value->rows(), value->cols())};
  slots_.push_back(std::move(slot));
}

void Adam::step(std::int32_t batch_size) {
  M3DFL_ASSERT(batch_size > 0);
  ++t_;
  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  const float inv_batch = 1.0f / static_cast<float>(batch_size);
  for (Slot& s : slots_) {
    auto value = s.value->data();
    auto grad = s.grad->data();
    auto m = s.m.data();
    auto v = s.v.data();
    for (std::size_t i = 0; i < value.size(); ++i) {
      const double g = static_cast<double>(grad[i] * inv_batch);
      m[i] = static_cast<float>(options_.beta1 * m[i] +
                                (1.0 - options_.beta1) * g);
      v[i] = static_cast<float>(options_.beta2 * v[i] +
                                (1.0 - options_.beta2) * g * g);
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      value[i] -= static_cast<float>(options_.lr * mhat /
                                     (std::sqrt(vhat) + options_.eps));
      grad[i] = 0.0f;
    }
  }
}

}  // namespace m3dfl
