#include "gnn/adam.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "gnn/serialize.h"

namespace m3dfl {

void Adam::register_param(Matrix* value, Matrix* grad) {
  M3DFL_REQUIRE(value != nullptr && grad != nullptr,
                "null parameter registered with Adam");
  M3DFL_REQUIRE(value->rows() == grad->rows() && value->cols() == grad->cols(),
                "parameter/gradient shape mismatch");
  Slot slot{value, grad, Matrix(value->rows(), value->cols()),
            Matrix(value->rows(), value->cols())};
  slots_.push_back(std::move(slot));
}

void Adam::step(std::int32_t batch_size) {
  M3DFL_ASSERT(batch_size > 0);
  ++t_;
  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  const float inv_batch = 1.0f / static_cast<float>(batch_size);
  for (Slot& s : slots_) {
    auto value = s.value->data();
    auto grad = s.grad->data();
    auto m = s.m.data();
    auto v = s.v.data();
    for (std::size_t i = 0; i < value.size(); ++i) {
      const double g = static_cast<double>(grad[i] * inv_batch);
      m[i] = static_cast<float>(options_.beta1 * m[i] +
                                (1.0 - options_.beta1) * g);
      v[i] = static_cast<float>(options_.beta2 * v[i] +
                                (1.0 - options_.beta2) * g * g);
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      value[i] -= static_cast<float>(options_.lr * mhat /
                                     (std::sqrt(vhat) + options_.eps));
      grad[i] = 0.0f;
    }
  }
}

bool Adam::all_finite() const {
  for (const Slot& s : slots_) {
    for (const float x : s.value->data()) {
      if (!std::isfinite(x)) return false;
    }
  }
  return true;
}

void Adam::save(std::ostream& os) const {
  os << "adam " << slots_.size() << " " << t_ << "\n";
  for (const Slot& s : slots_) {
    save_matrix(os, s.m);
    save_matrix(os, s.v);
  }
}

void Adam::load(std::istream& is) {
  std::string token;
  is >> token;
  M3DFL_REQUIRE(token == "adam",
                "optimizer stream: expected 'adam', got '" + token + "'");
  std::size_t count = 0;
  is >> count >> t_;
  M3DFL_REQUIRE(is.good() && count == slots_.size(),
                "optimizer stream: slot count mismatch: expected " +
                    std::to_string(slots_.size()) + ", found " +
                    std::to_string(count));
  for (Slot& s : slots_) {
    const Matrix m = load_matrix(is);
    const Matrix v = load_matrix(is);
    M3DFL_REQUIRE(m.rows() == s.m.rows() && m.cols() == s.m.cols() &&
                      v.rows() == s.v.rows() && v.cols() == s.v.cols(),
                  "optimizer stream: moment shape mismatch");
    s.m = m;
    s.v = v;
  }
}

}  // namespace m3dfl
