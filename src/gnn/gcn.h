// Graph-convolution and dense layers with manual reverse-mode gradients.
//
// GcnLayer implements the paper's Eq. (1): h' = act(A_hat h W + b) with the
// symmetric normalization baked into NormalizedAdjacency.  Each forward pass
// records its intermediates into a caller-owned cache so several graphs can
// be processed between optimizer steps (gradient accumulation).
#ifndef M3DFL_GNN_GCN_H_
#define M3DFL_GNN_GCN_H_

#include <cstdint>
#include <iosfwd>

#include "gnn/csr.h"
#include "gnn/matrix.h"
#include "util/rng.h"

namespace m3dfl {

// Forward-pass intermediates needed by backward().
struct GcnCache {
  Matrix propagated;  // A_hat X
  Matrix activated;   // layer output
};

class GcnLayer {
 public:
  GcnLayer(std::int32_t in_dim, std::int32_t out_dim, bool use_relu, Rng& rng);

  std::int32_t in_dim() const { return weight_.rows(); }
  std::int32_t out_dim() const { return weight_.cols(); }

  // Returns act(A_hat x W + b); fills `cache`.
  Matrix forward(const NormalizedAdjacency& adj, const Matrix& x,
                 GcnCache& cache) const;
  // Accumulates dW/db; returns dX.
  Matrix backward(const NormalizedAdjacency& adj, const GcnCache& cache,
                  const Matrix& dy);

  void zero_grad();
  Matrix& weight() { return weight_; }
  Matrix& bias() { return bias_; }
  Matrix& weight_grad() { return weight_grad_; }
  Matrix& bias_grad() { return bias_grad_; }
  const Matrix& weight() const { return weight_; }
  const Matrix& bias() const { return bias_; }

  // Parameter serialization (see gnn/serialize.h for the model-level API).
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  bool use_relu_;
  Matrix weight_;       // [in x out]
  Matrix bias_;         // [1 x out]
  Matrix weight_grad_;
  Matrix bias_grad_;
};

// Fully connected layer y = act(x W + b) with the same cache/grad pattern.
struct DenseCache {
  Matrix input;
  Matrix activated;
};

class DenseLayer {
 public:
  DenseLayer(std::int32_t in_dim, std::int32_t out_dim, bool use_relu,
             Rng& rng);

  Matrix forward(const Matrix& x, DenseCache& cache) const;
  Matrix backward(const DenseCache& cache, const Matrix& dy);

  void zero_grad();
  Matrix& weight() { return weight_; }
  Matrix& bias() { return bias_; }
  Matrix& weight_grad() { return weight_grad_; }
  Matrix& bias_grad() { return bias_grad_; }
  const Matrix& weight() const { return weight_; }
  const Matrix& bias() const { return bias_; }

  // Parameter serialization (see gnn/serialize.h for the model-level API).
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  bool use_relu_;
  Matrix weight_;
  Matrix bias_;
  Matrix weight_grad_;
  Matrix bias_grad_;
};

}  // namespace m3dfl

#endif  // M3DFL_GNN_GCN_H_
