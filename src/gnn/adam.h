// Adam optimizer over registered (parameter, gradient) tensor pairs.
#ifndef M3DFL_GNN_ADAM_H_
#define M3DFL_GNN_ADAM_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "gnn/matrix.h"

namespace m3dfl {

struct AdamOptions {
  double lr = 0.01;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
};

class Adam {
 public:
  explicit Adam(const AdamOptions& options = {}) : options_(options) {}

  // Registers a parameter tensor and its gradient accumulator.  Pointers
  // must outlive the optimizer.
  void register_param(Matrix* value, Matrix* grad);

  // Applies one update from the accumulated gradients (scaled by
  // 1/batch_size) and zeroes them.
  void step(std::int32_t batch_size = 1);

  // The divergence guard rail rescales the learning rate after a rollback.
  double lr() const { return options_.lr; }
  void set_lr(double lr) { options_.lr = lr; }

  // True when every registered parameter value is finite.  Cheap enough to
  // run per epoch; a single inf/NaN weight poisons every later prediction,
  // so the trainer checks this alongside the epoch loss.
  bool all_finite() const;

  // Optimizer-state persistence for training checkpoints: step count plus
  // first/second moments per slot.  load() requires the same parameters to
  // have been registered in the same order as at save time and throws
  // m3dfl::Error on a slot-count or shape mismatch.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  struct Slot {
    Matrix* value;
    Matrix* grad;
    Matrix m;
    Matrix v;
  };
  AdamOptions options_;
  std::vector<Slot> slots_;
  std::int64_t t_ = 0;
};

}  // namespace m3dfl

#endif  // M3DFL_GNN_ADAM_H_
