#include "gnn/model.h"

#include <cmath>

namespace m3dfl {
namespace {

// Cross-entropy gradient at the logits of a softmax row: p - onehot(label).
Matrix ce_logit_grad(const Matrix& probs, std::int32_t row, int label) {
  Matrix grad(probs.rows(), probs.cols());
  for (std::int32_t j = 0; j < probs.cols(); ++j) {
    grad.at(row, j) = probs.at(row, j) - (j == label ? 1.0f : 0.0f);
  }
  return grad;
}

double ce_loss(const Matrix& probs, std::int32_t row, int label) {
  const double p =
      std::max(1e-9, static_cast<double>(probs.at(row, label)));
  return -std::log(p);
}

// Graph readout: concatenated mean and max pooling, [1 x 2F].  The mean
// captures the aggregate tier mix of the candidate path; the max lets the
// classifier key on individual localized nodes (e.g. a deep top-tier fault
// site) that mean pooling would dilute across the subgraph.
struct PoolCache {
  std::vector<std::int32_t> argmax;  // per column
};

Matrix readout_pool(const Matrix& h, PoolCache& cache) {
  const std::int32_t f = h.cols();
  Matrix out(1, 2 * f);
  cache.argmax.assign(static_cast<std::size_t>(f), 0);
  for (std::int32_t j = 0; j < f; ++j) {
    float sum = 0.0f;
    float mx = h.at(0, j);
    std::int32_t arg = 0;
    for (std::int32_t i = 0; i < h.rows(); ++i) {
      const float x = h.at(i, j);
      sum += x;
      if (x > mx) {
        mx = x;
        arg = i;
      }
    }
    out.at(0, j) = sum / static_cast<float>(h.rows());
    out.at(0, f + j) = mx;
    cache.argmax[static_cast<std::size_t>(j)] = arg;
  }
  return out;
}

Matrix readout_pool_backward(const Matrix& dpool, const PoolCache& cache,
                             std::int32_t num_nodes) {
  const std::int32_t f = dpool.cols() / 2;
  Matrix d(num_nodes, f);
  const float inv = 1.0f / static_cast<float>(num_nodes);
  for (std::int32_t j = 0; j < f; ++j) {
    const float dmean = dpool.at(0, j) * inv;
    for (std::int32_t i = 0; i < num_nodes; ++i) d.at(i, j) = dmean;
    d.at(cache.argmax[static_cast<std::size_t>(j)], j) +=
        dpool.at(0, f + j);
  }
  return d;
}

}  // namespace

GcnEncoder::GcnEncoder(const GcnModelConfig& config, Rng& rng) {
  M3DFL_REQUIRE(config.num_layers >= 1, "encoder needs at least one layer");
  for (std::int32_t l = 0; l < config.num_layers; ++l) {
    const std::int32_t in = l == 0 ? config.in_dim : config.hidden;
    layers_.emplace_back(in, config.hidden, /*use_relu=*/true, rng);
  }
}

std::int32_t GcnEncoder::out_dim() const { return layers_.back().out_dim(); }

Matrix GcnEncoder::encode(const NormalizedAdjacency& adj, const Matrix& x,
                          std::vector<GcnCache>& caches) const {
  caches.resize(layers_.size());
  Matrix h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l].forward(adj, h, caches[l]);
  }
  return h;
}

void GcnEncoder::backward(const NormalizedAdjacency& adj,
                          const std::vector<GcnCache>& caches,
                          const Matrix& dh, const Matrix& input) {
  (void)input;  // layer 0's propagated input is cached; X itself not needed
  Matrix grad = dh;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    grad = layers_[l].backward(adj, caches[l], grad);
  }
}

void GcnEncoder::register_params(Adam& adam) {
  for (GcnLayer& layer : layers_) {
    adam.register_param(&layer.weight(), &layer.weight_grad());
    adam.register_param(&layer.bias(), &layer.bias_grad());
  }
}

void GcnEncoder::zero_grad() {
  for (GcnLayer& layer : layers_) layer.zero_grad();
}

NormalizedAdjacency subgraph_adjacency(const Subgraph& sg) {
  return NormalizedAdjacency(sg.num_nodes(), sg.edge_u, sg.edge_v);
}

// ---- TierPredictor ---------------------------------------------------------

TierPredictor::TierPredictor(const GcnModelConfig& config)
    : config_(config),
      encoder_([&] {
        Rng rng(config.seed);
        return GcnEncoder(config, rng);
      }()),
      head_([&] {
        Rng rng(config.seed ^ 0x5bd1e995u);
        return DenseLayer(2 * config.hidden, config.classes,
                          /*use_relu=*/false, rng);
      }()) {}

std::array<double, 2> TierPredictor::predict(const Subgraph& sg) const {
  if (sg.empty()) return {0.5, 0.5};
  return predict(sg, subgraph_adjacency(sg));
}

std::array<double, 2> TierPredictor::predict(
    const Subgraph& sg, const NormalizedAdjacency& adj) const {
  if (sg.empty()) return {0.5, 0.5};
  std::vector<GcnCache> caches;
  const Matrix h = encoder_.encode(adj, sg.features, caches);
  PoolCache pc;
  DenseCache dc;
  const Matrix logits = head_.forward(readout_pool(h, pc), dc);
  const Matrix probs = softmax_rows(logits);
  return {static_cast<double>(probs.at(0, 0)),
          static_cast<double>(probs.at(0, 1))};
}

int TierPredictor::predicted_tier(const Subgraph& sg, double* confidence,
                                  double* margin) const {
  const auto p = predict(sg);
  const int tier = p[1] > p[0] ? 1 : 0;
  if (confidence != nullptr) {
    *confidence = std::max(p[0], p[1]);
  }
  if (margin != nullptr) {
    *margin = std::abs(p[1] - p[0]);
  }
  return tier;
}

int TierPredictor::predicted_tier(const Subgraph& sg,
                                  const NormalizedAdjacency& adj,
                                  double* confidence, double* margin) const {
  const auto p = predict(sg, adj);
  const int tier = p[1] > p[0] ? 1 : 0;
  if (confidence != nullptr) {
    *confidence = std::max(p[0], p[1]);
  }
  if (margin != nullptr) {
    *margin = std::abs(p[1] - p[0]);
  }
  return tier;
}

double TierPredictor::train_step(const Subgraph& sg,
                                 const NormalizedAdjacency& adj, int label) {
  if (sg.empty()) return 0.0;
  M3DFL_ASSERT(label == 0 || label == 1);
  std::vector<GcnCache> caches;
  const Matrix h = encoder_.encode(adj, sg.features, caches);
  PoolCache pc;
  DenseCache dc;
  const Matrix logits = head_.forward(readout_pool(h, pc), dc);
  const Matrix probs = softmax_rows(logits);
  const double loss = ce_loss(probs, 0, label);

  const Matrix dlogits = ce_logit_grad(probs, 0, label);
  const Matrix dpool = head_.backward(dc, dlogits);
  encoder_.backward(adj, caches,
                    readout_pool_backward(dpool, pc, sg.num_nodes()),
                    sg.features);
  return loss;
}

void TierPredictor::register_params(Adam& adam) {
  encoder_.register_params(adam);
  adam.register_param(&head_.weight(), &head_.weight_grad());
  adam.register_param(&head_.bias(), &head_.bias_grad());
}

// ---- MivPinpointer ---------------------------------------------------------

MivPinpointer::MivPinpointer(const GcnModelConfig& config)
    : config_(config),
      encoder_([&] {
        Rng rng(config.seed ^ 0x27d4eb2fu);
        return GcnEncoder(config, rng);
      }()),
      head_([&] {
        Rng rng(config.seed ^ 0x165667b1u);
        return DenseLayer(config.hidden, config.classes, /*use_relu=*/false,
                          rng);
      }()) {}

std::vector<double> MivPinpointer::predict(const Subgraph& sg) const {
  if (sg.empty() || sg.miv_local.empty()) {
    return std::vector<double>(sg.miv_local.size(), 0.0);
  }
  return predict(sg, subgraph_adjacency(sg));
}

std::vector<double> MivPinpointer::predict(
    const Subgraph& sg, const NormalizedAdjacency& adj) const {
  std::vector<double> out(sg.miv_local.size(), 0.0);
  if (sg.empty() || sg.miv_local.empty()) return out;
  std::vector<GcnCache> caches;
  const Matrix h = encoder_.encode(adj, sg.features, caches);
  DenseCache dc;
  const Matrix probs = softmax_rows(head_.forward(h, dc));
  for (std::size_t i = 0; i < sg.miv_local.size(); ++i) {
    out[i] = static_cast<double>(probs.at(sg.miv_local[i], 1));
  }
  return out;
}

std::vector<MivId> MivPinpointer::predict_faulty(const Subgraph& sg,
                                                 double threshold) const {
  const std::vector<double> probs = predict(sg);
  std::vector<MivId> faulty;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    if (probs[i] >= threshold) faulty.push_back(sg.miv_ids[i]);
  }
  return faulty;
}

std::vector<MivId> MivPinpointer::predict_faulty(const Subgraph& sg,
                                                 const NormalizedAdjacency& adj,
                                                 double threshold) const {
  const std::vector<double> probs = predict(sg, adj);
  std::vector<MivId> faulty;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    if (probs[i] >= threshold) faulty.push_back(sg.miv_ids[i]);
  }
  return faulty;
}

double MivPinpointer::train_step(const Subgraph& sg,
                                 const NormalizedAdjacency& adj) {
  if (sg.empty() || sg.miv_local.empty()) return 0.0;
  std::vector<GcnCache> caches;
  const Matrix h = encoder_.encode(adj, sg.features, caches);
  DenseCache dc;
  const Matrix logits = head_.forward(h, dc);
  const Matrix probs = softmax_rows(logits);

  // Masked cross-entropy over MIV nodes only; defective MIVs are a tiny
  // minority within a subgraph, so positives are up-weighted to balance.
  double loss = 0.0;
  Matrix dlogits(logits.rows(), logits.cols());
  std::int32_t positives = 0;
  for (std::int8_t l : sg.miv_label) positives += l;
  const float pos_weight =
      positives == 0 ? 1.0f
                     : static_cast<float>(sg.miv_label.size() - positives) /
                           static_cast<float>(positives) / 2.0f +
                           0.5f;
  for (std::size_t i = 0; i < sg.miv_local.size(); ++i) {
    const std::int32_t row = sg.miv_local[i];
    const int label = sg.miv_label[i];
    const float w = label == 1 ? pos_weight : 1.0f;
    loss += w * ce_loss(probs, row, label);
    for (std::int32_t j = 0; j < probs.cols(); ++j) {
      dlogits.at(row, j) =
          w * (probs.at(row, j) - (j == label ? 1.0f : 0.0f));
    }
  }
  const float inv = 1.0f / static_cast<float>(sg.miv_local.size());
  scale_inplace(dlogits, inv);
  loss *= inv;

  const Matrix dh = head_.backward(dc, dlogits);
  encoder_.backward(adj, caches, dh, sg.features);
  return loss;
}

void MivPinpointer::register_params(Adam& adam) {
  encoder_.register_params(adam);
  adam.register_param(&head_.weight(), &head_.weight_grad());
  adam.register_param(&head_.bias(), &head_.bias_grad());
}

// ---- PruneClassifier -------------------------------------------------------

PruneClassifier::PruneClassifier(const TierPredictor& pretrained,
                                 const GcnModelConfig& config)
    : config_(config),
      encoder_(pretrained.encoder()),  // frozen copy of the hidden layers
      hidden_([&] {
        Rng rng(config.seed ^ 0x9e3779b9u);
        return DenseLayer(2 * config.hidden, config.hidden, /*use_relu=*/true,
                          rng);
      }()),
      head_([&] {
        Rng rng(config.seed ^ 0x85ebca6bu);
        return DenseLayer(config.hidden, 2, /*use_relu=*/false, rng);
      }()) {
  M3DFL_REQUIRE(pretrained.hidden_dim() == config.hidden,
                "transfer requires matching hidden dimensions");
}

double PruneClassifier::predict_prune_prob(const Subgraph& sg) const {
  if (sg.empty()) return 0.5;
  return predict_prune_prob(sg, subgraph_adjacency(sg));
}

double PruneClassifier::predict_prune_prob(
    const Subgraph& sg, const NormalizedAdjacency& adj) const {
  if (sg.empty()) return 0.5;
  std::vector<GcnCache> caches;
  const Matrix h = encoder_.encode(adj, sg.features, caches);
  PoolCache pc;
  DenseCache c1;
  DenseCache c2;
  const Matrix logits =
      head_.forward(hidden_.forward(readout_pool(h, pc), c1), c2);
  const Matrix probs = softmax_rows(logits);
  return static_cast<double>(probs.at(0, 1));
}

double PruneClassifier::train_step(const Subgraph& sg,
                                   const NormalizedAdjacency& adj,
                                   int label) {
  if (sg.empty()) return 0.0;
  M3DFL_ASSERT(label == 0 || label == 1);
  std::vector<GcnCache> caches;
  const Matrix h = encoder_.encode(adj, sg.features, caches);
  PoolCache pc;
  DenseCache c1;
  DenseCache c2;
  const Matrix logits =
      head_.forward(hidden_.forward(readout_pool(h, pc), c1), c2);
  const Matrix probs = softmax_rows(logits);
  const double loss = ce_loss(probs, 0, label);

  const Matrix dlogits = ce_logit_grad(probs, 0, label);
  const Matrix dhid = head_.backward(c2, dlogits);
  hidden_.backward(c1, dhid);
  // Encoder frozen: gradients stop here (network-based transfer learning).
  return loss;
}

void PruneClassifier::register_params(Adam& adam) {
  adam.register_param(&hidden_.weight(), &hidden_.weight_grad());
  adam.register_param(&hidden_.bias(), &hidden_.bias_grad());
  adam.register_param(&head_.weight(), &head_.weight_grad());
  adam.register_param(&head_.bias(), &head_.bias_grad());
}

}  // namespace m3dfl
