// Training loops, evaluation helpers, and feature-significance analysis.
//
// The epoch loop is factored around an explicit, serializable
// EpochLoopState so the crash-recovery layer (core/checkpoint.h) can pause
// training at any epoch boundary, persist (state, optimizer, weights), and
// later resume the exact variate-for-variate sequence an uninterrupted run
// would have produced.  The train_* convenience functions below drive the
// same loop with a fresh state, so checkpointed and plain training are the
// same computation.
#ifndef M3DFL_GNN_TRAINER_H_
#define M3DFL_GNN_TRAINER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "gnn/model.h"

namespace m3dfl {

struct TrainOptions {
  std::int32_t epochs = 200;
  std::int32_t batch_size = 8;
  double lr = 0.01;
  std::uint64_t seed = 123;
  // Stop early when the epoch loss improves less than this for `patience`
  // consecutive epochs.
  double min_improvement = 1e-4;
  std::int32_t patience = 25;
};

// Mid-training state of one model's epoch loop.  Everything needed to
// continue the loop deterministically lives here (plus the Adam moments and
// the model weights, which their owners serialize separately).
struct EpochLoopState {
  std::int32_t next_epoch = 0;   // first epoch still to run
  double best_loss = 1e30;       // early-stopping reference
  std::int32_t stale = 0;        // epochs without sufficient improvement
  double last_loss = 0.0;        // mean loss of the last completed epoch
  bool done = false;             // early-stopped or epoch budget exhausted
  Rng rng{0};                    // per-epoch shuffle stream
};

// One forward/backward pass for dataset index i; returns its loss.
using TrainStepFn = std::function<double(std::size_t)>;
// Called after every completed epoch, with the loss already folded into
// `state`.  Return false to pause the loop (it can be re-entered later with
// the same state); the hook may also mutate state/adam/weights to implement
// divergence rollback.
using EpochHook = std::function<bool(EpochLoopState&)>;

// Runs epochs from state.next_epoch until the budget in `options` is
// exhausted, early stopping triggers, or the hook pauses.  Each epoch visits
// the dataset in a fresh shuffle drawn from state.rng (the permutation is a
// pure function of the rng state, so a restored state replays identical
// epochs).  Returns state.last_loss.
double run_epoch_loop(std::size_t dataset_size, const TrainOptions& options,
                      Adam& adam, EpochLoopState& state,
                      const TrainStepFn& step, const EpochHook& hook = {});

// ---- Dataset selection ------------------------------------------------------
// Shared between the one-shot train_* functions and the checkpointing
// trainer so both see byte-identical sample sets.

struct TrainSet {
  std::vector<const Subgraph*> data;
  std::vector<NormalizedAdjacency> adj;
  std::size_t size() const { return data.size(); }
};

// Tier-labeled, non-empty subgraphs (samples labeled kMivTier are skipped).
TrainSet select_tier_samples(std::span<const Subgraph> graphs);
// Non-empty subgraphs that contain at least one MIV node.
TrainSet select_miv_samples(std::span<const Subgraph> graphs);
// Non-empty subgraphs with their labels aligned.
struct LabeledTrainSet {
  TrainSet set;
  std::vector<int> labels;
};
LabeledTrainSet select_classifier_samples(std::span<const Subgraph> graphs,
                                          std::span<const int> labels);

// ---- One-shot training ------------------------------------------------------

// Trains the tier predictor on labeled subgraphs (tier_label 0/1; samples
// labeled kMivTier are skipped).  Returns the final mean epoch loss.
double train_tier_predictor(TierPredictor& model,
                            std::span<const Subgraph> graphs,
                            const TrainOptions& options = {});

// Trains the MIV pinpointer; uses each subgraph's miv_label vector.
double train_miv_pinpointer(MivPinpointer& model,
                            std::span<const Subgraph> graphs,
                            const TrainOptions& options = {});

// Trains the prune/reorder classifier on (subgraph, label) pairs
// (1 = prune is safe).
double train_prune_classifier(PruneClassifier& model,
                              std::span<const Subgraph> graphs,
                              std::span<const int> labels,
                              const TrainOptions& options = {});

// Fraction of tier-labeled subgraphs classified correctly.
double tier_accuracy(const TierPredictor& model,
                     std::span<const Subgraph> graphs);

// MIV-pinpointer sample accuracy: a sample counts as correct when the set of
// MIVs predicted faulty (threshold 0.5) equals the labeled set.
double miv_accuracy(const MivPinpointer& model,
                    std::span<const Subgraph> graphs);

// Permutation feature importance on the trained tier predictor: accuracy
// drop when feature j is shuffled across the evaluation set.  Returned as
// the paper-style significance score 0.5 + drop (clamped to [0, 1]): 0.5 is
// neutral, 1 maximally important — our GNNExplainer substitute (Table II).
std::vector<double> feature_significance(const TierPredictor& model,
                                         std::span<const Subgraph> graphs,
                                         std::uint64_t seed = 99);

}  // namespace m3dfl

#endif  // M3DFL_GNN_TRAINER_H_
