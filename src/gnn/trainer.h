// Training loops, evaluation helpers, and feature-significance analysis.
#ifndef M3DFL_GNN_TRAINER_H_
#define M3DFL_GNN_TRAINER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "gnn/model.h"

namespace m3dfl {

struct TrainOptions {
  std::int32_t epochs = 200;
  std::int32_t batch_size = 8;
  double lr = 0.01;
  std::uint64_t seed = 123;
  // Stop early when the epoch loss improves less than this for `patience`
  // consecutive epochs.
  double min_improvement = 1e-4;
  std::int32_t patience = 25;
};

// Trains the tier predictor on labeled subgraphs (tier_label 0/1; samples
// labeled kMivTier are skipped).  Returns the final mean epoch loss.
double train_tier_predictor(TierPredictor& model,
                            std::span<const Subgraph> graphs,
                            const TrainOptions& options = {});

// Trains the MIV pinpointer; uses each subgraph's miv_label vector.
double train_miv_pinpointer(MivPinpointer& model,
                            std::span<const Subgraph> graphs,
                            const TrainOptions& options = {});

// Trains the prune/reorder classifier on (subgraph, label) pairs
// (1 = prune is safe).
double train_prune_classifier(PruneClassifier& model,
                              std::span<const Subgraph> graphs,
                              std::span<const int> labels,
                              const TrainOptions& options = {});

// Fraction of tier-labeled subgraphs classified correctly.
double tier_accuracy(const TierPredictor& model,
                     std::span<const Subgraph> graphs);

// MIV-pinpointer sample accuracy: a sample counts as correct when the set of
// MIVs predicted faulty (threshold 0.5) equals the labeled set.
double miv_accuracy(const MivPinpointer& model,
                    std::span<const Subgraph> graphs);

// Permutation feature importance on the trained tier predictor: accuracy
// drop when feature j is shuffled across the evaluation set.  Returned as
// the paper-style significance score 0.5 + drop (clamped to [0, 1]): 0.5 is
// neutral, 1 maximally important — our GNNExplainer substitute (Table II).
std::vector<double> feature_significance(const TierPredictor& model,
                                         std::span<const Subgraph> graphs,
                                         std::uint64_t seed = 99);

}  // namespace m3dfl

#endif  // M3DFL_GNN_TRAINER_H_
