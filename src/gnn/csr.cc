#include "gnn/csr.h"

#include <algorithm>
#include <cmath>

namespace m3dfl {

NormalizedAdjacency::NormalizedAdjacency(
    std::int32_t num_nodes, const std::vector<std::int32_t>& edge_u,
    const std::vector<std::int32_t>& edge_v)
    : num_nodes_(num_nodes) {
  M3DFL_REQUIRE(edge_u.size() == edge_v.size(),
                "edge list endpoint arrays must match");
  const auto n = static_cast<std::size_t>(num_nodes);

  // Collect symmetric neighbor lists with self loops, deduplicated.
  std::vector<std::vector<std::int32_t>> nbr(n);
  for (std::size_t i = 0; i < n; ++i) {
    nbr[i].push_back(static_cast<std::int32_t>(i));  // self loop
  }
  for (std::size_t e = 0; e < edge_u.size(); ++e) {
    const std::int32_t u = edge_u[e];
    const std::int32_t v = edge_v[e];
    M3DFL_ASSERT(u >= 0 && u < num_nodes && v >= 0 && v < num_nodes);
    if (u == v) continue;  // self loops already present
    nbr[static_cast<std::size_t>(u)].push_back(v);
    nbr[static_cast<std::size_t>(v)].push_back(u);
  }
  std::vector<std::int32_t> degree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    auto& list = nbr[i];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    degree[i] = static_cast<std::int32_t>(list.size());
  }

  row_offset_.resize(n + 1);
  row_offset_[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    row_offset_[i + 1] = row_offset_[i] + degree[i];
  }
  col_.reserve(static_cast<std::size_t>(row_offset_[n]));
  coeff_.reserve(col_.capacity());
  for (std::size_t i = 0; i < n; ++i) {
    const double di = static_cast<double>(degree[i]);
    for (std::int32_t j : nbr[i]) {
      const double dj = static_cast<double>(degree[static_cast<std::size_t>(j)]);
      col_.push_back(j);
      coeff_.push_back(static_cast<float>(1.0 / std::sqrt(di * dj)));
    }
  }
}

Matrix NormalizedAdjacency::propagate(const Matrix& x) const {
  M3DFL_ASSERT(x.rows() == num_nodes_);
  Matrix y(x.rows(), x.cols());
  for (std::int32_t i = 0; i < num_nodes_; ++i) {
    auto out = y.row(i);
    for (std::int32_t k = row_offset_[static_cast<std::size_t>(i)];
         k < row_offset_[static_cast<std::size_t>(i) + 1]; ++k) {
      const std::int32_t j = col_[static_cast<std::size_t>(k)];
      const float w = coeff_[static_cast<std::size_t>(k)];
      const auto in = x.row(j);
      for (std::size_t c = 0; c < in.size(); ++c) out[c] += w * in[c];
    }
  }
  return y;
}

}  // namespace m3dfl
