#include "registry/registry.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "lint/lint.h"
#include "util/artifact.h"
#include "util/error.h"
#include "util/limits.h"

#if defined(__unix__) || defined(__APPLE__)
#define M3DFL_REGISTRY_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace m3dfl::registry {
namespace {

namespace fs = std::filesystem;

constexpr const char* kArtifactSuffix = ".m3dfl";

bool valid_design_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

// Reads a whole file into a string.  On POSIX the read is mmap-backed (one
// copy, no iostream buffering of multi-MB weight text); elsewhere, or when
// mmap fails, falls back to a plain ifstream slurp.
std::string read_file_bytes(const std::string& path) {
#ifdef M3DFL_REGISTRY_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct ::stat st{};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const auto size = static_cast<std::size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        return std::string();
      }
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        std::string bytes(static_cast<const char*>(map), size);
        ::munmap(map, size);
        ::close(fd);
        return bytes;
      }
    }
    ::close(fd);
  }
#endif
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw Error("m3dfl: registry cannot open artifact '" + path +
                "': " + std::strerror(errno));
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return std::move(buf).str();
}

}  // namespace

std::string sanitize_model_name(const std::string& name) {
  std::string out = name;
  // Sanitize never rejects, so the length policy truncates instead: the
  // result must stay usable inside artifact_filename's 255-byte budget
  // (with room for the "@<version>.m3dfl" tail it gains there).
  const std::size_t cap = ParseLimits::defaults().max_filename_bytes / 2;
  if (out.size() > cap) out.resize(cap);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '-';
  }
  if (out.empty()) out = "design";
  return out;
}

std::string ModelRegistry::artifact_filename(const std::string& design,
                                             std::int32_t version) {
  M3DFL_REQUIRE(valid_design_name(design),
                "registry design name must be non-empty [A-Za-z0-9._-]: '" +
                    design + "'");
  M3DFL_REQUIRE(version > 0, "registry artifact version must be positive");
  std::string filename =
      design + "@" + std::to_string(version) + kArtifactSuffix;
  const std::size_t cap = ParseLimits::defaults().max_filename_bytes;
  if (filename.size() > cap) {
    throw Error("registry artifact filename: " +
                limit_exceeded("filename bytes", filename.size(), cap));
  }
  return filename;
}

bool ModelRegistry::parse_artifact_filename(const std::string& filename,
                                            std::string* design,
                                            std::int32_t* version) {
  // Oversized names are not artifact filenames (the writer cannot produce
  // them: artifact_filename enforces the same cap).  Bool surface: callers
  // skip the entry, they do not diagnose it.
  if (filename.size() > ParseLimits::defaults().max_filename_bytes) {
    return false;
  }
  const std::size_t suffix_len = std::strlen(kArtifactSuffix);
  if (filename.size() <= suffix_len ||
      filename.compare(filename.size() - suffix_len, suffix_len,
                       kArtifactSuffix) != 0) {
    return false;
  }
  const std::string stem = filename.substr(0, filename.size() - suffix_len);
  const std::size_t at = stem.rfind('@');
  if (at == std::string::npos || at == 0 || at + 1 >= stem.size()) {
    return false;
  }
  const std::string name = stem.substr(0, at);
  if (!valid_design_name(name)) return false;
  std::int32_t v = 0;
  const char* first = stem.data() + at + 1;
  const char* last = stem.data() + stem.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last || v <= 0) return false;
  if (design != nullptr) *design = name;
  if (version != nullptr) *version = v;
  return true;
}

ModelRegistry::ModelRegistry(std::string dir, RegistryOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  std::error_code ec;
  M3DFL_REQUIRE(fs::is_directory(dir_, ec),
                "model registry root is not a directory: '" + dir_ + "'");
  std::lock_guard<std::mutex> lock(mu_);
  rescan_locked();
}

void ModelRegistry::rescan() {
  std::lock_guard<std::mutex> lock(mu_);
  rescan_locked();
}

void ModelRegistry::rescan_locked() {
  std::map<std::string, std::map<std::int32_t, std::string>> index;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::string design;
    std::int32_t version = 0;
    if (!parse_artifact_filename(entry.path().filename().string(), &design,
                                 &version)) {
      continue;  // not a registry artifact (README, tmp files, ...)
    }
    index[design][version] = entry.path().string();
  }
  if (ec) {
    throw Error("m3dfl: registry scan of '" + dir_ +
                "' failed: " + ec.message());
  }
  index_ = std::move(index);
}

ModelRegistry::FileStamp ModelRegistry::stat_locked(
    const std::string& path) const {
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->should_fail(
          static_cast<int>(RegistrySeam::kStat))) {
    throw Error("m3dfl: injected registry stat fault on '" + path + "'");
  }
  std::error_code ec;
  const auto status_size = fs::file_size(path, ec);
  if (ec) {
    throw Error("m3dfl: registry cannot stat artifact '" + path +
                "': " + ec.message());
  }
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) {
    throw Error("m3dfl: registry cannot stat artifact '" + path +
                "': " + ec.message());
  }
  FileStamp stamp;
  stamp.size = static_cast<std::uint64_t>(status_size);
  stamp.mtime_ns = static_cast<std::int64_t>(
      mtime.time_since_epoch().count());
  return stamp;
}

std::shared_ptr<const LoadedModel> ModelRegistry::load_locked(
    const std::string& design, std::int32_t version, const std::string& path) {
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->should_fail(
          static_cast<int>(RegistrySeam::kLoad))) {
    throw Error("m3dfl: injected registry load fault on '" + path + "'");
  }
  const std::string bytes = read_file_bytes(path);
  if (!is_artifact(bytes)) {
    throw Error(
        "m3dfl: registry artifact '" + path +
        "' is not a format-" + std::to_string(kArtifactVersion) +
        " container; convert legacy streams with `m3dfl_tool migrate-artifact`");
  }
  auto model = std::make_shared<LoadedModel>();
  model->design = design;
  model->version = version;
  model->path = path;
  model->resident_bytes = bytes.size();
  // The container checksum/structure checks (and the framework's own shape
  // checks) run inside load(); any violation throws with `path` cited.
  std::istringstream is(bytes);
  model->framework.load(is, path);
  if (options_.lint_models) {
    const lint::Report report = lint::lint_model(model->framework, nullptr);
    if (report.has_errors()) {
      throw Error("m3dfl: registry rejected '" + path +
                  "': lint_model found errors:\n" + report.to_string());
    }
  }
  model->generation = ++next_generation_;
  return model;
}

void ModelRegistry::touch_locked(const std::string& key, Resident& entry) {
  lru_.erase(entry.lru_it);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
}

void ModelRegistry::evict_locked(const std::string& keep_key) {
  if (options_.max_resident_bytes == 0) return;
  while (resident_bytes_ > options_.max_resident_bytes && lru_.size() > 1) {
    auto victim_it = std::prev(lru_.end());
    if (*victim_it == keep_key) {
      // The just-acquired model must stay resident even while over the
      // watermark; evict the next-oldest instead.
      victim_it = std::prev(victim_it);
    }
    const auto it = resident_.find(*victim_it);
    resident_bytes_ -= it->second.model->resident_bytes;
    lru_.erase(victim_it);
    resident_.erase(it);
    ++evictions_;
  }
}

std::shared_ptr<const LoadedModel> ModelRegistry::acquire(
    const std::string& design, std::int32_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto design_it = index_.find(design);
  if (design_it == index_.end() ||
      (version != kLatest &&
       design_it->second.find(version) == design_it->second.end())) {
    // One implicit rescan: a trainer may have just published a new design
    // or version file.
    rescan_locked();
    design_it = index_.find(design);
  }
  if (design_it == index_.end() || design_it->second.empty()) {
    throw Error("m3dfl: registry has no model for design '" + design +
                "' under '" + dir_ + "'");
  }
  std::int32_t resolved = version;
  if (resolved == kLatest) {
    resolved = design_it->second.rbegin()->first;
  }
  const auto version_it = design_it->second.find(resolved);
  if (version_it == design_it->second.end()) {
    throw Error("m3dfl: registry has no version " + std::to_string(resolved) +
                " of design '" + design + "' under '" + dir_ + "'");
  }
  const std::string& path = version_it->second;
  const std::string key = design + "@" + std::to_string(resolved);

  const auto resident_it = resident_.find(key);
  if (resident_it != resident_.end()) {
    Resident& entry = resident_it->second;
    if (options_.reload_check) {
      // A changed (size, mtime) stamp means the artifact file was atomically
      // replaced; reload under a new generation.  Stat or reload failures
      // leave the old model serving.
      try {
        const FileStamp now = stat_locked(path);
        if (!(now == entry.stamp)) {
          auto reloaded = load_locked(design, resolved, path);
          resident_bytes_ -= entry.model->resident_bytes;
          resident_bytes_ += reloaded->resident_bytes;
          entry.model = std::move(reloaded);
          entry.stamp = now;
          ++reloads_;
          touch_locked(key, entry);
          evict_locked(key);
          return resident_.at(key).model;
        }
      } catch (const Error&) {
        ++reload_failures_;
      }
    }
    ++hits_;
    touch_locked(key, entry);
    return entry.model;
  }

  // Cold load.  A first-load failure propagates to the caller — there is no
  // older generation to fall back to.
  const FileStamp stamp = stat_locked(path);
  auto model = load_locked(design, resolved, path);
  ++loads_;  // cold loads only; replacement loads count in reloads_
  Resident entry;
  entry.model = std::move(model);
  entry.stamp = stamp;
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  resident_bytes_ += entry.model->resident_bytes;
  auto inserted = resident_.emplace(key, std::move(entry)).first;
  evict_locked(key);
  return inserted->second.model;
}

std::vector<std::string> ModelRegistry::designs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [design, versions] : index_) out.push_back(design);
  return out;
}

std::vector<std::int32_t> ModelRegistry::versions(
    const std::string& design) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::int32_t> out;
  const auto it = index_.find(design);
  if (it == index_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [version, path] : it->second) out.push_back(version);
  return out;
}

bool ModelRegistry::has(const std::string& design, std::int32_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(design);
  if (it == index_.end() || it->second.empty()) return false;
  return version == kLatest ||
         it->second.find(version) != it->second.end();
}

std::int64_t ModelRegistry::loads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return loads_;
}
std::int64_t ModelRegistry::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}
std::int64_t ModelRegistry::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}
std::int64_t ModelRegistry::reloads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reloads_;
}
std::int64_t ModelRegistry::reload_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reload_failures_;
}
std::uint64_t ModelRegistry::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_generation_;
}
std::size_t ModelRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}
std::size_t ModelRegistry::resident_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_.size();
}

}  // namespace m3dfl::registry
