// Multi-tenant model registry over the checksummed artifact container.
//
// The paper deploys one pretrained framework per design; production means a
// fleet of designs × model versions, far more than fit in memory at once.
// ModelRegistry turns a directory of format-2 framework artifacts
// (util/artifact.h) into a demand-loaded model store:
//
//   registry-dir/
//     AES-Syn-1@1.m3dfl        <design>@<version>.m3dfl, version a positive
//     AES-Syn-1@2.m3dfl        integer; each file one "framework" artifact
//     netcard-Syn-1@1.m3dfl    container (m3dfl_tool train writes these;
//     ...                      migrate format-1 files with
//                              `m3dfl_tool migrate-artifact`)
//
// Semantics:
//
//   * Lazy load.  Construction only indexes filenames; an artifact is read,
//     checksum-verified, and parsed on the first acquire() that needs it
//     (mmap-backed read on POSIX — the multi-MB container is never
//     double-buffered through iostreams).
//   * Versioned lookup.  acquire(design) serves the highest version in the
//     index; acquire(design, v) pins one.  New version *files* enter the
//     index at construction or rescan(); *replacement* of an indexed file
//     is picked up automatically (below).
//   * LRU eviction by resident bytes.  When max_resident_bytes > 0, loading
//     past the watermark evicts least-recently-acquired models from the
//     resident map.  Eviction is epoch-style: in-flight readers hold a
//     shared_ptr, so an evicted model stays valid until the last reader
//     drops it — eviction bounds *registry-owned* memory, it never
//     invalidates a served request.
//   * Atomic hot reload.  Every acquire of a resident model cheaply stats
//     its file; when the (size, mtime) stamp changed — an atomic
//     rename-replace by a trainer — the registry reloads and hands out the
//     new model under a bumped generation, while in-flight requests finish
//     on the old shared_ptr.  A corrupt or truncated replacement is
//     *rejected* (the container checksum path throws) and the old
//     generation keeps serving; reload_failures counts the rejections.
//
// Generations are registry-global and strictly increasing: every successful
// load or reload allocates the next one, so a result tagged with a
// generation (serve::DiagnosisResult::model_generation) names exactly one
// artifact load event.  Thread-safe; one mutex over index + resident map
// (loads parse outside any per-request hot path — the fleet layer acquires
// once per routing decision, not per inference).
#ifndef M3DFL_REGISTRY_REGISTRY_H_
#define M3DFL_REGISTRY_REGISTRY_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/framework.h"
#include "util/fault_injector.h"

namespace m3dfl::registry {

// Fault-injection seams (util/fault_injector.h); the fleet chaos harness
// arms these to simulate I/O failures distinct from on-disk corruption.
enum class RegistrySeam : int {
  kLoad = 0,  // artifact read/parse on (re)load
  kStat = 1,  // the per-acquire freshness stat
};
inline constexpr int kNumRegistrySeams = 2;

struct RegistryOptions {
  // Resident-bytes watermark for LRU eviction; 0 = never evict.  Bytes are
  // accounted as artifact file size — a faithful proxy, since the parsed
  // weight matrices are within a small constant of the hex-float text.
  std::size_t max_resident_bytes = 0;
  // When true (default), every acquire of a resident model stats its file
  // and hot-reloads on an atomic replacement.  Off = a model is immutable
  // once loaded (cheapest; version bumps still work via rescan()).
  bool reload_check = true;
  // When true, a loaded model must also pass lint::lint_model (shape/
  // finiteness checks) or the load is rejected like a corrupt artifact.
  bool lint_models = false;
  // Deterministic chaos for tests; null costs one pointer check per seam.
  std::shared_ptr<FaultInjector> fault_injector;
};

// One loaded model version; immutable after load, shared with every
// in-flight reader.
struct LoadedModel {
  std::string design;
  std::int32_t version = 0;
  std::string path;
  // Registry-global load event id (strictly increasing across all designs).
  std::uint64_t generation = 0;
  std::size_t resident_bytes = 0;
  DiagnosisFramework framework;
};

class ModelRegistry {
 public:
  // acquire() version selector: serve the highest indexed version.
  static constexpr std::int32_t kLatest = 0;

  // Indexes `dir` (which must exist) without loading anything.  Throws
  // m3dfl::Error when dir is not a directory.
  explicit ModelRegistry(std::string dir, RegistryOptions options = {});

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // `<design>@<version>.m3dfl`.  parse returns false for filenames that are
  // not registry artifacts (they are ignored by the index scan).
  static std::string artifact_filename(const std::string& design,
                                       std::int32_t version);
  static bool parse_artifact_filename(const std::string& filename,
                                      std::string* design,
                                      std::int32_t* version);

  // Returns the model, loading it on first use.  Throws m3dfl::Error when
  // the design/version is unknown (after one implicit rescan) or when a
  // *first* load fails (missing file, bad checksum, format-1 stream, lint
  // rejection).  A failed *re*load of an already resident model never
  // throws: the old model keeps serving and reload_failures increments.
  std::shared_ptr<const LoadedModel> acquire(const std::string& design,
                                             std::int32_t version = kLatest);

  // Re-scans the directory for added or removed artifact files.  Resident
  // models whose files vanished stay resident (in-flight epochs must not
  // die because a file was unlinked) but leave the index.
  void rescan();

  // Index introspection.
  std::vector<std::string> designs() const;
  std::vector<std::int32_t> versions(const std::string& design) const;
  bool has(const std::string& design, std::int32_t version = kLatest) const;

  const std::string& dir() const { return dir_; }
  const RegistryOptions& options() const { return options_; }

  // Counters (monotonic): cold loads, resident-map hits, LRU evictions,
  // successful hot reloads, rejected hot reloads, and the last allocated
  // generation (0 = nothing loaded yet).
  std::int64_t loads() const;
  std::int64_t hits() const;
  std::int64_t evictions() const;
  std::int64_t reloads() const;
  std::int64_t reload_failures() const;
  std::uint64_t generation() const;
  // Bytes and entry count currently held by the resident map (excludes
  // evicted models kept alive by readers).
  std::size_t resident_bytes() const;
  std::size_t resident_count() const;

 private:
  // (size, mtime) freshness stamp of an artifact file.
  struct FileStamp {
    std::uint64_t size = 0;
    std::int64_t mtime_ns = 0;
    bool operator==(const FileStamp&) const = default;
  };
  struct Resident {
    std::shared_ptr<const LoadedModel> model;
    FileStamp stamp;
    std::list<std::string>::iterator lru_it;  // position in lru_
  };

  void rescan_locked();
  FileStamp stat_locked(const std::string& path) const;
  // Reads + parses one artifact; throws on any integrity violation.
  std::shared_ptr<const LoadedModel> load_locked(const std::string& design,
                                                 std::int32_t version,
                                                 const std::string& path);
  // Moves `key` to the MRU position (inserting if new).
  void touch_locked(const std::string& key, Resident& entry);
  // Evicts LRU residents past the byte watermark; never evicts `keep_key`.
  void evict_locked(const std::string& keep_key);

  const std::string dir_;
  const RegistryOptions options_;

  mutable std::mutex mu_;
  // design -> version -> file path.
  std::map<std::string, std::map<std::int32_t, std::string>> index_;
  // "design@version" -> resident model.
  std::unordered_map<std::string, Resident> resident_;
  std::list<std::string> lru_;  // front = most recently acquired
  std::size_t resident_bytes_ = 0;
  std::uint64_t next_generation_ = 0;
  std::int64_t loads_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t reloads_ = 0;
  std::int64_t reload_failures_ = 0;
};

// Maps an arbitrary design name onto the registry filename alphabet:
// characters outside [A-Za-z0-9._-] (e.g. the '/' in "AES/Syn-1") become
// '-'.  Used by the fleet CLI and benches to derive model names from
// Design::name().
std::string sanitize_model_name(const std::string& name);

}  // namespace m3dfl::registry

#endif  // M3DFL_REGISTRY_REGISTRY_H_
