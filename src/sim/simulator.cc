#include "sim/simulator.h"

namespace m3dfl {

LocSimulator::LocSimulator(const Netlist& netlist) : netlist_(&netlist) {
  M3DFL_REQUIRE(netlist.finalized(), "simulation requires a finalized netlist");
}

NetId LocSimulator::flop_d_net(std::int32_t flop_index) const {
  const auto& flops = netlist_->flops();
  M3DFL_ASSERT(flop_index >= 0 &&
               flop_index < static_cast<std::int32_t>(flops.size()));
  return netlist_->gate(flops[static_cast<std::size_t>(flop_index)]).fanin[0];
}

NetId LocSimulator::po_net(std::int32_t po_index) const {
  const auto& pos = netlist_->primary_outputs();
  M3DFL_ASSERT(po_index >= 0 &&
               po_index < static_cast<std::int32_t>(pos.size()));
  return netlist_->gate(pos[static_cast<std::size_t>(po_index)]).fanin[0];
}

void LocSimulator::evaluate(BitMatrix& values, std::int32_t w) const {
  std::uint64_t inputs[8];
  for (GateId g : netlist_->topo_order()) {
    const Gate& gate = netlist_->gate(g);
    const std::size_t k = gate.fanin.size();
    M3DFL_ASSERT(k <= 8);
    for (std::size_t i = 0; i < k; ++i) {
      inputs[i] = values.word(gate.fanin[i], w);
    }
    values.word(gate.fanout, w) = eval_gate(
        gate.type, std::span<const std::uint64_t>(inputs, k));
  }
}

void LocSimulator::run(const PatternSet& patterns) {
  const auto& nl = *netlist_;
  M3DFL_REQUIRE(
      patterns.pi.rows() ==
              static_cast<std::int32_t>(nl.primary_inputs().size()) &&
          patterns.scan.rows() == static_cast<std::int32_t>(nl.flops().size()),
      "pattern set does not match the design's PI/flop counts");
  num_patterns_ = patterns.num_patterns;
  const std::int32_t words = num_words();
  v1_ = BitMatrix(nl.num_nets(), num_patterns_);
  v2_ = BitMatrix(nl.num_nets(), num_patterns_);

  const auto& pis = nl.primary_inputs();
  const auto& flops = nl.flops();

  for (std::int32_t w = 0; w < words; ++w) {
    // Launch cycle: scan-loaded state + PI values.
    for (std::size_t i = 0; i < pis.size(); ++i) {
      v1_.word(nl.gate(pis[i]).fanout, w) =
          patterns.pi.word(static_cast<std::int32_t>(i), w);
    }
    for (std::size_t i = 0; i < flops.size(); ++i) {
      v1_.word(nl.gate(flops[i]).fanout, w) =
          patterns.scan.word(static_cast<std::int32_t>(i), w);
    }
    evaluate(v1_, w);

    // At-speed cycle: flops launched to S2 = D@V1, PIs held.
    for (std::size_t i = 0; i < pis.size(); ++i) {
      v2_.word(nl.gate(pis[i]).fanout, w) =
          patterns.pi.word(static_cast<std::int32_t>(i), w);
    }
    for (std::size_t i = 0; i < flops.size(); ++i) {
      v2_.word(nl.gate(flops[i]).fanout, w) =
          v1_.word(nl.gate(flops[i]).fanin[0], w);
    }
    evaluate(v2_, w);
  }
}

}  // namespace m3dfl
