#include "sim/fault.h"

namespace m3dfl {

std::string fault_to_string(const Netlist& netlist, const Fault& fault) {
  switch (fault.type) {
    case FaultType::kSlowToRise:
      return "STR@" + netlist.pin_name(fault.pin);
    case FaultType::kSlowToFall:
      return "STF@" + netlist.pin_name(fault.pin);
    case FaultType::kMivDelay:
      return "MIV#" + std::to_string(fault.miv);
    case FaultType::kStuckAt0:
      return "SA0@" + netlist.pin_name(fault.pin);
    case FaultType::kStuckAt1:
      return "SA1@" + netlist.pin_name(fault.pin);
  }
  M3DFL_ASSERT(false);
}

std::uint64_t faulty_value(FaultType type, std::uint64_t v1,
                           std::uint64_t current) {
  switch (type) {
    case FaultType::kSlowToRise: {
      const std::uint64_t held = (v1 ^ current) & ~v1;  // rising 0 -> 1
      return current ^ held;
    }
    case FaultType::kSlowToFall: {
      const std::uint64_t held = (v1 ^ current) & v1;   // falling 1 -> 0
      return current ^ held;
    }
    case FaultType::kMivDelay:
      return v1;  // both directions delayed: changed bits revert to launch
    case FaultType::kStuckAt0:
      return 0;
    case FaultType::kStuckAt1:
      return ~0ULL;
  }
  M3DFL_ASSERT(false);
}

}  // namespace m3dfl
