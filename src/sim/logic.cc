#include "sim/logic.h"

namespace m3dfl {

std::uint64_t valid_mask(std::int32_t num_patterns, std::int32_t w) {
  M3DFL_ASSERT(w >= 0 && w < words_for(num_patterns));
  const std::int32_t remaining = num_patterns - w * kWordBits;
  if (remaining >= kWordBits) return ~0ULL;
  return (1ULL << remaining) - 1;
}

PatternSet PatternSet::random(std::int32_t num_pis, std::int32_t num_flops,
                              std::int32_t num_patterns, Rng& rng) {
  M3DFL_REQUIRE(num_patterns > 0, "pattern count must be positive");
  PatternSet p;
  p.num_patterns = num_patterns;
  p.pi = BitMatrix(num_pis, num_patterns);
  p.scan = BitMatrix(num_flops, num_patterns);
  p.pi.randomize(rng);
  p.scan.randomize(rng);
  return p;
}

void PatternSet::append(const PatternSet& other) {
  M3DFL_REQUIRE(pi.rows() == other.pi.rows() &&
                    scan.rows() == other.scan.rows(),
                "appending patterns for a different design");
  BitMatrix new_pi(pi.rows(), num_patterns + other.num_patterns);
  BitMatrix new_scan(scan.rows(), num_patterns + other.num_patterns);
  const auto copy = [&](const BitMatrix& src, BitMatrix& dst,
                        std::int32_t offset) {
    for (std::int32_t r = 0; r < src.rows(); ++r) {
      for (std::int32_t b = 0; b < src.num_bits(); ++b) {
        dst.set_bit(r, offset + b, src.bit(r, b));
      }
    }
  };
  copy(pi, new_pi, 0);
  copy(other.pi, new_pi, num_patterns);
  copy(scan, new_scan, 0);
  copy(other.scan, new_scan, num_patterns);
  pi = std::move(new_pi);
  scan = std::move(new_scan);
  num_patterns += other.num_patterns;
}

}  // namespace m3dfl
