// Fault models.
//
// Faults follow the paper's M3D defect taxonomy, plus a static extension:
//  * Transition delay faults (TDFs) at gate pins — slow-to-rise or
//    slow-to-fall, the standard gross-delay model: an activated fault holds
//    its launch (V1) value through the capture edge.
//  * MIV delay faults — a resistive/voided inter-tier via delays *both*
//    transition directions, but only on the net segment crossing to the far
//    tier: sinks on the driver's own tier see the timely value.
//  * Stuck-at faults (extension) — classic static defects that pin a site to
//    a constant in *both* capture cycles; supported so the same simulator
//    and diagnosis flow can also serve static-defect debug.  Note that a
//    stuck site corrupts the launch state too (the flops capture the faulty
//    V1), which the fault simulator models exactly.
//
// A fault's diagnosis "location" is a pin (for TDFs/SAFs) or an MIV id; tier
// labels come from the faulty pin's gate (MIVs belong to no tier, paper
// Sec. VII-B).
#ifndef M3DFL_SIM_FAULT_H_
#define M3DFL_SIM_FAULT_H_

#include <cstdint>
#include <string>

#include "m3d/miv.h"
#include "netlist/netlist.h"

namespace m3dfl {

enum class FaultType : std::uint8_t {
  kSlowToRise,
  kSlowToFall,
  kMivDelay,
  kStuckAt0,
  kStuckAt1,
};

// True for static fault types, which corrupt both capture cycles.
constexpr bool is_static_fault(FaultType type) {
  return type == FaultType::kStuckAt0 || type == FaultType::kStuckAt1;
}

struct Fault {
  FaultType type = FaultType::kSlowToRise;
  PinId pin = kNullPin;  // fault site for pin faults
  MivId miv = kNullMiv;  // fault site for MIV faults

  bool is_miv() const { return type == FaultType::kMivDelay; }
  bool is_static() const { return is_static_fault(type); }

  static Fault slow_to_rise(PinId pin) {
    return Fault{FaultType::kSlowToRise, pin, kNullMiv};
  }
  static Fault slow_to_fall(PinId pin) {
    return Fault{FaultType::kSlowToFall, pin, kNullMiv};
  }
  static Fault miv_delay(MivId miv) {
    return Fault{FaultType::kMivDelay, kNullPin, miv};
  }
  static Fault stuck_at(PinId pin, bool value) {
    return Fault{value ? FaultType::kStuckAt1 : FaultType::kStuckAt0, pin,
                 kNullMiv};
  }

  friend bool operator==(const Fault&, const Fault&) = default;
};

// Human-readable fault description for reports.
std::string fault_to_string(const Netlist& netlist, const Fault& fault);

// Applies the fault behaviour to a word of capture-cycle signal values given
// the launch-cycle values `v1`:
//  * delay types hold the delayed transitions at their launch value
//    (kSlowToRise rising bits, kSlowToFall falling bits, kMivDelay both);
//  * stuck-at types force the constant regardless of v1.
std::uint64_t faulty_value(FaultType type, std::uint64_t v1,
                           std::uint64_t current);

}  // namespace m3dfl

#endif  // M3DFL_SIM_FAULT_H_
