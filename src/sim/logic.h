// Bit-parallel signal storage and test-pattern containers.
//
// The simulator packs 64 test patterns into each std::uint64_t word, so one
// gate evaluation advances 64 patterns at once.  BitMatrix is the shared
// [signal x pattern-word] storage used for pattern stimuli and simulated net
// values.
#ifndef M3DFL_SIM_LOGIC_H_
#define M3DFL_SIM_LOGIC_H_

#include <cstdint>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace m3dfl {

// Number of patterns per machine word.
inline constexpr std::int32_t kWordBits = 64;

// Number of 64-bit words needed for `bits` patterns.
constexpr std::int32_t words_for(std::int32_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

// Dense bit matrix: `rows` signals x `num_bits` patterns, packed row-major
// into 64-bit words.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::int32_t rows, std::int32_t num_bits)
      : rows_(rows),
        num_bits_(num_bits),
        words_per_row_(words_for(num_bits)),
        data_(static_cast<std::size_t>(rows) *
              static_cast<std::size_t>(words_per_row_)) {
    M3DFL_ASSERT(rows >= 0 && num_bits >= 0);
  }

  std::int32_t rows() const { return rows_; }
  std::int32_t num_bits() const { return num_bits_; }
  std::int32_t words_per_row() const { return words_per_row_; }

  std::uint64_t word(std::int32_t row, std::int32_t w) const {
    return data_[index(row, w)];
  }
  std::uint64_t& word(std::int32_t row, std::int32_t w) {
    return data_[index(row, w)];
  }

  bool bit(std::int32_t row, std::int32_t b) const {
    M3DFL_ASSERT(b >= 0 && b < num_bits_);
    return (word(row, b / kWordBits) >> (b % kWordBits)) & 1ULL;
  }
  void set_bit(std::int32_t row, std::int32_t b, bool value) {
    M3DFL_ASSERT(b >= 0 && b < num_bits_);
    std::uint64_t& w = word(row, b / kWordBits);
    const std::uint64_t mask = 1ULL << (b % kWordBits);
    if (value) {
      w |= mask;
    } else {
      w &= ~mask;
    }
  }

  // Fills every row with uniform random bits; bits beyond num_bits in the
  // last word are left random too (callers must mask by pattern count when
  // iterating bits, which pattern-indexed accessors do).
  void randomize(Rng& rng) {
    for (std::uint64_t& w : data_) w = rng.next_u64();
  }

 private:
  std::size_t index(std::int32_t row, std::int32_t w) const {
    M3DFL_ASSERT(row >= 0 && row < rows_ && w >= 0 && w < words_per_row_);
    return static_cast<std::size_t>(row) *
               static_cast<std::size_t>(words_per_row_) +
           static_cast<std::size_t>(w);
  }

  std::int32_t rows_ = 0;
  std::int32_t num_bits_ = 0;
  std::int32_t words_per_row_ = 0;
  std::vector<std::uint64_t> data_;
};

// Mask selecting the valid pattern bits of word `w` when `num_patterns`
// patterns are in use (all-ones except possibly the last word).
std::uint64_t valid_mask(std::int32_t num_patterns, std::int32_t w);

// A set of two-pattern LOC test stimuli: per pattern, the primary-input
// values and the scan-load (launch) state.  PI values are held constant
// across the launch and capture cycles.
struct PatternSet {
  std::int32_t num_patterns = 0;
  BitMatrix pi;    // [num_pis x num_patterns]
  BitMatrix scan;  // [num_flops x num_patterns]

  std::int32_t num_words() const { return words_for(num_patterns); }

  // Uniform random stimuli (the "random fill" of TDF ATPG).
  static PatternSet random(std::int32_t num_pis, std::int32_t num_flops,
                           std::int32_t num_patterns, Rng& rng);
  // Extends this set with the patterns of `other` (same PI/flop counts).
  void append(const PatternSet& other);
};

}  // namespace m3dfl

#endif  // M3DFL_SIM_LOGIC_H_
