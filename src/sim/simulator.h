// Good-machine launch-on-capture (LOC) simulator.
//
// LOC transition testing applies a two-pattern test through the functional
// path: the scan chains load the launch state V1, a launch clock pulse moves
// the flops to S2 = D@V1, the combinational logic settles to V2 during the
// at-speed cycle, and the capture pulse stores R = D@V2 (POs are observed at
// V2 as well).  Only the V2 evaluation runs at speed, so only it can be
// corrupted by a delay fault — the fault simulator re-evaluates V2 cones on
// top of the good-machine results stored here.
//
// A node "has a transition with pattern p" iff its V1 and V2 values differ;
// this is the transition memorization (paper Table I, T_pat) consumed by
// back-tracing.
#ifndef M3DFL_SIM_SIMULATOR_H_
#define M3DFL_SIM_SIMULATOR_H_

#include <cstdint>

#include "netlist/netlist.h"
#include "sim/logic.h"

namespace m3dfl {

class LocSimulator {
 public:
  explicit LocSimulator(const Netlist& netlist);

  // Simulates all patterns; results replace any previous run.
  void run(const PatternSet& patterns);

  const Netlist& netlist() const { return *netlist_; }
  std::int32_t num_patterns() const { return num_patterns_; }
  std::int32_t num_words() const { return words_for(num_patterns_); }

  // Net values in the launch cycle (V1) and the at-speed cycle (V2).
  std::uint64_t v1(NetId net, std::int32_t w) const { return v1_.word(net, w); }
  std::uint64_t v2(NetId net, std::int32_t w) const { return v2_.word(net, w); }
  // Transition word: bit p set iff the net switches between V1 and V2.
  std::uint64_t transition(NetId net, std::int32_t w) const {
    return v1_.word(net, w) ^ v2_.word(net, w);
  }
  bool has_transition(NetId net, std::int32_t pattern) const {
    return ((transition(net, pattern / kWordBits) >>
             (pattern % kWordBits)) &
            1ULL) != 0;
  }

  // Captured good-machine responses: flop D values at V2 (by flop index) and
  // PO values at V2 (by PO index).
  std::uint64_t captured(std::int32_t flop_index, std::int32_t w) const {
    return v2_.word(flop_d_net(flop_index), w);
  }
  std::uint64_t po_value(std::int32_t po_index, std::int32_t w) const {
    return v2_.word(po_net(po_index), w);
  }

  NetId flop_d_net(std::int32_t flop_index) const;
  NetId po_net(std::int32_t po_index) const;

 private:
  // Evaluates the combinational logic into `values` given source values
  // already written to PI and flop-Q net rows.
  void evaluate(BitMatrix& values, std::int32_t w) const;

  const Netlist* netlist_;
  std::int32_t num_patterns_ = 0;
  BitMatrix v1_;  // [net x pattern]
  BitMatrix v2_;
};

}  // namespace m3dfl

#endif  // M3DFL_SIM_SIMULATOR_H_
