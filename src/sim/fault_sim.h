// Event-driven fault simulator.
//
// Re-evaluates only the fan-out cone of the injected fault(s) on top of the
// good-machine results of a LocSimulator run, word-parallel over 64
// patterns.  Versioned scratch arrays make repeated fault injections
// allocation-free, which matters because ATPG coverage and per-candidate
// diagnosis both simulate thousands of faults per design.
//
// Delay faults (the paper's model) corrupt only the at-speed capture cycle,
// so one cone over the V2 evaluation suffices.  Static stuck-at faults (the
// library's extension) corrupt the launch cycle too: the simulator then also
// re-evaluates the V1 cone, re-launches the affected flops, and extends the
// capture-cycle cone through their Q fan-out — exact two-cycle semantics.
//
// Multi-fault injection (paper Sec. VII-A: 2-5 TDFs in one tier) is
// supported by merging cones; each fault's behaviour is applied to the value
// actually arriving at its site, so upstream fault effects compose
// correctly.
#ifndef M3DFL_SIM_FAULT_SIM_H_
#define M3DFL_SIM_FAULT_SIM_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "m3d/miv.h"
#include "netlist/netlist.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace m3dfl {

// One failing tester observation: pattern index plus the observation point
// (a scan cell by flop index, or a primary output by PO index).
struct Observation {
  std::int32_t pattern = 0;
  bool at_po = false;
  std::int32_t index = 0;  // flop index or PO index

  friend bool operator==(const Observation&, const Observation&) = default;
  friend auto operator<=>(const Observation&, const Observation&) = default;
};

class FaultSimulator {
 public:
  // `mivs` may be null if no MIV faults will be simulated.
  FaultSimulator(const Netlist& netlist, const LocSimulator& good,
                 const MivMap* mivs = nullptr);

  // All failing observations of the fault (set) across all patterns, sorted
  // by (pattern, po-flag, index).
  std::vector<Observation> simulate(const Fault& fault);
  std::vector<Observation> simulate(std::span<const Fault> faults);

  // True iff any pattern detects the fault; early-exits on first detection.
  bool detects(const Fault& fault);

 private:
  struct Cone {
    bool has_static = false;
    // Capture-cycle evaluation schedule (topo-sorted).  For static faults
    // this includes the launch-affected flops' Q fan-out.
    std::vector<GateId> gates;
    // Launch-cycle schedule (only populated for static faults).
    std::vector<GateId> gates_v1;
    std::vector<std::int32_t> flops;       // terminal flop indices
    std::vector<std::int32_t> pos;         // terminal PO indices
    // Flops whose launch capture may change (static faults): re-launched
    // from the faulty V1 before the capture-cycle evaluation.
    std::vector<std::int32_t> launch_flops;
    // Stem overrides by net; applied after the driver's evaluation, or as a
    // seed when the driver is outside the cone.
    std::unordered_map<NetId, FaultType> stems;
    std::vector<NetId> seed_stems;         // capture-cycle seeds
    std::vector<NetId> seed_stems_v1;      // launch-cycle seeds (static only)
    // Branch overrides keyed by global input-pin id.
    std::unordered_map<PinId, FaultType> branches;
  };

  Cone build_cone(std::span<const Fault> faults) const;
  // Simulates one pattern word; appends failing observations.  Returns true
  // if any failure was found (for detects()).
  bool simulate_word(const Cone& cone, std::int32_t w,
                     std::vector<Observation>* out);

  // Launch-cycle faulty value of a net (falls back to the good V1).
  std::uint64_t value_v1(NetId net, std::int32_t w) const {
    return stamp1_[static_cast<std::size_t>(net)] == version_
               ? val1_[static_cast<std::size_t>(net)]
               : good_->v1(net, w);
  }
  void set_value_v1(NetId net, std::uint64_t v) {
    stamp1_[static_cast<std::size_t>(net)] = version_;
    val1_[static_cast<std::size_t>(net)] = v;
  }
  // Capture-cycle faulty value of a net (falls back to the good V2).
  std::uint64_t value(NetId net, std::int32_t w) const {
    return stamp_[static_cast<std::size_t>(net)] == version_
               ? val_[static_cast<std::size_t>(net)]
               : good_->v2(net, w);
  }
  void set_value(NetId net, std::uint64_t v) {
    stamp_[static_cast<std::size_t>(net)] = version_;
    val_[static_cast<std::size_t>(net)] = v;
  }

  const Netlist* netlist_;
  const LocSimulator* good_;
  const MivMap* mivs_;
  std::vector<std::int32_t> topo_pos_;     // gate -> topo index (-1 non-comb)
  std::vector<std::int32_t> flop_index_;   // gate -> flop index (-1 otherwise)
  std::vector<std::int32_t> po_index_;     // gate -> PO index (-1 otherwise)
  // Versioned scratch values for the faulty machine (V2 and V1 planes).
  std::vector<std::uint64_t> val_;
  std::vector<std::uint64_t> stamp_;
  std::vector<std::uint64_t> val1_;
  std::vector<std::uint64_t> stamp1_;
  std::uint64_t version_ = 0;
};

}  // namespace m3dfl

#endif  // M3DFL_SIM_FAULT_SIM_H_
