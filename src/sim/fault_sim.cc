#include "sim/fault_sim.h"

#include <algorithm>
#include <bit>
#include <queue>

namespace m3dfl {

FaultSimulator::FaultSimulator(const Netlist& netlist,
                               const LocSimulator& good, const MivMap* mivs)
    : netlist_(&netlist), good_(&good), mivs_(mivs) {
  M3DFL_REQUIRE(&good.netlist() == &netlist,
                "good-machine results belong to a different netlist");
  const auto n = static_cast<std::size_t>(netlist.num_gates());
  topo_pos_.assign(n, -1);
  for (std::size_t i = 0; i < netlist.topo_order().size(); ++i) {
    topo_pos_[static_cast<std::size_t>(netlist.topo_order()[i])] =
        static_cast<std::int32_t>(i);
  }
  flop_index_.assign(n, -1);
  for (std::size_t i = 0; i < netlist.flops().size(); ++i) {
    flop_index_[static_cast<std::size_t>(netlist.flops()[i])] =
        static_cast<std::int32_t>(i);
  }
  po_index_.assign(n, -1);
  for (std::size_t i = 0; i < netlist.primary_outputs().size(); ++i) {
    po_index_[static_cast<std::size_t>(netlist.primary_outputs()[i])] =
        static_cast<std::int32_t>(i);
  }
  val_.assign(static_cast<std::size_t>(netlist.num_nets()), 0);
  stamp_.assign(static_cast<std::size_t>(netlist.num_nets()), 0);
  val1_.assign(static_cast<std::size_t>(netlist.num_nets()), 0);
  stamp1_.assign(static_cast<std::size_t>(netlist.num_nets()), 0);
}

FaultSimulator::Cone FaultSimulator::build_cone(
    std::span<const Fault> faults) const {
  const Netlist& nl = *netlist_;
  Cone cone;
  std::vector<char> gate_seen(static_cast<std::size_t>(nl.num_gates()), 0);
  std::vector<char> flop_seen(nl.flops().size(), 0);
  std::vector<char> po_seen(nl.primary_outputs().size(), 0);
  std::queue<GateId> frontier;

  const auto touch_gate = [&](GateId g) {
    if (gate_seen[static_cast<std::size_t>(g)]) return;
    gate_seen[static_cast<std::size_t>(g)] = 1;
    const Gate& gate = nl.gate(g);
    if (is_combinational(gate.type)) {
      frontier.push(g);
    } else if (gate.type == GateType::kScanFlop) {
      const std::int32_t fi = flop_index_[static_cast<std::size_t>(g)];
      if (!flop_seen[static_cast<std::size_t>(fi)]) {
        flop_seen[static_cast<std::size_t>(fi)] = 1;
        cone.flops.push_back(fi);
      }
    } else if (gate.type == GateType::kPrimaryOutput) {
      const std::int32_t pi = po_index_[static_cast<std::size_t>(g)];
      if (!po_seen[static_cast<std::size_t>(pi)]) {
        po_seen[static_cast<std::size_t>(pi)] = 1;
        cone.pos.push_back(pi);
      }
    }
  };
  const auto drain = [&] {
    while (!frontier.empty()) {
      const GateId g = frontier.front();
      frontier.pop();
      cone.gates.push_back(g);
      const NetId out = nl.gate(g).fanout;
      for (const PinRef& sink : nl.net(out).sinks) touch_gate(sink.gate);
    }
  };

  for (const Fault& f : faults) {
    cone.has_static = cone.has_static || f.is_static();
    if (f.is_miv()) {
      M3DFL_REQUIRE(mivs_ != nullptr,
                    "MIV fault simulated without an MIV map");
      const Miv& miv = mivs_->miv(f.miv);
      for (const PinRef& sink : miv.far_sinks) {
        cone.branches[nl.pin_id(sink)] = FaultType::kMivDelay;
        touch_gate(sink.gate);
      }
      continue;
    }
    const PinRef ref = nl.pin_ref(f.pin);
    if (ref.is_output()) {
      const NetId net = nl.gate(ref.gate).fanout;
      M3DFL_ASSERT(net != kNullNet);
      cone.stems.emplace(net, f.type);
      for (const PinRef& sink : nl.net(net).sinks) touch_gate(sink.gate);
    } else {
      cone.branches[f.pin] = f.type;
      touch_gate(ref.gate);
    }
  }
  drain();
  // Gates reachable in the launch-cycle cone (before the static extension
  // below): stem overrides on nets driven from outside this set must be
  // seeded in the launch cycle.
  const std::vector<char> seen_v1 = gate_seen;

  // Static faults corrupt the launch state: the flops reached in the V1 cone
  // re-launch from faulty values, so the capture-cycle cone extends through
  // their Q fan-out.  (Flops discovered during this extension capture at V2
  // only — their launch is unaffected — so the extension runs once.)
  if (cone.has_static) {
    cone.gates_v1 = cone.gates;
    cone.launch_flops = cone.flops;
    for (std::int32_t fi : cone.launch_flops) {
      const GateId ff = nl.flops()[static_cast<std::size_t>(fi)];
      const NetId qnet = nl.gate(ff).fanout;
      if (qnet == kNullNet) continue;
      for (const PinRef& sink : nl.net(qnet).sinks) touch_gate(sink.gate);
    }
    drain();
  }

  const auto by_topo = [&](GateId a, GateId b) {
    return topo_pos_[static_cast<std::size_t>(a)] <
           topo_pos_[static_cast<std::size_t>(b)];
  };
  std::sort(cone.gates.begin(), cone.gates.end(), by_topo);
  std::sort(cone.gates_v1.begin(), cone.gates_v1.end(), by_topo);

  // Stems whose driver is not re-evaluated in a cycle's schedule must be
  // applied as seed values for that cycle.  The two cycles differ: the
  // static extension can pull a stem's driver into the capture-cycle
  // schedule (feedback through a re-launched flop) while the launch cycle
  // still needs the seed.
  for (const auto& [net, type] : cone.stems) {
    (void)type;
    const GateId driver = nl.net(net).driver;
    const bool comb = is_combinational(nl.gate(driver).type);
    if (!gate_seen[static_cast<std::size_t>(driver)] || !comb) {
      cone.seed_stems.push_back(net);
    }
    if (!seen_v1[static_cast<std::size_t>(driver)] || !comb) {
      cone.seed_stems_v1.push_back(net);
    }
  }
  return cone;
}

bool FaultSimulator::simulate_word(const Cone& cone, std::int32_t w,
                                   std::vector<Observation>* out) {
  const Netlist& nl = *netlist_;
  ++version_;
  std::uint64_t inputs[8];

  // ---- Launch cycle (static faults only) -----------------------------------
  if (cone.has_static) {
    for (NetId net : cone.seed_stems_v1) {
      const FaultType type = cone.stems.at(net);
      if (!is_static_fault(type)) continue;
      const std::uint64_t cur = good_->v1(net, w);
      const std::uint64_t f = faulty_value(type, cur, cur);
      if (f != cur) set_value_v1(net, f);
    }
    for (GateId g : cone.gates_v1) {
      const Gate& gate = nl.gate(g);
      const std::size_t k = gate.fanin.size();
      M3DFL_ASSERT(k <= 8);
      for (std::size_t i = 0; i < k; ++i) {
        const NetId net = gate.fanin[i];
        std::uint64_t v = value_v1(net, w);
        if (!cone.branches.empty()) {
          const auto it = cone.branches.find(
              nl.input_pin(g, static_cast<std::int32_t>(i)));
          if (it != cone.branches.end() && is_static_fault(it->second)) {
            v = faulty_value(it->second, v, v);
          }
        }
        inputs[i] = v;
      }
      std::uint64_t outv =
          eval_gate(gate.type, std::span<const std::uint64_t>(inputs, k));
      const NetId out_net = gate.fanout;
      const auto stem_it = cone.stems.find(out_net);
      if (stem_it != cone.stems.end() && is_static_fault(stem_it->second)) {
        outv = faulty_value(stem_it->second, outv, outv);
      }
      if (outv != good_->v1(out_net, w)) set_value_v1(out_net, outv);
    }
    // Re-launch the affected flops: their Q nets carry the faulty captured
    // values through the at-speed cycle.
    for (std::int32_t fi : cone.launch_flops) {
      const GateId ff = nl.flops()[static_cast<std::size_t>(fi)];
      const NetId dnet = nl.gate(ff).fanin[0];
      std::uint64_t v = value_v1(dnet, w);
      if (!cone.branches.empty()) {
        const auto it = cone.branches.find(nl.input_pin(ff, 0));
        if (it != cone.branches.end() && is_static_fault(it->second)) {
          v = faulty_value(it->second, v, v);
        }
      }
      const NetId qnet = nl.gate(ff).fanout;
      if (qnet != kNullNet && v != good_->v2(qnet, w)) {
        // Good launch state == good v1 of the D net == good v2 of the Q net.
        set_value(qnet, v);
      }
    }
  }

  // ---- At-speed capture cycle ----------------------------------------------
  for (NetId net : cone.seed_stems) {
    const FaultType type = cone.stems.at(net);
    const std::uint64_t cur = value(net, w);
    const std::uint64_t f = faulty_value(type, value_v1(net, w), cur);
    if (f != cur) set_value(net, f);
  }

  for (GateId g : cone.gates) {
    const Gate& gate = nl.gate(g);
    const std::size_t k = gate.fanin.size();
    M3DFL_ASSERT(k <= 8);
    for (std::size_t i = 0; i < k; ++i) {
      const NetId net = gate.fanin[i];
      std::uint64_t v = value(net, w);
      if (!cone.branches.empty()) {
        const auto it =
            cone.branches.find(nl.input_pin(g, static_cast<std::int32_t>(i)));
        if (it != cone.branches.end()) {
          v = faulty_value(it->second, value_v1(net, w), v);
        }
      }
      inputs[i] = v;
    }
    std::uint64_t outv =
        eval_gate(gate.type, std::span<const std::uint64_t>(inputs, k));
    const NetId out_net = gate.fanout;
    const auto stem_it = cone.stems.find(out_net);
    if (stem_it != cone.stems.end()) {
      outv = faulty_value(stem_it->second, value_v1(out_net, w), outv);
    }
    if (outv != good_->v2(out_net, w)) {
      set_value(out_net, outv);
    } else if (stamp_[static_cast<std::size_t>(out_net)] == version_) {
      // A launch-perturbed Q value may have seeded this net; the driver's
      // re-evaluation settles it back to the good value.
      set_value(out_net, outv);
    }
  }

  const std::uint64_t mask = valid_mask(good_->num_patterns(), w);
  bool any = false;
  const auto emit = [&](std::uint64_t diff, bool at_po, std::int32_t index) {
    diff &= mask;
    if (diff == 0) return;
    any = true;
    if (out == nullptr) return;
    while (diff != 0) {
      const int b = std::countr_zero(diff);
      diff &= diff - 1;
      out->push_back(Observation{w * kWordBits + b, at_po, index});
    }
  };

  for (std::int32_t fi : cone.flops) {
    const GateId g = nl.flops()[static_cast<std::size_t>(fi)];
    const NetId dnet = nl.gate(g).fanin[0];
    std::uint64_t v = value(dnet, w);
    if (!cone.branches.empty()) {
      const auto it = cone.branches.find(nl.input_pin(g, 0));
      if (it != cone.branches.end()) {
        v = faulty_value(it->second, value_v1(dnet, w), v);
      }
    }
    emit(v ^ good_->captured(fi, w), /*at_po=*/false, fi);
  }
  for (std::int32_t pi : cone.pos) {
    const GateId g = nl.primary_outputs()[static_cast<std::size_t>(pi)];
    const NetId onet = nl.gate(g).fanin[0];
    std::uint64_t v = value(onet, w);
    if (!cone.branches.empty()) {
      const auto it = cone.branches.find(nl.input_pin(g, 0));
      if (it != cone.branches.end()) {
        v = faulty_value(it->second, value_v1(onet, w), v);
      }
    }
    emit(v ^ good_->po_value(pi, w), /*at_po=*/true, pi);
  }
  return any;
}

std::vector<Observation> FaultSimulator::simulate(const Fault& fault) {
  return simulate(std::span<const Fault>(&fault, 1));
}

std::vector<Observation> FaultSimulator::simulate(
    std::span<const Fault> faults) {
  const Cone cone = build_cone(faults);
  std::vector<Observation> out;
  for (std::int32_t w = 0; w < good_->num_words(); ++w) {
    simulate_word(cone, w, &out);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool FaultSimulator::detects(const Fault& fault) {
  const Cone cone = build_cone(std::span<const Fault>(&fault, 1));
  for (std::int32_t w = 0; w < good_->num_words(); ++w) {
    if (simulate_word(cone, w, nullptr)) return true;
  }
  return false;
}

}  // namespace m3dfl
