// Netlist serialization.
//
// Two formats:
//  * MNL ("m3dfl netlist") — a line-oriented structural format with a full
//    round-trip (write_mnl / read_mnl); used for persisting generated
//    benchmarks and in tests.
//  * Structural Verilog — write-only export so generated designs can be
//    inspected with standard EDA viewers.
#ifndef M3DFL_NETLIST_VERILOG_IO_H_
#define M3DFL_NETLIST_VERILOG_IO_H_

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"
#include "util/limits.h"

namespace m3dfl {

// Serializes a finalized netlist in MNL format.
void write_mnl(const Netlist& netlist, std::ostream& os);
std::string to_mnl(const Netlist& netlist);

// Parses MNL text back into a finalized netlist; throws m3dfl::Error on
// malformed input.  `limits` bounds adversarial-but-well-formed input:
// line length, tokens per line, gate/net counts, and per-gate fanin are
// all enforced with line-cited "limit exceeded" diagnostics, and a net id
// is validated against max_nets *before* any table is sized by it.
Netlist read_mnl(std::istream& is, const ParseLimits& limits = {});
Netlist from_mnl(const std::string& text, const ParseLimits& limits = {});

// Exports a finalized netlist as structural Verilog.
void write_verilog(const Netlist& netlist, std::ostream& os);
std::string to_verilog(const Netlist& netlist);

}  // namespace m3dfl

#endif  // M3DFL_NETLIST_VERILOG_IO_H_
