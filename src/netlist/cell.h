// Standard-cell model: the gate types available to netlists.
//
// The library mirrors a small combinational subset of an industrial standard
// cell library (Nangate-45-like): buffers/inverters, 2..4-input basic gates,
// a 2:1 mux, and a scan D flip-flop, plus pseudo-cells for primary ports.
// Gate evaluation is word-parallel: one std::uint64_t carries the same signal
// for 64 independent test patterns, which is the core speed trick of the
// fault simulator.
#ifndef M3DFL_NETLIST_CELL_H_
#define M3DFL_NETLIST_CELL_H_

#include <cstdint>
#include <span>
#include <string>

namespace m3dfl {

// Gate/cell types.  kPrimaryInput/kPrimaryOutput are pseudo-cells modelling
// the module ports; kScanFlop is the only sequential cell (full-scan design).
enum class GateType : std::uint8_t {
  kPrimaryInput,
  kPrimaryOutput,
  kBuf,
  kInv,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kMux,  // inputs: [sel, a, b]; output = sel ? b : a
  kScanFlop,
};

// Number of distinct GateType values.
inline constexpr int kNumGateTypes = 12;

// Human-readable cell name, e.g. "NAND".
std::string_view gate_type_name(GateType type);

// Parses a cell name (optionally suffixed with fan-in count, e.g. "NAND3")
// back to a GateType; throws m3dfl::Error for unknown names.
GateType parse_gate_type(std::string_view name);

// Inclusive fan-in bounds for a gate type.
int min_fanin(GateType type);
int max_fanin(GateType type);

// True for cells that drive a net (everything except kPrimaryOutput).
bool has_output(GateType type);

// True for cells evaluated by the combinational simulator (excludes ports
// and flops, whose values are injected as sources / captured as sinks).
bool is_combinational(GateType type);

// Word-parallel evaluation of a combinational cell over 64 patterns.
// `inputs` holds one word per fan-in pin, in pin order.
std::uint64_t eval_gate(GateType type, std::span<const std::uint64_t> inputs);

// Scalar convenience wrapper used by tests: evaluates on single-bit inputs.
bool eval_gate_scalar(GateType type, std::span<const bool> inputs);

}  // namespace m3dfl

#endif  // M3DFL_NETLIST_CELL_H_
