#include "netlist/netlist.h"

#include <algorithm>
#include <queue>

namespace m3dfl {

GateId Netlist::add_gate(GateType type, std::string name) {
  M3DFL_REQUIRE(!finalized_, "cannot add gates to a finalized netlist");
  Gate g;
  g.type = type;
  g.name = std::move(name);
  gates_.push_back(std::move(g));
  return num_gates() - 1;
}

NetId Netlist::add_net(std::string name) {
  M3DFL_REQUIRE(!finalized_, "cannot add nets to a finalized netlist");
  Net n;
  n.name = std::move(name);
  nets_.push_back(std::move(n));
  return num_nets() - 1;
}

void Netlist::set_output(GateId gate, NetId net) {
  M3DFL_REQUIRE(!finalized_, "cannot rewire a finalized netlist");
  Gate& g = gates_[check_gate(gate)];
  Net& n = nets_[check_net(net)];
  M3DFL_REQUIRE(has_output(g.type), "gate type has no output pin");
  M3DFL_REQUIRE(g.fanout == kNullNet, "gate already drives a net");
  M3DFL_REQUIRE(n.driver == kNullGate, "net already has a driver");
  g.fanout = net;
  n.driver = gate;
}

void Netlist::connect_input(GateId gate, NetId net) {
  M3DFL_REQUIRE(!finalized_, "cannot rewire a finalized netlist");
  Gate& g = gates_[check_gate(gate)];
  check_net(net);
  M3DFL_REQUIRE(static_cast<int>(g.fanin.size()) < max_fanin(g.type),
                "too many input connections for gate type");
  g.fanin.push_back(net);
}

void Netlist::reconnect_input(GateId gate, std::int32_t input, NetId net) {
  M3DFL_REQUIRE(!finalized_, "cannot rewire a finalized netlist");
  Gate& g = gates_[check_gate(gate)];
  check_net(net);
  M3DFL_REQUIRE(input >= 0 && input < static_cast<int>(g.fanin.size()),
                "input pin index out of range");
  g.fanin[static_cast<std::size_t>(input)] = net;
}

void Netlist::definalize() {
  finalized_ = false;
  pis_.clear();
  pos_.clear();
  flops_.clear();
  topo_.clear();
  levels_.clear();
  pin_offset_.clear();
  num_pins_ = 0;
  max_level_ = 0;
  for (Net& n : nets_) n.sinks.clear();
}

void Netlist::finalize() {
  M3DFL_REQUIRE(!finalized_, "netlist already finalized");
  validate();
  build_sinks();
  build_topo();
  build_pins();
  finalized_ = true;
}

void Netlist::validate() const {
  for (GateId id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[static_cast<std::size_t>(id)];
    const int fanin = static_cast<int>(g.fanin.size());
    if (fanin < min_fanin(g.type) || fanin > max_fanin(g.type)) {
      throw Error("gate " + std::to_string(id) + " (" +
                  std::string(gate_type_name(g.type)) + ") has invalid fan-in " +
                  std::to_string(fanin));
    }
    if (has_output(g.type) && g.fanout == kNullNet) {
      throw Error("gate " + std::to_string(id) + " has no output net");
    }
    for (NetId n : g.fanin) {
      if (nets_[check_net(n)].driver == kNullGate) {
        throw Error("net " + std::to_string(n) + " read by gate " +
                    std::to_string(id) + " has no driver");
      }
    }
  }
}

void Netlist::build_sinks() {
  for (Net& n : nets_) n.sinks.clear();
  for (GateId id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[static_cast<std::size_t>(id)];
    for (std::size_t i = 0; i < g.fanin.size(); ++i) {
      nets_[static_cast<std::size_t>(g.fanin[i])].sinks.push_back(
          PinRef{id, static_cast<std::int32_t>(i)});
    }
  }
}

void Netlist::build_topo() {
  pis_.clear();
  pos_.clear();
  flops_.clear();
  topo_.clear();
  levels_.assign(gates_.size(), 0);

  // Classify port / state gates.
  for (GateId id = 0; id < num_gates(); ++id) {
    switch (gates_[static_cast<std::size_t>(id)].type) {
      case GateType::kPrimaryInput: pis_.push_back(id); break;
      case GateType::kPrimaryOutput: pos_.push_back(id); break;
      case GateType::kScanFlop: flops_.push_back(id); break;
      default: break;
    }
  }

  // Kahn's algorithm over combinational gates.  Flop Q outputs and primary
  // inputs are cycle-breaking sources: a fan-in net driven by a flop or PI
  // contributes no ordering constraint.
  std::vector<std::int32_t> indeg(gates_.size(), 0);
  std::queue<GateId> ready;
  std::size_t num_comb = 0;
  for (GateId id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[static_cast<std::size_t>(id)];
    if (!is_combinational(g.type)) continue;
    ++num_comb;
    std::int32_t deg = 0;
    for (NetId n : g.fanin) {
      const GateId drv = nets_[static_cast<std::size_t>(n)].driver;
      if (is_combinational(gates_[static_cast<std::size_t>(drv)].type)) ++deg;
    }
    indeg[static_cast<std::size_t>(id)] = deg;
    if (deg == 0) ready.push(id);
  }

  topo_.reserve(num_comb);
  while (!ready.empty()) {
    const GateId id = ready.front();
    ready.pop();
    topo_.push_back(id);
    const Gate& g = gates_[static_cast<std::size_t>(id)];

    // Level: one past the deepest fan-in driver.
    std::int32_t lvl = 0;
    for (NetId n : g.fanin) {
      const GateId drv = nets_[static_cast<std::size_t>(n)].driver;
      lvl = std::max(lvl, levels_[static_cast<std::size_t>(drv)] + 1);
    }
    levels_[static_cast<std::size_t>(id)] = lvl;

    if (g.fanout == kNullNet) continue;
    for (const PinRef& sink : nets_[static_cast<std::size_t>(g.fanout)].sinks) {
      const Gate& sg = gates_[static_cast<std::size_t>(sink.gate)];
      if (!is_combinational(sg.type)) continue;
      if (--indeg[static_cast<std::size_t>(sink.gate)] == 0) {
        ready.push(sink.gate);
      }
    }
  }
  if (topo_.size() != num_comb) {
    throw Error("netlist contains a combinational loop");
  }

  // Levels for sinks (POs, flop D pins) for completeness.
  max_level_ = 0;
  for (GateId id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[static_cast<std::size_t>(id)];
    if (is_combinational(g.type) || g.fanin.empty()) {
      max_level_ = std::max(max_level_, levels_[static_cast<std::size_t>(id)]);
      continue;
    }
    std::int32_t lvl = 0;
    for (NetId n : g.fanin) {
      const GateId drv = nets_[static_cast<std::size_t>(n)].driver;
      lvl = std::max(lvl, levels_[static_cast<std::size_t>(drv)] + 1);
    }
    levels_[static_cast<std::size_t>(id)] = lvl;
    max_level_ = std::max(max_level_, lvl);
  }
}

void Netlist::build_pins() {
  pin_offset_.assign(gates_.size() + 1, 0);
  PinId next = 0;
  for (GateId id = 0; id < num_gates(); ++id) {
    pin_offset_[static_cast<std::size_t>(id)] = next;
    const Gate& g = gates_[static_cast<std::size_t>(id)];
    next += static_cast<PinId>((has_output(g.type) ? 1 : 0) + g.fanin.size());
  }
  pin_offset_[gates_.size()] = next;
  num_pins_ = next;
}

std::int32_t Netlist::num_logic_gates() const {
  std::int32_t n = 0;
  for (const Gate& g : gates_) {
    if (g.type != GateType::kPrimaryInput &&
        g.type != GateType::kPrimaryOutput) {
      ++n;
    }
  }
  return n;
}

PinId Netlist::output_pin(GateId gate) const {
  require_finalized();
  const Gate& g = gates_[check_gate(gate)];
  M3DFL_ASSERT(has_output(g.type));
  return pin_offset_[static_cast<std::size_t>(gate)];
}

PinId Netlist::input_pin(GateId gate, std::int32_t index) const {
  require_finalized();
  const Gate& g = gates_[check_gate(gate)];
  M3DFL_ASSERT(index >= 0 && index < static_cast<int>(g.fanin.size()));
  return pin_offset_[static_cast<std::size_t>(gate)] +
         (has_output(g.type) ? 1 : 0) + index;
}

PinId Netlist::pin_id(const PinRef& ref) const {
  return ref.is_output() ? output_pin(ref.gate)
                         : input_pin(ref.gate, ref.input);
}

PinRef Netlist::pin_ref(PinId pin) const {
  require_finalized();
  M3DFL_ASSERT(pin >= 0 && pin < num_pins_);
  // Binary search for the owning gate.
  const auto it = std::upper_bound(pin_offset_.begin(), pin_offset_.end(), pin);
  const GateId gate = static_cast<GateId>(it - pin_offset_.begin()) - 1;
  const Gate& g = gates_[check_gate(gate)];
  std::int32_t local = pin - pin_offset_[static_cast<std::size_t>(gate)];
  if (has_output(g.type)) {
    if (local == 0) return PinRef{gate, kOutputPin};
    --local;
  }
  return PinRef{gate, local};
}

NetId Netlist::pin_net(PinId pin) const {
  const PinRef ref = pin_ref(pin);
  const Gate& g = gates_[check_gate(ref.gate)];
  return ref.is_output() ? g.fanout
                         : g.fanin[static_cast<std::size_t>(ref.input)];
}

std::string Netlist::pin_name(PinId pin) const {
  const PinRef ref = pin_ref(pin);
  const Gate& g = gates_[check_gate(ref.gate)];
  const std::string base =
      g.name.empty() ? "g" + std::to_string(ref.gate) : g.name;
  if (ref.is_output()) return base + ".Y";
  return base + ".A" + std::to_string(ref.input);
}

}  // namespace m3dfl
