#include "netlist/verilog_io.h"

#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/error.h"

namespace m3dfl {

// MNL grammar (one record per line, '#' comments):
//   mnl 1
//   design <name>
//   gate <id> <TYPE> <name> out=<net|-> in=<net,net,...|->
//   end
void write_mnl(const Netlist& netlist, std::ostream& os) {
  M3DFL_REQUIRE(netlist.finalized(), "write_mnl requires a finalized netlist");
  os << "mnl 1\n";
  os << "design " << (netlist.name().empty() ? "top" : netlist.name()) << "\n";
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const Gate& gate = netlist.gate(g);
    os << "gate " << g << " " << gate_type_name(gate.type) << " "
       << (gate.name.empty() ? "g" + std::to_string(g) : gate.name) << " out=";
    if (gate.fanout == kNullNet) {
      os << "-";
    } else {
      os << gate.fanout;
    }
    os << " in=";
    if (gate.fanin.empty()) {
      os << "-";
    } else {
      for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
        os << (i ? "," : "") << gate.fanin[i];
      }
    }
    os << "\n";
  }
  os << "end\n";
}

std::string to_mnl(const Netlist& netlist) {
  std::ostringstream os;
  write_mnl(netlist, os);
  return os.str();
}

namespace {

// All parse diagnostics cite the 1-based line, so a malformed netlist file
// is debuggable from the message alone (same contract as diag/log_io).
[[noreturn]] void parse_fail(int line_no, const std::string& what) {
  throw Error("MNL line " + std::to_string(line_no) + ": " + what);
}

std::vector<std::string> split_ws(const std::string& line, int line_no,
                                  const ParseLimits& limits) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (out.size() >= limits.max_tokens_per_line) {
      parse_fail(line_no, limit_exceeded("tokens on one line", out.size() + 1,
                                        limits.max_tokens_per_line));
    }
    out.push_back(tok);
  }
  return out;
}

std::int32_t parse_i32(const std::string& s, int line_no, const char* what) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    // An id past int32 must reject, not wrap: a silently truncated net id
    // would alias an unrelated net and parse garbage into a "valid" netlist.
    if (v < std::numeric_limits<std::int32_t>::min() ||
        v > std::numeric_limits<std::int32_t>::max()) {
      throw std::out_of_range(s);
    }
    return static_cast<std::int32_t>(v);
  } catch (const std::exception&) {
    parse_fail(line_no, std::string("bad ") + what + " '" + s + "'");
  }
}

// bounded_getline + the MNL citation for an over-long line.
bool read_line(std::istream& is, std::string& line, int line_no,
               const ParseLimits& limits) {
  const BoundedLine bl = bounded_getline(is, line, limits.max_line_bytes);
  if (bl.too_long()) {
    parse_fail(line_no + 1,
               limit_exceeded_over("line bytes", limits.max_line_bytes));
  }
  return bl.ok();
}

}  // namespace

Netlist read_mnl(std::istream& is, const ParseLimits& limits) {
  std::string line;
  int line_no = 0;
  // Header, with expected-vs-found so a file of the wrong kind (or a future
  // format version) is reported as such instead of as a generic failure.
  // Comment/blank lines may precede it ('#' comments are part of the
  // grammar, and the corpus fixtures lead with a description).
  {
    std::vector<std::string> toks;
    while (toks.empty()) {
      M3DFL_REQUIRE(read_line(is, line, line_no, limits),
                    "MNL line " + std::to_string(line_no + 1) +
                        ": empty input (expected 'mnl 1' header)");
      ++line_no;
      const auto hash = line.find('#');
      std::string stripped = line;
      if (hash != std::string::npos) stripped.resize(hash);
      toks = split_ws(stripped, line_no, limits);
    }
    if (toks[0] != "mnl") {
      parse_fail(line_no,
                 "not an MNL stream: expected 'mnl 1' header, found '" +
                     line + "'");
    }
    if (toks.size() != 2 || toks[1] != "1") {
      parse_fail(line_no, "unsupported MNL version: expected 1, found '" +
                              (toks.size() > 1 ? toks[1] : "") + "'");
    }
  }

  Netlist nl;
  // Deferred connections: gate id -> (fanout net, fanin nets).  Net ids in
  // the file are dense indices; we materialize nets on first mention.
  std::int32_t max_net = -1;
  struct GateRec {
    GateType type;
    std::string name;
    NetId out;
    std::vector<NetId> in;
  };
  std::vector<GateRec> recs;
  // net -> line of the gate already driving it: two drivers on one net is a
  // short, not a netlist, so it is rejected at parse time.
  std::vector<int> driver_line;
  bool saw_design = false;

  bool saw_end = false;
  while (read_line(is, line, line_no, limits)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto toks = split_ws(line, line_no, limits);
    if (toks.empty()) continue;
    if (toks[0] == "design") {
      if (toks.size() != 2) {
        parse_fail(line_no, "bad design record (expected 'design <name>')");
      }
      if (saw_design) parse_fail(line_no, "duplicate design record");
      saw_design = true;
      nl.set_name(toks[1]);
      continue;
    }
    if (toks[0] == "end") {
      saw_end = true;
      break;
    }
    if (toks[0] != "gate") {
      parse_fail(line_no, "unknown record '" + toks[0] + "'");
    }
    if (toks.size() != 6) {
      parse_fail(line_no, "truncated 'gate' record (expected 6 fields, got " +
                              std::to_string(toks.size()) + ")");
    }
    const std::int32_t id = parse_i32(toks[1], line_no, "gate id");
    if (id != static_cast<std::int32_t>(recs.size())) {
      parse_fail(line_no, "gate ids must be dense and in order: expected " +
                              std::to_string(recs.size()) + ", found " +
                              std::to_string(id));
    }
    if (static_cast<std::int32_t>(recs.size()) >= limits.max_gates) {
      parse_fail(line_no,
                 limit_exceeded("gate count",
                                static_cast<unsigned long long>(recs.size()) + 1,
                                static_cast<unsigned long long>(
                                    limits.max_gates)));
    }
    GateRec rec;
    try {
      rec.type = parse_gate_type(toks[2]);
    } catch (const Error&) {
      parse_fail(line_no, std::string("bad gate type '") + toks[2] + "'");
    }
    rec.name = toks[3];
    if (toks[4].rfind("out=", 0) != 0 || toks[5].rfind("in=", 0) != 0) {
      parse_fail(line_no, "bad out=/in= fields");
    }
    const std::string out_s = toks[4].substr(4);
    rec.out = out_s == "-" ? kNullNet : parse_i32(out_s, line_no, "net id");
    if (rec.out != kNullNet) {
      if (rec.out < 0) {
        parse_fail(line_no, "out-of-range net id " + std::to_string(rec.out));
      }
      // Validate against the policy cap BEFORE the id sizes driver_line (or,
      // later, the net table): one record naming net 2^31-1 must reject
      // here, not allocate a 2-billion-entry vector.
      if (rec.out >= limits.max_nets) {
        parse_fail(line_no,
                   limit_exceeded("net id",
                                  static_cast<unsigned long long>(rec.out),
                                  static_cast<unsigned long long>(
                                      limits.max_nets)));
      }
      max_net = std::max(max_net, rec.out);
      if (static_cast<std::size_t>(rec.out) >= driver_line.size()) {
        driver_line.resize(static_cast<std::size_t>(rec.out) + 1, 0);
      }
      int& owner = driver_line[static_cast<std::size_t>(rec.out)];
      if (owner != 0) {
        parse_fail(line_no, "net " + std::to_string(rec.out) +
                                " already driven by the gate on line " +
                                std::to_string(owner));
      }
      owner = line_no;
    }
    const std::string in_s = toks[5].substr(3);
    if (in_s != "-") {
      std::istringstream iss(in_s);
      std::string item;
      while (std::getline(iss, item, ',')) {
        const NetId n = parse_i32(item, line_no, "net id");
        if (n < 0) {
          parse_fail(line_no, "out-of-range net id " + std::to_string(n));
        }
        if (n >= limits.max_nets) {
          parse_fail(line_no,
                     limit_exceeded("net id",
                                    static_cast<unsigned long long>(n),
                                    static_cast<unsigned long long>(
                                        limits.max_nets)));
        }
        if (rec.in.size() >= limits.max_fanin) {
          parse_fail(line_no, limit_exceeded("gate fanin", rec.in.size() + 1,
                                             limits.max_fanin));
        }
        rec.in.push_back(n);
        max_net = std::max(max_net, n);
      }
    }
    recs.push_back(std::move(rec));
  }
  M3DFL_REQUIRE(saw_end, "MNL: truncated (missing 'end' after line " +
                             std::to_string(line_no) + ")");

  for (std::int32_t n = 0; n <= max_net; ++n) nl.add_net();
  for (const GateRec& rec : recs) {
    const GateId g = nl.add_gate(rec.type, rec.name);
    if (rec.out != kNullNet) nl.set_output(g, rec.out);
    for (NetId n : rec.in) nl.connect_input(g, n);
  }
  nl.finalize();
  return nl;
}

Netlist from_mnl(const std::string& text, const ParseLimits& limits) {
  std::istringstream is(text);
  return read_mnl(is, limits);
}

void write_verilog(const Netlist& netlist, std::ostream& os) {
  M3DFL_REQUIRE(netlist.finalized(),
                "write_verilog requires a finalized netlist");
  const auto net_name = [&](NetId n) {
    const std::string& s = netlist.net(n).name;
    return s.empty() ? "n" + std::to_string(n) : s;
  };
  const auto gate_name = [&](GateId g) {
    const std::string& s = netlist.gate(g).name;
    return s.empty() ? "g" + std::to_string(g) : s;
  };

  os << "module " << (netlist.name().empty() ? "top" : netlist.name()) << " (";
  bool first = true;
  for (GateId g : netlist.primary_inputs()) {
    os << (first ? "" : ", ") << gate_name(g);
    first = false;
  }
  for (GateId g : netlist.primary_outputs()) {
    os << (first ? "" : ", ") << gate_name(g);
    first = false;
  }
  os << ");\n";
  for (GateId g : netlist.primary_inputs()) {
    os << "  input " << gate_name(g) << ";\n";
  }
  for (GateId g : netlist.primary_outputs()) {
    os << "  output " << gate_name(g) << ";\n";
  }
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    os << "  wire " << net_name(n) << ";\n";
  }
  // Port aliases.
  for (GateId g : netlist.primary_inputs()) {
    os << "  assign " << net_name(netlist.gate(g).fanout) << " = "
       << gate_name(g) << ";\n";
  }
  for (GateId g : netlist.primary_outputs()) {
    os << "  assign " << gate_name(g) << " = "
       << net_name(netlist.gate(g).fanin[0]) << ";\n";
  }
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const Gate& gate = netlist.gate(g);
    if (gate.type == GateType::kPrimaryInput ||
        gate.type == GateType::kPrimaryOutput) {
      continue;
    }
    if (gate.type == GateType::kScanFlop) {
      os << "  SDFF " << gate_name(g) << " (.D(" << net_name(gate.fanin[0])
         << "), .Q(" << net_name(gate.fanout) << "));\n";
      continue;
    }
    os << "  " << gate_type_name(gate.type) << gate.fanin.size() << " "
       << gate_name(g) << " (.Y(" << net_name(gate.fanout) << ")";
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      os << ", .A" << i << "(" << net_name(gate.fanin[i]) << ")";
    }
    os << ");\n";
  }
  os << "endmodule\n";
}

std::string to_verilog(const Netlist& netlist) {
  std::ostringstream os;
  write_verilog(netlist, os);
  return os.str();
}

}  // namespace m3dfl
