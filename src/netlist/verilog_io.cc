#include "netlist/verilog_io.h"

#include <ostream>
#include <sstream>
#include <vector>

#include "util/error.h"

namespace m3dfl {

// MNL grammar (one record per line, '#' comments):
//   mnl 1
//   design <name>
//   gate <id> <TYPE> <name> out=<net|-> in=<net,net,...|->
//   end
void write_mnl(const Netlist& netlist, std::ostream& os) {
  M3DFL_REQUIRE(netlist.finalized(), "write_mnl requires a finalized netlist");
  os << "mnl 1\n";
  os << "design " << (netlist.name().empty() ? "top" : netlist.name()) << "\n";
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const Gate& gate = netlist.gate(g);
    os << "gate " << g << " " << gate_type_name(gate.type) << " "
       << (gate.name.empty() ? "g" + std::to_string(g) : gate.name) << " out=";
    if (gate.fanout == kNullNet) {
      os << "-";
    } else {
      os << gate.fanout;
    }
    os << " in=";
    if (gate.fanin.empty()) {
      os << "-";
    } else {
      for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
        os << (i ? "," : "") << gate.fanin[i];
      }
    }
    os << "\n";
  }
  os << "end\n";
}

std::string to_mnl(const Netlist& netlist) {
  std::ostringstream os;
  write_mnl(netlist, os);
  return os.str();
}

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

std::int32_t parse_i32(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const long v = std::stol(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return static_cast<std::int32_t>(v);
  } catch (const std::exception&) {
    throw Error(std::string("MNL parse error: bad ") + what + ": " + s);
  }
}

}  // namespace

Netlist read_mnl(std::istream& is) {
  std::string line;
  // Header.
  M3DFL_REQUIRE(std::getline(is, line) && split_ws(line) ==
                    std::vector<std::string>({"mnl", "1"}),
                "MNL parse error: missing 'mnl 1' header");

  Netlist nl;
  // Deferred connections: gate id -> (fanout net, fanin nets).  Net ids in
  // the file are dense indices; we materialize nets on first mention.
  std::int32_t max_net = -1;
  struct GateRec {
    GateType type;
    std::string name;
    NetId out;
    std::vector<NetId> in;
  };
  std::vector<GateRec> recs;

  bool saw_end = false;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto toks = split_ws(line);
    if (toks.empty()) continue;
    if (toks[0] == "design") {
      M3DFL_REQUIRE(toks.size() == 2, "MNL parse error: bad design line");
      nl.set_name(toks[1]);
      continue;
    }
    if (toks[0] == "end") {
      saw_end = true;
      break;
    }
    M3DFL_REQUIRE(toks[0] == "gate" && toks.size() == 6,
                  "MNL parse error: expected 'gate' record, got: " + line);
    const std::int32_t id = parse_i32(toks[1], "gate id");
    M3DFL_REQUIRE(id == static_cast<std::int32_t>(recs.size()),
                  "MNL parse error: gate ids must be dense and in order");
    GateRec rec;
    rec.type = parse_gate_type(toks[2]);
    rec.name = toks[3];
    M3DFL_REQUIRE(toks[4].rfind("out=", 0) == 0 && toks[5].rfind("in=", 0) == 0,
                  "MNL parse error: bad out=/in= fields");
    const std::string out_s = toks[4].substr(4);
    rec.out = out_s == "-" ? kNullNet : parse_i32(out_s, "net id");
    if (rec.out != kNullNet) max_net = std::max(max_net, rec.out);
    const std::string in_s = toks[5].substr(3);
    if (in_s != "-") {
      std::istringstream iss(in_s);
      std::string item;
      while (std::getline(iss, item, ',')) {
        const NetId n = parse_i32(item, "net id");
        rec.in.push_back(n);
        max_net = std::max(max_net, n);
      }
    }
    recs.push_back(std::move(rec));
  }
  M3DFL_REQUIRE(saw_end, "MNL parse error: missing 'end'");

  for (std::int32_t n = 0; n <= max_net; ++n) nl.add_net();
  for (const GateRec& rec : recs) {
    const GateId g = nl.add_gate(rec.type, rec.name);
    if (rec.out != kNullNet) nl.set_output(g, rec.out);
    for (NetId n : rec.in) nl.connect_input(g, n);
  }
  nl.finalize();
  return nl;
}

Netlist from_mnl(const std::string& text) {
  std::istringstream is(text);
  return read_mnl(is);
}

void write_verilog(const Netlist& netlist, std::ostream& os) {
  M3DFL_REQUIRE(netlist.finalized(),
                "write_verilog requires a finalized netlist");
  const auto net_name = [&](NetId n) {
    const std::string& s = netlist.net(n).name;
    return s.empty() ? "n" + std::to_string(n) : s;
  };
  const auto gate_name = [&](GateId g) {
    const std::string& s = netlist.gate(g).name;
    return s.empty() ? "g" + std::to_string(g) : s;
  };

  os << "module " << (netlist.name().empty() ? "top" : netlist.name()) << " (";
  bool first = true;
  for (GateId g : netlist.primary_inputs()) {
    os << (first ? "" : ", ") << gate_name(g);
    first = false;
  }
  for (GateId g : netlist.primary_outputs()) {
    os << (first ? "" : ", ") << gate_name(g);
    first = false;
  }
  os << ");\n";
  for (GateId g : netlist.primary_inputs()) {
    os << "  input " << gate_name(g) << ";\n";
  }
  for (GateId g : netlist.primary_outputs()) {
    os << "  output " << gate_name(g) << ";\n";
  }
  for (NetId n = 0; n < netlist.num_nets(); ++n) {
    os << "  wire " << net_name(n) << ";\n";
  }
  // Port aliases.
  for (GateId g : netlist.primary_inputs()) {
    os << "  assign " << net_name(netlist.gate(g).fanout) << " = "
       << gate_name(g) << ";\n";
  }
  for (GateId g : netlist.primary_outputs()) {
    os << "  assign " << gate_name(g) << " = "
       << net_name(netlist.gate(g).fanin[0]) << ";\n";
  }
  for (GateId g = 0; g < netlist.num_gates(); ++g) {
    const Gate& gate = netlist.gate(g);
    if (gate.type == GateType::kPrimaryInput ||
        gate.type == GateType::kPrimaryOutput) {
      continue;
    }
    if (gate.type == GateType::kScanFlop) {
      os << "  SDFF " << gate_name(g) << " (.D(" << net_name(gate.fanin[0])
         << "), .Q(" << net_name(gate.fanout) << "));\n";
      continue;
    }
    os << "  " << gate_type_name(gate.type) << gate.fanin.size() << " "
       << gate_name(g) << " (.Y(" << net_name(gate.fanout) << ")";
    for (std::size_t i = 0; i < gate.fanin.size(); ++i) {
      os << ", .A" << i << "(" << net_name(gate.fanin[i]) << ")";
    }
    os << ");\n";
  }
  os << "endmodule\n";
}

std::string to_verilog(const Netlist& netlist) {
  std::ostringstream os;
  write_verilog(netlist, os);
  return os.str();
}

}  // namespace m3dfl
