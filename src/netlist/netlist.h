// Gate-level netlist model.
//
// A Netlist is a flat gate-level circuit: gates (standard cells plus
// primary-port pseudo-cells and scan flops) connected by single-driver nets.
// The design style is full-scan: the only sequential elements are scan flops,
// so one capture cycle is a pure combinational evaluation from sources
// (primary inputs and flop Q outputs) to sinks (primary outputs and flop D
// inputs).
//
// Fault sites follow the paper's convention: *every pin of a gate* is a
// fault site.  Pins are globally enumerated as PinIds (per gate: output pin
// first, then input pins in order), which is the node id space of the
// heterogeneous diagnosis graph.
//
// Construction is two-phase: build with add_gate/add_net/set_output/
// connect_input, then finalize().  finalize() validates the structure,
// derives net sink lists, the combinational topological order, per-gate
// levels, and the pin enumeration.  All queries require a finalized netlist.
#ifndef M3DFL_NETLIST_NETLIST_H_
#define M3DFL_NETLIST_NETLIST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/cell.h"
#include "util/error.h"

namespace m3dfl {

using GateId = std::int32_t;
using NetId = std::int32_t;
using PinId = std::int32_t;

inline constexpr GateId kNullGate = -1;
inline constexpr NetId kNullNet = -1;
inline constexpr PinId kNullPin = -1;

// Input-pin index value denoting a gate's output pin in a PinRef.
inline constexpr std::int32_t kOutputPin = -1;

// A pin addressed structurally: (gate, input index) or (gate, kOutputPin).
struct PinRef {
  GateId gate = kNullGate;
  std::int32_t input = kOutputPin;

  bool is_output() const { return input == kOutputPin; }
  friend bool operator==(const PinRef&, const PinRef&) = default;
};

struct Gate {
  GateType type = GateType::kBuf;
  std::vector<NetId> fanin;   // input nets, in pin order
  NetId fanout = kNullNet;    // output net (kNullNet for primary outputs)
  std::string name;
};

struct Net {
  GateId driver = kNullGate;
  std::vector<PinRef> sinks;  // input pins reading this net (built by finalize)
  std::string name;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // ---- Construction phase -------------------------------------------------

  // Adds a gate of the given type; returns its id.
  GateId add_gate(GateType type, std::string name = {});
  // Adds a net; returns its id.
  NetId add_net(std::string name = {});
  // Declares `gate` the driver of `net`.  A net has exactly one driver and a
  // gate drives exactly one net.
  void set_output(GateId gate, NetId net);
  // Appends `net` as the next input pin of `gate`.
  void connect_input(GateId gate, NetId net);
  // Re-points input pin `input` of `gate` from its current net to `net`.
  // Only valid before finalize(); used by test-point insertion to splice
  // logic into existing connections.
  void reconnect_input(GateId gate, std::int32_t input, NetId net);

  // Validates the netlist and derives all query structures.  Throws
  // m3dfl::Error on arity violations, undriven nets, or combinational loops.
  void finalize();
  bool finalized() const { return finalized_; }

  // Returns the netlist to the construction phase (e.g. for test-point
  // insertion on an already-finalized design); query structures are dropped.
  void definalize();

  // ---- Basic queries ------------------------------------------------------

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::int32_t num_gates() const { return static_cast<std::int32_t>(gates_.size()); }
  std::int32_t num_nets() const { return static_cast<std::int32_t>(nets_.size()); }
  const Gate& gate(GateId id) const { return gates_[check_gate(id)]; }
  const Net& net(NetId id) const { return nets_[check_net(id)]; }

  // Gate count excluding primary-port pseudo-cells (the paper's N_g).
  std::int32_t num_logic_gates() const;

  const std::vector<GateId>& primary_inputs() const { return pis_; }
  const std::vector<GateId>& primary_outputs() const { return pos_; }
  const std::vector<GateId>& flops() const { return flops_; }

  // ---- Topology queries (finalized only) ----------------------------------

  // Combinational gates in evaluation order (every gate after its fan-ins).
  const std::vector<GateId>& topo_order() const { return topo_; }
  // Topological level: 0 for sources (PIs, flop Qs); a gate is one more than
  // its deepest fan-in driver.
  std::int32_t level(GateId id) const { return levels_[check_gate(id)]; }
  std::int32_t max_level() const { return max_level_; }

  // ---- Pin (fault-site) enumeration (finalized only) ----------------------

  PinId num_pins() const { return num_pins_; }
  // Global id of a gate's output pin; gate must have an output.
  PinId output_pin(GateId gate) const;
  // Global id of a gate's `index`-th input pin.
  PinId input_pin(GateId gate, std::int32_t index) const;
  PinId pin_id(const PinRef& ref) const;
  PinRef pin_ref(PinId pin) const;
  bool pin_is_output(PinId pin) const { return pin_ref(pin).is_output(); }
  GateId pin_gate(PinId pin) const { return pin_ref(pin).gate; }
  // Net observed at a pin: fanout net for output pins, fanin net for inputs.
  NetId pin_net(PinId pin) const;
  // Short human-readable pin name like "g42.Y" / "g42.A1" for reports.
  std::string pin_name(PinId pin) const;

 private:
  std::size_t check_gate(GateId id) const {
    M3DFL_ASSERT(id >= 0 && id < num_gates());
    return static_cast<std::size_t>(id);
  }
  std::size_t check_net(NetId id) const {
    M3DFL_ASSERT(id >= 0 && id < num_nets());
    return static_cast<std::size_t>(id);
  }
  void require_finalized() const {
    M3DFL_REQUIRE(finalized_, "netlist must be finalized before this query");
  }
  void validate() const;
  void build_sinks();
  void build_topo();
  void build_pins();

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<Net> nets_;
  bool finalized_ = false;

  // Derived by finalize():
  std::vector<GateId> pis_;
  std::vector<GateId> pos_;
  std::vector<GateId> flops_;
  std::vector<GateId> topo_;
  std::vector<std::int32_t> levels_;
  std::int32_t max_level_ = 0;
  std::vector<PinId> pin_offset_;  // per gate: first global pin id
  PinId num_pins_ = 0;
};

}  // namespace m3dfl

#endif  // M3DFL_NETLIST_NETLIST_H_
