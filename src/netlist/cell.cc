#include "netlist/cell.h"

#include <cctype>

#include "util/error.h"

namespace m3dfl {

std::string_view gate_type_name(GateType type) {
  switch (type) {
    case GateType::kPrimaryInput: return "PI";
    case GateType::kPrimaryOutput: return "PO";
    case GateType::kBuf: return "BUF";
    case GateType::kInv: return "INV";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kMux: return "MUX";
    case GateType::kScanFlop: return "SDFF";
  }
  M3DFL_ASSERT(false);
}

GateType parse_gate_type(std::string_view name) {
  // Strip a trailing fan-in count suffix ("NAND3" -> "NAND").
  std::size_t end = name.size();
  while (end > 0 && std::isdigit(static_cast<unsigned char>(name[end - 1]))) {
    --end;
  }
  const std::string_view base = name.substr(0, end);
  static constexpr GateType kAll[] = {
      GateType::kPrimaryInput, GateType::kPrimaryOutput,
      GateType::kBuf,          GateType::kInv,
      GateType::kAnd,          GateType::kNand,
      GateType::kOr,           GateType::kNor,
      GateType::kXor,          GateType::kXnor,
      GateType::kMux,          GateType::kScanFlop,
  };
  for (GateType t : kAll) {
    if (gate_type_name(t) == base) return t;
  }
  throw Error("unknown cell type: " + std::string(name));
}

int min_fanin(GateType type) {
  switch (type) {
    case GateType::kPrimaryInput: return 0;
    case GateType::kPrimaryOutput: return 1;
    case GateType::kBuf:
    case GateType::kInv: return 1;
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor: return 2;
    case GateType::kMux: return 3;
    case GateType::kScanFlop: return 1;  // D pin only (clock is implicit)
  }
  M3DFL_ASSERT(false);
}

int max_fanin(GateType type) {
  switch (type) {
    case GateType::kPrimaryInput: return 0;
    case GateType::kPrimaryOutput: return 1;
    case GateType::kBuf:
    case GateType::kInv: return 1;
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor: return 4;
    case GateType::kXor:
    case GateType::kXnor: return 2;
    case GateType::kMux: return 3;
    case GateType::kScanFlop: return 1;
  }
  M3DFL_ASSERT(false);
}

bool has_output(GateType type) { return type != GateType::kPrimaryOutput; }

bool is_combinational(GateType type) {
  switch (type) {
    case GateType::kPrimaryInput:
    case GateType::kPrimaryOutput:
    case GateType::kScanFlop:
      return false;
    default:
      return true;
  }
}

std::uint64_t eval_gate(GateType type,
                        std::span<const std::uint64_t> inputs) {
  switch (type) {
    case GateType::kBuf:
      M3DFL_ASSERT(inputs.size() == 1);
      return inputs[0];
    case GateType::kInv:
      M3DFL_ASSERT(inputs.size() == 1);
      return ~inputs[0];
    case GateType::kAnd:
    case GateType::kNand: {
      M3DFL_ASSERT(inputs.size() >= 2);
      std::uint64_t acc = inputs[0];
      for (std::size_t i = 1; i < inputs.size(); ++i) acc &= inputs[i];
      return type == GateType::kAnd ? acc : ~acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      M3DFL_ASSERT(inputs.size() >= 2);
      std::uint64_t acc = inputs[0];
      for (std::size_t i = 1; i < inputs.size(); ++i) acc |= inputs[i];
      return type == GateType::kOr ? acc : ~acc;
    }
    case GateType::kXor:
      M3DFL_ASSERT(inputs.size() == 2);
      return inputs[0] ^ inputs[1];
    case GateType::kXnor:
      M3DFL_ASSERT(inputs.size() == 2);
      return ~(inputs[0] ^ inputs[1]);
    case GateType::kMux:
      M3DFL_ASSERT(inputs.size() == 3);
      // output = sel ? b : a, bitwise over the pattern word.
      return (inputs[0] & inputs[2]) | (~inputs[0] & inputs[1]);
    default:
      // Ports and flops are not combinationally evaluated.
      M3DFL_ASSERT(false);
  }
}

bool eval_gate_scalar(GateType type, std::span<const bool> inputs) {
  std::uint64_t words[8];
  M3DFL_ASSERT(inputs.size() <= 8);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    words[i] = inputs[i] ? ~0ULL : 0ULL;
  }
  return (eval_gate(type, std::span<const std::uint64_t>(words,
                                                         inputs.size())) &
          1ULL) != 0;
}

}  // namespace m3dfl
