#include "netlist/generator.h"

#include <algorithm>
#include <vector>

namespace m3dfl {
namespace {

// Samples a combinational gate type from the mix weights.
GateType sample_type(const std::array<double, kNumGateTypes>& mix, Rng& rng) {
  double total = 0.0;
  for (int t = 0; t < kNumGateTypes; ++t) {
    if (is_combinational(static_cast<GateType>(t))) total += mix[static_cast<std::size_t>(t)];
  }
  M3DFL_REQUIRE(total > 0.0, "generator mix has no combinational weight");
  double x = rng.next_double() * total;
  for (int t = 0; t < kNumGateTypes; ++t) {
    const auto gt = static_cast<GateType>(t);
    if (!is_combinational(gt)) continue;
    x -= mix[static_cast<std::size_t>(t)];
    if (x <= 0.0) return gt;
  }
  return GateType::kNand;
}

// Samples a fan-in width for a variable-arity gate: mostly 2, some 3, few 4.
int sample_fanin(GateType type, Rng& rng) {
  const int lo = min_fanin(type);
  const int hi = max_fanin(type);
  if (lo == hi) return lo;
  const double x = rng.next_double();
  int k = x < 0.60 ? 2 : (x < 0.90 ? 3 : 4);
  return std::clamp(k, lo, hi);
}

}  // namespace

std::array<double, kNumGateTypes> GeneratorConfig::default_mix() {
  std::array<double, kNumGateTypes> mix{};
  mix[static_cast<std::size_t>(GateType::kBuf)] = 0.04;
  mix[static_cast<std::size_t>(GateType::kInv)] = 0.10;
  mix[static_cast<std::size_t>(GateType::kAnd)] = 0.13;
  mix[static_cast<std::size_t>(GateType::kNand)] = 0.17;
  mix[static_cast<std::size_t>(GateType::kOr)] = 0.12;
  mix[static_cast<std::size_t>(GateType::kNor)] = 0.11;
  mix[static_cast<std::size_t>(GateType::kXor)] = 0.08;
  mix[static_cast<std::size_t>(GateType::kXnor)] = 0.05;
  mix[static_cast<std::size_t>(GateType::kMux)] = 0.06;
  return mix;
}

Netlist generate_netlist(const GeneratorConfig& config) {
  M3DFL_REQUIRE(config.num_pis > 0, "generator needs at least one PI");
  M3DFL_REQUIRE(config.num_pos > 0, "generator needs at least one PO");
  M3DFL_REQUIRE(config.num_flops >= 0, "negative flop count");
  M3DFL_REQUIRE(config.num_gates > 0, "generator needs a positive gate count");
  M3DFL_REQUIRE(config.target_depth >= 2, "target depth too small");

  Rng rng(config.seed);
  Netlist nl(config.name);

  // Per-net bookkeeping during elaboration (the netlist itself derives sink
  // lists only at finalize()).
  std::vector<std::int32_t> net_level;
  std::vector<std::int32_t> net_sinks;
  std::vector<NetId> created;  // nets in creation order, for the frontier

  const auto new_source_net = [&](GateId driver) {
    const NetId n = nl.add_net();
    nl.set_output(driver, n);
    net_level.push_back(0);
    net_sinks.push_back(0);
    created.push_back(n);
    return n;
  };

  // Sources: primary inputs and scan-flop Q outputs.
  for (std::int32_t i = 0; i < config.num_pis; ++i) {
    new_source_net(nl.add_gate(GateType::kPrimaryInput,
                               "pi" + std::to_string(i)));
  }
  std::vector<GateId> flops;
  flops.reserve(static_cast<std::size_t>(config.num_flops));
  for (std::int32_t i = 0; i < config.num_flops; ++i) {
    const GateId ff = nl.add_gate(GateType::kScanFlop, "ff" + std::to_string(i));
    new_source_net(ff);
    flops.push_back(ff);
  }

  // Picks a fan-in net for a new gate, respecting locality, the fan-out cap,
  // the depth target, and input-duplication avoidance.
  const auto pick_input = [&](const std::vector<NetId>& taken) -> NetId {
    for (int attempt = 0; attempt < 12; ++attempt) {
      NetId cand;
      const bool local =
          rng.next_bool(config.locality) && attempt < 6;  // widen when stuck
      if (local) {
        const std::size_t window = std::min<std::size_t>(
            created.size(), static_cast<std::size_t>(config.frontier_window));
        cand = created[created.size() - 1 - rng.next_below(window)];
      } else {
        cand = created[rng.next_below(created.size())];
      }
      const auto ci = static_cast<std::size_t>(cand);
      if (net_level[ci] + 1 > config.target_depth) continue;
      if (net_sinks[ci] >= config.max_fanout && attempt < 10) continue;
      if (std::find(taken.begin(), taken.end(), cand) != taken.end()) continue;
      return cand;
    }
    // Fall back to any depth-legal net, ignoring the soft constraints.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const NetId cand = created[rng.next_below(created.size())];
      if (net_level[static_cast<std::size_t>(cand)] + 1 > config.target_depth) {
        continue;
      }
      if (std::find(taken.begin(), taken.end(), cand) == taken.end()) {
        return cand;
      }
    }
    return created[rng.next_below(created.size())];
  };

  // Elaborate the combinational logic.
  bool last_was_chain = false;
  for (std::int32_t i = 0; i < config.num_gates; ++i) {
    GateType type = sample_type(config.mix, rng);
    // Fan-out-free chain extension: continue a just-created buffer/inverter
    // with another one reading its output.
    const bool extend_chain =
        last_was_chain && rng.next_bool(config.chain_extend_prob) &&
        net_level[created.size() - 1] < config.target_depth;
    if (extend_chain) {
      type = rng.next_bool() ? GateType::kBuf : GateType::kInv;
    }
    const int k = extend_chain ? 1 : sample_fanin(type, rng);
    std::vector<NetId> ins;
    ins.reserve(static_cast<std::size_t>(k));
    std::int32_t lvl = 0;
    if (extend_chain) {
      const NetId n = created.back();
      ins.push_back(n);
      lvl = net_level[static_cast<std::size_t>(n)] + 1;
    } else {
      for (int j = 0; j < k; ++j) {
        const NetId n = pick_input(ins);
        ins.push_back(n);
        lvl = std::max(lvl, net_level[static_cast<std::size_t>(n)] + 1);
      }
    }
    last_was_chain =
        type == GateType::kBuf || type == GateType::kInv;
    const GateId g = nl.add_gate(type, "u" + std::to_string(i));
    for (NetId n : ins) {
      nl.connect_input(g, n);
      ++net_sinks[static_cast<std::size_t>(n)];
    }
    const NetId out = nl.add_net();
    nl.set_output(g, out);
    net_level.push_back(lvl);
    net_sinks.push_back(0);
    created.push_back(out);
  }

  // Collapse dangling nets with XOR trees until every remaining dangling net
  // can be consumed by a PO or a flop D pin.  This keeps (almost) every gate
  // structurally observable, which is what gives the benchmarks their high
  // fault coverage (paper Table III reports 97–99%).
  std::vector<NetId> dangling;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (net_sinks[static_cast<std::size_t>(n)] == 0) dangling.push_back(n);
  }
  rng.shuffle(dangling);
  const std::size_t consumers =
      static_cast<std::size_t>(config.num_pos + config.num_flops);
  std::size_t xor_count = 0;
  while (dangling.size() > consumers) {
    const NetId a = dangling.back();
    dangling.pop_back();
    const NetId b = dangling.back();
    dangling.pop_back();
    const GateId g =
        nl.add_gate(GateType::kXor, "xcoll" + std::to_string(xor_count++));
    nl.connect_input(g, a);
    nl.connect_input(g, b);
    const NetId out = nl.add_net();
    nl.set_output(g, out);
    net_level.push_back(std::max(net_level[static_cast<std::size_t>(a)],
                                 net_level[static_cast<std::size_t>(b)]) +
                        1);
    net_sinks.push_back(0);
    net_sinks[static_cast<std::size_t>(a)]++;
    net_sinks[static_cast<std::size_t>(b)]++;
    created.push_back(out);
    dangling.insert(dangling.begin(), out);  // consume later, prefer old nets
  }

  // Consume the remaining dangling nets with POs and flop D pins; any
  // consumer beyond the dangling count observes a random internal net.
  const auto next_consumed = [&]() -> NetId {
    if (!dangling.empty()) {
      const NetId n = dangling.back();
      dangling.pop_back();
      return n;
    }
    return created[rng.next_below(created.size())];
  };
  for (std::int32_t i = 0; i < config.num_pos; ++i) {
    const GateId po = nl.add_gate(GateType::kPrimaryOutput,
                                  "po" + std::to_string(i));
    const NetId n = next_consumed();
    nl.connect_input(po, n);
    ++net_sinks[static_cast<std::size_t>(n)];
  }
  for (GateId ff : flops) {
    const NetId n = next_consumed();
    nl.connect_input(ff, n);
    ++net_sinks[static_cast<std::size_t>(n)];
  }

  nl.finalize();
  return nl;
}

}  // namespace m3dfl
