// Synthetic benchmark generator.
//
// The paper evaluates on four licensed RTL designs (AES, Tate, netcard,
// leon3mp) synthesized with a commercial tool — neither the RTL nor the tool
// is available here.  This generator is the documented substitution
// (DESIGN.md §2): it elaborates deterministic, scan-ready gate-level
// netlists with realistic structural properties — mixed cell types and
// fan-in widths, bounded fan-out, locality-biased connections with
// long-range reconvergent fan-out, and a controllable logic depth.
//
// Diagnosis quality is a function of circuit *topology* (cone sizes,
// reconvergence, observation-point density), not of functional semantics, so
// a topology-realistic synthetic netlist exercises the same code paths as a
// synthesized design.  "Synthesis configurations" are modelled by
// re-elaborating the same profile with a different elaboration seed and
// depth/mix perturbation (Syn-2), mirroring how re-synthesis at a different
// clock frequency restructures logic without changing function.
#ifndef M3DFL_NETLIST_GENERATOR_H_
#define M3DFL_NETLIST_GENERATOR_H_

#include <array>
#include <cstdint>
#include <string>

#include "netlist/netlist.h"
#include "util/rng.h"

namespace m3dfl {

// Parameters controlling circuit elaboration.
struct GeneratorConfig {
  std::string name = "synth";
  std::int32_t num_gates = 1000;  // combinational gate target (pre-collapse)
  std::int32_t num_pis = 32;
  std::int32_t num_pos = 32;
  std::int32_t num_flops = 128;
  std::int32_t target_depth = 18;   // logic depth saturation point
  double locality = 0.75;           // P(draw fan-in from the recent frontier)
  std::int32_t frontier_window = 48;  // size of the recent-output window
  std::int32_t max_fanout = 8;      // soft fan-out cap per net
  // After emitting a buffer/inverter, probability that the next gate extends
  // it into a fan-out-free chain.  Long chains are the textbook source of
  // indistinguishable (equivalent) delay faults; profiles with large chain
  // bias (netcard, leon3mp) produce the coarse diagnosis reports the paper
  // observes on their namesakes.
  double chain_extend_prob = 0.0;
  std::uint64_t seed = 1;

  // Relative cell-mix weights indexed by GateType; defaults approximate a
  // mapped standard-cell distribution.
  std::array<double, kNumGateTypes> mix = default_mix();

  static std::array<double, kNumGateTypes> default_mix();
};

// Elaborates a finalized netlist from the configuration.  Deterministic in
// `config` (including seed).  All nets are driven; dangling logic outputs
// are collapsed into XOR trees feeding primary outputs so that (almost) all
// faults are structurally observable.
Netlist generate_netlist(const GeneratorConfig& config);

}  // namespace m3dfl

#endif  // M3DFL_NETLIST_GENERATOR_H_
