#include "util/stats.h"

#include <cmath>

#include "util/error.h"

namespace m3dfl {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) *
             static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  n_ += other.n_;
}

double mean_of(const std::vector<double>& v) {
  Accumulator acc;
  for (double x : v) acc.add(x);
  return acc.mean();
}

double stddev_of(const std::vector<double>& v) {
  Accumulator acc;
  for (double x : v) acc.add(x);
  return acc.stddev();
}

double correlation(const std::vector<double>& a,
                   const std::vector<double>& b) {
  M3DFL_ASSERT(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const double ma = mean_of(a);
  const double mb = mean_of(b);
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace m3dfl
