#include "util/table.h"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/error.h"

namespace m3dfl {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  M3DFL_REQUIRE(!header_.empty(), "table header must not be empty");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  M3DFL_REQUIRE(row.size() == header_.size(),
                "table row arity must match header");
  rows_.push_back(std::move(row));
}

void TablePrinter::add_separator() { rows_.emplace_back(); }

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }

  const auto hline = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      s += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = hline() + render_row(header_) + hline();
  for (const auto& row : rows_) {
    out += row.empty() ? hline() : render_row(row);
  }
  out += hline();
  return out;
}

void TablePrinter::print() const { std::cout << to_string(); }

std::string TablePrinter::fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string TablePrinter::pct(double ratio, int decimals) {
  return fmt(ratio * 100.0, decimals) + "%";
}

std::string TablePrinter::delta_pct(double ratio, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%+.*f%%)", decimals, ratio * 100.0);
  return buf;
}

}  // namespace m3dfl
