#include "util/artifact.h"

#include <charconv>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/checksum.h"
#include "util/error.h"

namespace m3dfl {
namespace {

std::string hex32(std::uint32_t value) {
  std::ostringstream os;
  os << std::hex << std::setw(8) << std::setfill('0') << value;
  return os.str();
}

[[noreturn]] void artifact_fail(const std::string& source, std::size_t offset,
                                const std::string& what) {
  throw Error(source + ": artifact byte " + std::to_string(offset) + ": " +
              what);
}

// Cursor over the container text; every consumption step knows its offset.
struct Cursor {
  std::string_view text;
  std::size_t offset = 0;
  const std::string& source;

  // Consumes up to the next '\n' (exclusive) and returns it; the newline
  // itself is required — a final line without one is a truncation.
  std::string_view line(const char* what) {
    const std::size_t nl = text.find('\n', offset);
    if (nl == std::string_view::npos) {
      artifact_fail(source, offset,
                    std::string("truncated: missing newline after ") + what);
    }
    std::string_view result = text.substr(offset, nl - offset);
    offset = nl + 1;
    return result;
  }
};

}  // namespace

void write_artifact(std::ostream& os, const std::string& kind,
                    std::string_view payload) {
  os << kArtifactMagic << " " << kArtifactVersion << " " << kind << "\n";
  os << "payload-bytes " << payload.size() << "\n";
  os << payload << "\n";
  os << "crc32 " << hex32(crc32(payload)) << "\n";
  os << "m3dfl-artifact-end\n";
}

std::string artifact_to_string(const std::string& kind,
                               std::string_view payload) {
  std::ostringstream os;
  write_artifact(os, kind, payload);
  return os.str();
}

bool is_artifact(std::string_view text) {
  const std::string prefix = std::string(kArtifactMagic) + " ";
  return text.substr(0, prefix.size()) == prefix;
}

std::string slurp_stream(std::istream& is) {
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string read_artifact(std::string_view text, const std::string& kind,
                          const std::string& source,
                          const ParseLimits& limits) {
  if (text.size() > limits.max_file_bytes) {
    artifact_fail(source, 0,
                  limit_exceeded("container bytes", text.size(),
                                 limits.max_file_bytes));
  }
  Cursor cur{text, 0, source};

  // Header: "m3dfl-artifact <version> <kind>".
  {
    const std::size_t header_offset = cur.offset;
    std::istringstream hs{std::string(cur.line("the artifact header"))};
    std::string magic;
    hs >> magic;
    if (magic != kArtifactMagic) {
      artifact_fail(source, header_offset,
                    "bad magic: expected '" + std::string(kArtifactMagic) +
                        "', found '" + magic + "'");
    }
    std::string version;
    hs >> version;
    if (version != std::to_string(kArtifactVersion)) {
      artifact_fail(
          source, header_offset,
          "unsupported artifact format version: expected " +
              std::to_string(kArtifactVersion) + ", found '" + version +
              "'" +
              (version > std::to_string(kArtifactVersion)
                   ? " (produced by a newer writer; upgrade to load it)"
                   : ""));
    }
    std::string found_kind;
    hs >> found_kind;
    if (found_kind != kind) {
      artifact_fail(source, header_offset,
                    "artifact kind mismatch: expected '" + kind +
                        "', found '" + found_kind + "'");
    }
    std::string extra;
    if (hs >> extra) {
      artifact_fail(source, header_offset,
                    "trailing garbage '" + extra + "' in artifact header");
    }
  }

  // "payload-bytes <N>".
  std::size_t payload_size = 0;
  {
    const std::size_t length_offset = cur.offset;
    const std::string_view line = cur.line("the payload-bytes record");
    constexpr std::string_view kPrefix = "payload-bytes ";
    if (line.substr(0, kPrefix.size()) != kPrefix) {
      artifact_fail(source, length_offset,
                    "expected 'payload-bytes <N>', found '" +
                        std::string(line) + "'");
    }
    const std::string_view digits = line.substr(kPrefix.size());
    const auto result = std::from_chars(
        digits.data(), digits.data() + digits.size(), payload_size);
    if (result.ec != std::errc() ||
        result.ptr != digits.data() + digits.size()) {
      artifact_fail(source, length_offset,
                    "bad payload length '" + std::string(digits) + "'");
    }
    // Cap the declared length before it is compared against (or added to)
    // anything: a declared SIZE_MAX would wrap the `payload_size + 1`
    // truncation check below into accepting, then wrap the cursor.
    if (payload_size > limits.max_declared_payload_bytes) {
      artifact_fail(source, length_offset,
                    limit_exceeded("declared payload bytes", payload_size,
                                   limits.max_declared_payload_bytes));
    }
  }

  // Payload: exactly payload_size bytes followed by '\n'.
  const std::size_t payload_offset = cur.offset;
  if (text.size() - cur.offset < payload_size + 1) {
    artifact_fail(source, payload_offset,
                  "truncated payload: expected " +
                      std::to_string(payload_size) + " bytes, only " +
                      std::to_string(text.size() - cur.offset) +
                      " available");
  }
  const std::string_view payload = text.substr(cur.offset, payload_size);
  cur.offset += payload_size;
  if (text[cur.offset] != '\n') {
    artifact_fail(source, cur.offset,
                  "expected newline after the payload (payload-bytes and "
                  "payload disagree)");
  }
  ++cur.offset;

  // "crc32 <hex>".
  {
    const std::size_t crc_offset = cur.offset;
    const std::string_view line = cur.line("the crc32 record");
    constexpr std::string_view kPrefix = "crc32 ";
    if (line.substr(0, kPrefix.size()) != kPrefix) {
      artifact_fail(source, crc_offset,
                    "expected 'crc32 <hex>', found '" + std::string(line) +
                        "'");
    }
    const std::string_view digits = line.substr(kPrefix.size());
    std::uint32_t stored = 0;
    const auto result = std::from_chars(
        digits.data(), digits.data() + digits.size(), stored, 16);
    if (digits.size() != 8 || result.ec != std::errc() ||
        result.ptr != digits.data() + digits.size()) {
      artifact_fail(source, crc_offset,
                    "bad crc32 value '" + std::string(digits) +
                        "' (expected 8 hex digits)");
    }
    const std::uint32_t computed = crc32(payload);
    if (computed != stored) {
      artifact_fail(source, payload_offset,
                    "payload CRC32 mismatch over bytes [" +
                        std::to_string(payload_offset) + ", " +
                        std::to_string(payload_offset + payload_size) +
                        "): stored " + hex32(stored) + ", computed " +
                        hex32(computed));
    }
  }

  // Trailer and end-of-data.
  {
    const std::size_t trailer_offset = cur.offset;
    const std::string_view line = cur.line("the end trailer");
    if (line != "m3dfl-artifact-end") {
      artifact_fail(source, trailer_offset,
                    "expected 'm3dfl-artifact-end' trailer, found '" +
                        std::string(line) + "'");
    }
  }
  if (cur.offset != text.size()) {
    artifact_fail(source, cur.offset,
                  "trailing garbage after the artifact trailer (" +
                      std::to_string(text.size() - cur.offset) + " bytes)");
  }
  return std::string(payload);
}

}  // namespace m3dfl
