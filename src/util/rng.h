// Deterministic pseudo-random number generation.
//
// All stochastic steps in the library (benchmark generation, partitioning,
// pattern fill, fault sampling, GNN weight init) draw from Rng so that every
// experiment is exactly reproducible from a single seed.  The generator is
// xoshiro256** — fast, high quality, and identical on every platform, unlike
// std::mt19937 + distribution objects whose output is not specified across
// standard library implementations.
#ifndef M3DFL_UTIL_RNG_H_
#define M3DFL_UTIL_RNG_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace m3dfl {

// Deterministic, seedable random number generator (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  // Re-initializes the state from a 64-bit seed via splitmix64 expansion.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // Next raw 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound).  bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    M3DFL_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    M3DFL_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Bernoulli trial with success probability p.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  // Standard normal variate (Box–Muller; one value per call for simplicity).
  double next_gaussian() {
    double u1 = next_double();
    // Guard against log(0).
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.141592653589793 * u2);
  }

  // In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = next_below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    M3DFL_ASSERT(!v.empty());
    return v[next_below(v.size())];
  }

  // Derives an independent child generator; used to give each pipeline stage
  // its own stream so that adding draws in one stage does not perturb others.
  Rng fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

  // Raw state capture/restore, used by training checkpoints: a resumed run
  // must continue the exact variate sequence the interrupted run would have
  // drawn, or the two diverge at the first post-resume shuffle.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace m3dfl

#endif  // M3DFL_UTIL_RNG_H_
