// Versioned, checksummed artifact container (format version 2).
//
// Every artifact this library persists — trained models, frameworks, training
// checkpoints — is wrapped in one self-validating envelope:
//
//   m3dfl-artifact 2 <kind>\n       magic, format version, artifact kind
//   payload-bytes <N>\n             exact payload length in bytes
//   <N raw payload bytes>\n         the kind-specific payload
//   crc32 <8 lowercase hex>\n       CRC32 over exactly the payload bytes
//   m3dfl-artifact-end\n            trailer: distinguishes complete from torn
//
// The reader rejects, with errors citing the byte offset and the source
// name: bad magic (expected vs found), future or unknown format versions
// (expected vs found), kind mismatches, truncated payloads (expected vs
// available bytes), CRC mismatches (stored vs computed, plus the checked
// byte range), a missing/garbled trailer, and trailing garbage after the
// trailer.  Together with CRC32 this detects every single-byte flip and
// every truncation of a saved artifact.
//
// Version history: "1" is the pre-container era (bare "m3dfl-model 1" /
// "m3dfl-framework 1" streams); those still load through the legacy shims in
// gnn/serialize.cc and core/framework.cc.  "2" is this envelope; the payload
// it carries is exactly a version-1 stream, so one inner parser serves both.
#ifndef M3DFL_UTIL_ARTIFACT_H_
#define M3DFL_UTIL_ARTIFACT_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "util/limits.h"

namespace m3dfl {

inline constexpr int kArtifactVersion = 2;
inline constexpr const char* kArtifactMagic = "m3dfl-artifact";

// Wraps `payload` in the container envelope and writes it to `os`.
void write_artifact(std::ostream& os, const std::string& kind,
                    std::string_view payload);
std::string artifact_to_string(const std::string& kind,
                               std::string_view payload);

// Parses a full container from `text` and returns its payload.  `source`
// names the stream in diagnostics (a file path, or "<stream>").  Throws
// m3dfl::Error on any structural or integrity violation; every message
// cites `source` and the offending byte offset.  `limits` bounds the
// container size and the declared payload length; the declared length is
// validated against both the cap and the remaining input bytes before any
// use, so "payload-bytes 10^18" rejects with a cited diagnostic instead of
// wrapping offsets or touching memory.
std::string read_artifact(std::string_view text, const std::string& kind,
                          const std::string& source,
                          const ParseLimits& limits = {});

// True when `text` starts with the container magic (i.e. is a version >= 2
// artifact rather than a bare legacy stream).  Used by the legacy shims to
// dispatch.
bool is_artifact(std::string_view text);

// Reads the remainder of `is` into a string (artifact parsing operates on
// the whole buffer so diagnostics can cite absolute byte offsets).
std::string slurp_stream(std::istream& is);

}  // namespace m3dfl

#endif  // M3DFL_UTIL_ARTIFACT_H_
