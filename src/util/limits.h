// Uniform parse-limit policy for every untrusted input surface.
//
// The service ingests byte streams from sources it does not control —
// tester failure logs, uploaded netlists, registry artifacts, journals,
// config files.  Each parser already rejects *malformed* input with a
// cited diagnostic; ParseLimits adds the second half of the contract:
// *well-formed but adversarial* input (a 2 GB line, a gate record naming
// net 2^31-1, a frame declaring a petabyte payload) must also map to a
// cited rejection instead of an allocation bomb or an unbounded read.
//
// Two rules, enforced by fuzz/fuzz_replay and pinned by per-surface tests:
//
//  1. No declared length is ever resize()d/reserve()d or otherwise turned
//     into an allocation before it has been validated — against the
//     remaining input bytes where the stream length is known (util/artifact,
//     serve/journal), and against this policy's caps everywhere.
//  2. Every limit rejection carries the surface's usual citation (line or
//     byte offset) plus the uniform limit_exceeded() tail, so one grep
//     ("limit exceeded") finds every guardrail rejection in a fleet log.
//
// The defaults are sized an order of magnitude above the largest input the
// roadmap targets (Table III full-scale designs, ~338K gates) so they never
// bite legitimate traffic; services handling bigger designs pass their own
// ParseLimits through the reader overloads.
#ifndef M3DFL_UTIL_LIMITS_H_
#define M3DFL_UTIL_LIMITS_H_

#include <cstdint>
#include <iosfwd>
#include <string>

namespace m3dfl {

struct ParseLimits {
  // ---- text-line surfaces (MNL, faillog batch + stream, train config) ----
  // Longest accepted line, in bytes.  Bounds both the per-line allocation
  // and tail-follow accumulation: an unterminated multi-gigabyte "line" on
  // a live feed rejects here instead of growing a buffer without limit.
  std::size_t max_line_bytes = 64 * 1024;
  // Most whitespace-separated tokens on one line (MNL record splitting).
  std::size_t max_tokens_per_line = 4096;

  // ---- netlist (MNL) structural caps -------------------------------------
  std::int32_t max_gates = 4'194'304;  // ~12x the largest Table III design
  std::int32_t max_nets = 8'388'608;
  // Reserved for M3D netlist extensions that declare MIVs in text form;
  // today MIVs derive from partitioning and never cross a parse boundary.
  std::int32_t max_mivs = 1'048'576;
  // Fanin nets on one gate record (also the only nesting-like dimension any
  // of the line-oriented grammars has).
  std::size_t max_fanin = 1024;

  // ---- failure-log caps --------------------------------------------------
  // Largest accepted pattern index on scan/chan/po records and 'limit'.
  std::int32_t max_patterns = 16'777'215;
  // Largest accepted flop / channel / position / PO index.
  std::int32_t max_log_index = 16'777'215;
  // Total failing observations (scan + chan + po) in one batch log.
  std::size_t max_observations = 4'194'304;

  // ---- declared-length caps ----------------------------------------------
  // Artifact container "payload-bytes <N>" upper bound.
  std::size_t max_declared_payload_bytes = 256ull * 1024 * 1024;
  // Journal frame "r <crc> <len> ..." payload upper bound.
  std::size_t max_record_bytes = 1024 * 1024;
  // Whole-stream bound for surfaces that slurp (artifact containers,
  // journal segments).
  std::size_t max_file_bytes = 512ull * 1024 * 1024;

  // ---- misc surfaces -----------------------------------------------------
  std::size_t max_config_lines = 4096;     // train-config key/value lines
  std::size_t max_filename_bytes = 255;    // registry artifact filenames
  // Matrix cells (rows x cols) a model payload may declare before the
  // weight allocation happens (gnn/serialize load_matrix).
  std::int64_t max_matrix_cells = 1ll << 26;

  // The process-wide default policy (a default-constructed ParseLimits).
  static const ParseLimits& defaults();
};

// The uniform rejection tail: "limit exceeded: <what> N (limit K)".  Every
// surface prepends its own citation (".. line 7: ", "..: artifact byte 42: ").
std::string limit_exceeded(const std::string& what, unsigned long long value,
                           unsigned long long cap);
// Variant for bounds hit mid-read, where the true size is unknown because
// the reader stopped at the cap: "limit exceeded: <what> exceeds limit K".
std::string limit_exceeded_over(const std::string& what,
                                unsigned long long cap);

// One '\n'-terminated line of at most max_bytes bytes.
struct BoundedLine {
  enum class Status {
    kEof,      // nothing extracted, stream exhausted
    kOk,       // a complete line (newline consumed, or EOF-terminated)
    kTooLong,  // the line exceeds max_bytes; `line` holds the first
               // max_bytes bytes, the rest is left unread
  };
  Status status = Status::kEof;
  // kOk only: the line ended at EOF with no trailing '\n' (a tail-follower
  // snapshotting a live feed mid-append ends exactly like that).
  bool unterminated = false;
  bool ok() const { return status == Status::kOk; }
  bool too_long() const { return status == Status::kTooLong; }
};

// getline with a byte bound: the drop-in reader for every line-oriented
// parser, so an adversarial unterminated line can never accumulate more
// than max_bytes before the surface rejects it with a cited diagnostic.
BoundedLine bounded_getline(std::istream& is, std::string& line,
                            std::size_t max_bytes);

}  // namespace m3dfl

#endif  // M3DFL_UTIL_LIMITS_H_
