// Tiny ordered JSON writer for benchmark result files.
//
// ROADMAP asks every perf-bearing PR to leave a machine-readable trace
// (`BENCH_*.json`) so the performance trajectory stays visible across
// re-anchors.  This is the one writer all benches share: a flat document of
//
//   {
//     "bench": "<name>",
//     "meta":  { ...run-level facts: design, request counts, thread caps... },
//     "rows":  [ { ...one measurement point... }, ... ]
//   }
//
// Keys keep insertion order (deterministic output for diffing), values are
// strings, bools, integers, or doubles (doubles rendered with enough digits
// to round-trip; NaN/Inf are not valid JSON and are rendered as null).
// write() goes through the atomic temp-file + rename path, so a killed bench
// never leaves a torn result file behind.
#ifndef M3DFL_UTIL_BENCH_JSON_H_
#define M3DFL_UTIL_BENCH_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace m3dfl {

// One scalar JSON value.
class JsonValue {
 public:
  JsonValue(const char* v) : kind_(Kind::kString), string_(v) {}
  JsonValue(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}
  JsonValue(bool v) : kind_(Kind::kBool), bool_(v) {}
  JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(std::size_t v)
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}

  // Renders the value as a JSON token (quoted/escaped for strings).
  std::string to_string() const;

 private:
  enum class Kind { kString, kBool, kInt, kDouble };
  Kind kind_;
  std::string string_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
};

// An insertion-ordered JSON object of scalar fields.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, JsonValue value);
  std::string to_string() const;
  bool empty() const { return fields_.empty(); }

 private:
  std::vector<std::pair<std::string, JsonValue>> fields_;
};

// The whole BENCH_*.json document.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  // Run-level facts (design, scale knobs, host thread count, ...).
  BenchJson& meta(const std::string& key, JsonValue value);
  // Appends one measurement row and returns it for field population.
  JsonObject& add_row();

  std::string to_string() const;
  // Atomic write (util/atomic_file.h) of to_string() to `path`.
  void write(const std::string& path) const;

 private:
  std::string bench_name_;
  JsonObject meta_;
  std::vector<JsonObject> rows_;
};

// Escapes `text` as a JSON string literal, quotes included.
std::string json_escape(const std::string& text);

}  // namespace m3dfl

#endif  // M3DFL_UTIL_BENCH_JSON_H_
