// Streaming statistics accumulators used throughout the evaluation harness.
//
// Every paper table reports mean/standard-deviation pairs (diagnostic
// resolution, first-hit index, Topedge lengths, ...).  Accumulator implements
// Welford's numerically stable online algorithm so metrics modules never need
// to retain raw sample vectors.
#ifndef M3DFL_UTIL_STATS_H_
#define M3DFL_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace m3dfl {

// Online mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  // Mean of the samples seen so far; 0 when empty.
  double mean() const { return mean_; }
  // Population variance; 0 when fewer than two samples.
  double variance() const;
  // Population standard deviation.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  // Merges another accumulator into this one (parallel Welford).
  void merge(const Accumulator& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Mean of a vector; 0 for an empty vector.
double mean_of(const std::vector<double>& v);

// Population standard deviation of a vector; 0 for fewer than two samples.
double stddev_of(const std::vector<double>& v);

// Pearson correlation of two equal-length vectors; 0 if degenerate.
double correlation(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace m3dfl

#endif  // M3DFL_UTIL_STATS_H_
