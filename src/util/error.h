// Error handling primitives for the m3dfl library.
//
// Library-level contract violations (bad user input, malformed netlists,
// inconsistent configurations) throw m3dfl::Error.  Internal invariants are
// checked with M3DFL_ASSERT, which is active in all build types: diagnosis
// results are only meaningful if the underlying circuit model is sound, so we
// prefer a loud failure over a silently wrong fault ranking.
#ifndef M3DFL_UTIL_ERROR_H_
#define M3DFL_UTIL_ERROR_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace m3dfl {

// Exception thrown for all recoverable library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::ostringstream os;
  os << "m3dfl internal invariant violated: (" << expr << ") at " << file
     << ":" << line;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace m3dfl

// Internal invariant check.  Throws m3dfl::Error on failure so tests can
// observe violations; never compiled out.
#define M3DFL_ASSERT(expr)                                        \
  do {                                                            \
    if (!(expr)) {                                                \
      ::m3dfl::detail::assert_fail(#expr, __FILE__, __LINE__);    \
    }                                                             \
  } while (false)

// Precondition check on public API boundaries with a caller-facing message.
#define M3DFL_REQUIRE(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) {                                                \
      throw ::m3dfl::Error(std::string("m3dfl: ") + (msg));       \
    }                                                             \
  } while (false)

#endif  // M3DFL_UTIL_ERROR_H_
