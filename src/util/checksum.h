// CRC32 (IEEE 802.3 polynomial, reflected) for artifact integrity.
//
// Every on-disk artifact (models, frameworks, checkpoints) carries a CRC32
// trailer over its payload; CRC32 detects all single-byte corruptions and
// all burst errors up to 32 bits, which is exactly the failure class a torn
// or bit-rotted write produces.  The implementation is the standard
// table-driven byte-at-a-time loop — integrity checking is not on the
// serving hot path, so simplicity beats throughput here.
#ifndef M3DFL_UTIL_CHECKSUM_H_
#define M3DFL_UTIL_CHECKSUM_H_

#include <cstdint>
#include <string_view>

namespace m3dfl {

// CRC32 of `data`, optionally continuing from a previous value (chain calls
// with the running crc to checksum a stream in pieces).
std::uint32_t crc32(std::string_view data, std::uint32_t crc = 0);

}  // namespace m3dfl

#endif  // M3DFL_UTIL_CHECKSUM_H_
