// Deterministic fault injection, shared by the serving and training chaos
// harnesses.
//
// Resilience is only a property you have if you can test it.  The injector
// is threaded through a subsystem's failure seams and decides, per call,
// whether that seam should fail.  Seams are dense integer ids; each consumer
// defines its own enum over them (serve::Seam for the serving runtime,
// TrainSeam for the training chaos harness) and interprets the armed `kind`
// however it likes (the serving wrapper maps it to which typed error to
// throw).  Two trigger modes:
//
//   * probabilistic: arm(seam, p) — each call fails with probability p,
//     drawn from a per-seam xoshiro stream seeded from the injector seed.
//     The i-th call to a seam always sees the i-th draw, so the *number* of
//     triggers over N calls is a pure function of (seed, p, N) no matter how
//     threads interleave — which is what lets the chaos tests assert exact
//     accounting.
//   * scripted: arm_nth(seam, {3, 7}) — exactly the 3rd and 7th call fail.
//     Used to pin one specific failure ("kill training at epoch 3",
//     "first predict fails, retry succeeds") in unit tests.
//
// This generic core lived in src/serve/ through PR 2; it moved here so the
// training kill–resume harness and the serving chaos test share one
// implementation.  serve::FaultInjector remains as a thin typed wrapper.
#ifndef M3DFL_UTIL_FAULT_INJECTOR_H_
#define M3DFL_UTIL_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "util/rng.h"

namespace m3dfl {

class FaultInjector {
 public:
  explicit FaultInjector(int num_seams, std::uint64_t seed = 0xC4A05u);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  int num_seams() const { return static_cast<int>(seams_.size()); }

  // Arms a seam to fail each call with probability `probability`.  `kind` is
  // an opaque consumer-defined tag reported back by kind().
  void arm(int seam, double probability, int kind = 0);
  // Arms a seam to fail exactly on the given 1-based call numbers.
  void arm_nth(int seam, std::vector<std::uint64_t> calls, int kind = 0);

  // Counts one call to `seam` and reports whether it should fail.
  bool should_fail(int seam);

  int kind(int seam) const;
  std::int64_t calls(int seam) const;
  std::int64_t triggered(int seam) const;
  std::int64_t total_triggered() const;

 private:
  struct SeamState {
    double probability = 0.0;
    std::set<std::uint64_t> nth;  // 1-based scripted trigger calls
    int kind = 0;
    std::uint64_t num_calls = 0;
    std::uint64_t num_triggered = 0;
    Rng rng;
  };

  SeamState& seam_at(int seam);
  const SeamState& seam_at(int seam) const;

  mutable std::mutex mu_;
  std::vector<SeamState> seams_;
};

}  // namespace m3dfl

#endif  // M3DFL_UTIL_FAULT_INJECTOR_H_
