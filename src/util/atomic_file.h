// Crash-safe file replacement.
//
// A plain ofstream write dies half-done when the process is killed, leaving
// a torn artifact that a later reader mistakes for the real thing.  Atomic
// replacement closes that window: the content is written to a temporary file
// in the *same directory* (rename is only atomic within a filesystem),
// flushed and fsync'd so the bytes are durable before the name changes, and
// then renamed over the destination.  Readers therefore observe either the
// complete old file or the complete new file — never a prefix.  The parent
// directory is fsync'd as well so the rename itself survives a power cut.
#ifndef M3DFL_UTIL_ATOMIC_FILE_H_
#define M3DFL_UTIL_ATOMIC_FILE_H_

#include <string>
#include <string_view>

namespace m3dfl {

// Atomically replaces (or creates) `path` with `content`.  Throws
// m3dfl::Error, citing the path and the failing step, if any filesystem
// operation fails; on failure the destination is left untouched and the
// temporary is removed.
void write_file_atomic(const std::string& path, std::string_view content);

}  // namespace m3dfl

#endif  // M3DFL_UTIL_ATOMIC_FILE_H_
