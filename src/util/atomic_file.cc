#include "util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

#include "util/error.h"

namespace m3dfl {
namespace {

[[noreturn]] void fail(const std::string& path, const std::string& step) {
  throw Error("atomic write of '" + path + "' failed at " + step + ": " +
              std::strerror(errno));
}

// RAII fd that unlinks the temporary on early exit.
struct TempFile {
  int fd = -1;
  std::string path;
  bool committed = false;

  ~TempFile() {
    if (fd >= 0) ::close(fd);
    if (!committed && !path.empty()) ::unlink(path.c_str());
  }
};

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  const fs::path dir =
      target.parent_path().empty() ? fs::path(".") : target.parent_path();

  TempFile tmp;
  tmp.path = (dir / (target.filename().string() + ".tmp." +
                     std::to_string(::getpid())))
                 .string();
  tmp.fd = ::open(tmp.path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp.fd < 0) fail(path, "open(temp)");

  std::size_t written = 0;
  while (written < content.size()) {
    const ::ssize_t n =
        ::write(tmp.fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(path, "write");
    }
    written += static_cast<std::size_t>(n);
  }
  // Durability before visibility: the payload must be on disk before the
  // rename publishes the name, or a power cut can leave a named empty file.
  if (::fsync(tmp.fd) != 0) fail(path, "fsync");
  if (::close(tmp.fd) != 0) {
    tmp.fd = -1;
    fail(path, "close");
  }
  tmp.fd = -1;
  if (::rename(tmp.path.c_str(), path.c_str()) != 0) fail(path, "rename");
  tmp.committed = true;

  // Persist the directory entry too; failure here is not fatal to the
  // caller's view (the rename already happened) but is still reported.
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

}  // namespace m3dfl
