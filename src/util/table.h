// Plain-text table rendering for the benchmark harness.
//
// Every bench binary regenerates one paper table/figure as an aligned ASCII
// table on stdout; TablePrinter centralizes column sizing so all benches
// share one look.
#ifndef M3DFL_UTIL_TABLE_H_
#define M3DFL_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace m3dfl {

// Column-aligned ASCII table with a header row and optional separators.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);
  // Appends a horizontal separator at the current position.
  void add_separator();

  // Renders the full table.
  std::string to_string() const;
  // Renders to stdout.
  void print() const;

  // Formats a double with the given number of decimals.
  static std::string fmt(double value, int decimals = 1);
  // Formats a ratio as a percentage string, e.g. "98.3%".
  static std::string pct(double ratio, int decimals = 1);
  // Formats a signed percentage delta, e.g. "(+32.9%)".
  static std::string delta_pct(double ratio, int decimals = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace m3dfl

#endif  // M3DFL_UTIL_TABLE_H_
