#include "util/bench_json.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/atomic_file.h"

namespace m3dfl {

std::string json_escape(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonValue::to_string() const {
  switch (kind_) {
    case Kind::kString:
      return json_escape(string_);
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kDouble: {
      if (!std::isfinite(double_)) return "null";
      // %.17g round-trips every double; trim to the shortest form that still
      // parses back exactly is overkill for bench output.
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      return buf;
    }
  }
  return "null";
}

JsonObject& JsonObject::set(const std::string& key, JsonValue value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  fields_.emplace_back(key, std::move(value));
  return *this;
}

std::string JsonObject::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [key, value] : fields_) {
    if (!first) os << ", ";
    first = false;
    os << json_escape(key) << ": " << value.to_string();
  }
  os << "}";
  return os.str();
}

BenchJson& BenchJson::meta(const std::string& key, JsonValue value) {
  meta_.set(key, std::move(value));
  return *this;
}

JsonObject& BenchJson::add_row() {
  rows_.emplace_back();
  return rows_.back();
}

std::string BenchJson::to_string() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": " << json_escape(bench_name_) << ",\n";
  os << "  \"meta\": " << meta_.to_string() << ",\n";
  os << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    os << "    " << rows_[i].to_string();
    if (i + 1 < rows_.size()) os << ",";
    os << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

void BenchJson::write(const std::string& path) const {
  write_file_atomic(path, to_string());
}

}  // namespace m3dfl
