#include "util/limits.h"

#include <istream>

namespace m3dfl {

const ParseLimits& ParseLimits::defaults() {
  static const ParseLimits kDefaults;
  return kDefaults;
}

std::string limit_exceeded(const std::string& what, unsigned long long value,
                           unsigned long long cap) {
  return "limit exceeded: " + what + " " + std::to_string(value) +
         " (limit " + std::to_string(cap) + ")";
}

std::string limit_exceeded_over(const std::string& what,
                                unsigned long long cap) {
  return "limit exceeded: " + what + " exceeds limit " + std::to_string(cap);
}

BoundedLine bounded_getline(std::istream& is, std::string& line,
                            std::size_t max_bytes) {
  line.clear();
  BoundedLine result;
  std::streambuf* buf = is.rdbuf();
  if (buf == nullptr) {
    is.setstate(std::ios::failbit);
    return result;
  }
  for (;;) {
    const int c = buf->sbumpc();
    if (c == std::streambuf::traits_type::eof()) {
      is.setstate(std::ios::eofbit);
      if (line.empty()) {
        // Nothing extracted: mirror std::getline's failbit-at-EOF so
        // `while (bounded_getline(is, ...).ok())` terminates like
        // `while (std::getline(is, ...))`.
        is.setstate(std::ios::failbit);
        return result;  // kEof
      }
      result.status = BoundedLine::Status::kOk;
      result.unterminated = true;
      return result;
    }
    if (c == '\n') {
      result.status = BoundedLine::Status::kOk;
      return result;
    }
    if (line.size() >= max_bytes) {
      // The caller rejects with its own citation; the stream is left
      // mid-line on purpose (the surface is aborting anyway).
      result.status = BoundedLine::Status::kTooLong;
      return result;
    }
    line.push_back(static_cast<char>(c));
  }
}

}  // namespace m3dfl
