// Uniform-stride response thinning.
//
// Both suspect-extraction passes (graph/backtrace.cc and
// diag/atpg_diagnosis.cc) cap how many failing tester responses they trace:
// the per-response suspect intersection converges after a handful of
// responses, so tracing thousands buys nothing but runtime.  The cap keeps a
// deterministic uniform stride over the original order — early and late
// patterns both contribute, and the same (size, cap) pair always selects the
// same responses.  The index computation lived copy-pasted in both callers
// until PR 5; it is shared here so the two passes can never drift apart.
#ifndef M3DFL_UTIL_THINNING_H_
#define M3DFL_UTIL_THINNING_H_

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace m3dfl {

// Indices selected by thinning `size` elements down to at most `max_kept`
// with a uniform stride.  Ascending, unique; identity when size <= max_kept.
inline std::vector<std::size_t> uniform_stride_indices(std::size_t size,
                                                       std::int32_t max_kept) {
  std::vector<std::size_t> indices;
  if (max_kept <= 0 || size <= static_cast<std::size_t>(max_kept)) {
    indices.reserve(size);
    for (std::size_t i = 0; i < size; ++i) indices.push_back(i);
    return indices;
  }
  indices.reserve(static_cast<std::size_t>(max_kept));
  const double stride =
      static_cast<double>(size) / static_cast<double>(max_kept);
  for (std::int32_t i = 0; i < max_kept; ++i) {
    indices.push_back(static_cast<std::size_t>(std::floor(i * stride)));
  }
  return indices;
}

// Thins `items` in place to at most `max_kept` elements with a uniform
// stride.  Returns the original index of each kept element (the caller may
// need to cite pre-thinning positions, e.g. for quarantine reports).
template <typename T>
std::vector<std::size_t> thin_uniform_stride(std::vector<T>& items,
                                             std::int32_t max_kept) {
  std::vector<std::size_t> kept = uniform_stride_indices(items.size(),
                                                         max_kept);
  if (kept.size() == items.size()) return kept;
  std::vector<T> thinned;
  thinned.reserve(kept.size());
  for (std::size_t i : kept) thinned.push_back(std::move(items[i]));
  items = std::move(thinned);
  return kept;
}

}  // namespace m3dfl

#endif  // M3DFL_UTIL_THINNING_H_
