#include "util/checksum.h"

#include <array>

namespace m3dfl {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  crc ^= 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace m3dfl
