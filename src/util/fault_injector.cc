#include "util/fault_injector.h"

#include <utility>

#include "util/error.h"

namespace m3dfl {

FaultInjector::FaultInjector(int num_seams, std::uint64_t seed) {
  M3DFL_REQUIRE(num_seams > 0, "fault injector needs at least one seam");
  seams_.resize(static_cast<std::size_t>(num_seams));
  // Each seam draws from its own stream, so arming or exercising one seam
  // never perturbs another's trigger sequence.
  for (int s = 0; s < num_seams; ++s) {
    seams_[static_cast<std::size_t>(s)].rng.reseed(
        seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(s + 1)));
  }
}

FaultInjector::SeamState& FaultInjector::seam_at(int seam) {
  M3DFL_REQUIRE(seam >= 0 && seam < num_seams(),
                "fault injector seam " + std::to_string(seam) +
                    " out of range [0, " + std::to_string(num_seams()) + ")");
  return seams_[static_cast<std::size_t>(seam)];
}

const FaultInjector::SeamState& FaultInjector::seam_at(int seam) const {
  return const_cast<FaultInjector*>(this)->seam_at(seam);
}

void FaultInjector::arm(int seam, double probability, int kind) {
  M3DFL_REQUIRE(probability >= 0.0 && probability <= 1.0,
                "fault probability must be in [0, 1]");
  std::lock_guard<std::mutex> lock(mu_);
  SeamState& state = seam_at(seam);
  state.probability = probability;
  state.kind = kind;
}

void FaultInjector::arm_nth(int seam, std::vector<std::uint64_t> calls,
                            int kind) {
  std::lock_guard<std::mutex> lock(mu_);
  SeamState& state = seam_at(seam);
  state.nth = std::set<std::uint64_t>(calls.begin(), calls.end());
  M3DFL_REQUIRE(state.nth.count(0) == 0, "scripted trigger calls are 1-based");
  state.kind = kind;
}

bool FaultInjector::should_fail(int seam) {
  std::lock_guard<std::mutex> lock(mu_);
  SeamState& state = seam_at(seam);
  ++state.num_calls;
  bool fail = state.nth.count(state.num_calls) > 0;
  if (!fail && state.probability > 0.0) {
    // One draw per call: the i-th call always sees the i-th variate, so the
    // trigger count over N calls is interleaving-independent.
    fail = state.rng.next_double() < state.probability;
  }
  if (fail) ++state.num_triggered;
  return fail;
}

int FaultInjector::kind(int seam) const {
  std::lock_guard<std::mutex> lock(mu_);
  return seam_at(seam).kind;
}

std::int64_t FaultInjector::calls(int seam) const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(seam_at(seam).num_calls);
}

std::int64_t FaultInjector::triggered(int seam) const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(seam_at(seam).num_triggered);
}

std::int64_t FaultInjector::total_triggered() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const SeamState& state : seams_) {
    total += static_cast<std::int64_t>(state.num_triggered);
  }
  return total;
}

}  // namespace m3dfl
