// m3dfl command-line tool.
//
//   m3dfl_tool generate  <profile> <out.mnl>        elaborate a benchmark netlist
//   m3dfl_tool verilog   <profile> <out.v>          export structural Verilog
//   m3dfl_tool stats     <profile> [config]         design/M3D/DfT statistics
//   m3dfl_tool train     <profile> <model.m3dfl>    train + persist a framework
//   m3dfl_tool diagnose  <profile> <model.m3dfl> <die.flog> [config]
//                                                   diagnose one failure log
//   m3dfl_tool inject    <profile> <out.flog>       make a demo failure log
//   m3dfl_tool serve     <profile> <model.m3dfl> <logs> [config] [threads]
//                                                   batch-diagnose a directory
//                                                   (or manifest) of logs
//                                                   through the concurrent
//                                                   serving runtime
//
// Profiles: aes | tate | netcard | leon3mp.  Configs: syn1|tpi|syn2|par.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "diag/log_io.h"
#include "netlist/verilog_io.h"
#include "serve/service.h"
#include "util/table.h"

using namespace m3dfl;

namespace {

Profile parse_profile(const std::string& name) {
  for (Profile p : all_profiles()) {
    std::string lower = profile_name(p);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == name) return p;
  }
  throw Error("unknown profile '" + name + "' (aes|tate|netcard|leon3mp)");
}

DesignConfig parse_config(const std::string& name) {
  if (name == "syn1") return DesignConfig::kSyn1;
  if (name == "tpi") return DesignConfig::kTpi;
  if (name == "syn2") return DesignConfig::kSyn2;
  if (name == "par") return DesignConfig::kPar;
  throw Error("unknown config '" + name + "' (syn1|tpi|syn2|par)");
}

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path);
  M3DFL_REQUIRE(os.good(), "cannot open '" + path + "' for writing");
  return os;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path);
  M3DFL_REQUIRE(is.good(), "cannot open '" + path + "' for reading");
  return is;
}

int cmd_generate(const std::string& profile, const std::string& path) {
  const auto design = Design::build(parse_profile(profile),
                                    DesignConfig::kSyn1);
  auto os = open_out(path);
  write_mnl(design->netlist(), os);
  std::cout << "wrote " << design->netlist().num_gates() << " gates to "
            << path << "\n";
  return 0;
}

int cmd_verilog(const std::string& profile, const std::string& path) {
  const auto design = Design::build(parse_profile(profile),
                                    DesignConfig::kSyn1);
  auto os = open_out(path);
  write_verilog(design->netlist(), os);
  std::cout << "wrote structural Verilog to " << path << "\n";
  return 0;
}

int cmd_stats(const std::string& profile, const std::string& config) {
  const auto design =
      Design::build(parse_profile(profile), parse_config(config));
  TablePrinter table({"metric", "value"});
  table.add_row({"design", design->name()});
  table.add_row({"logic gates",
                 std::to_string(design->netlist().num_logic_gates())});
  table.add_row({"fault sites (pins)",
                 std::to_string(design->netlist().num_pins())});
  table.add_row({"MIVs", std::to_string(design->mivs().num_mivs())});
  const auto counts = design->tiers().tier_gate_counts(design->netlist());
  table.add_row({"tier balance (bottom/top)", std::to_string(counts[0]) +
                                                  " / " +
                                                  std::to_string(counts[1])});
  table.add_row({"scan chains",
                 std::to_string(design->scan().num_chains())});
  table.add_row({"compactor channels",
                 std::to_string(design->compactor().num_channels())});
  table.add_row({"TDF patterns",
                 std::to_string(design->patterns().num_patterns)});
  table.add_row({"TDF coverage (generation)",
                 TablePrinter::pct(design->atpg().coverage())});
  table.add_row({"graph nodes", std::to_string(design->graph().num_nodes())});
  table.add_row({"graph edges", std::to_string(design->graph().num_edges())});
  table.add_row({"Topnodes", std::to_string(design->graph().num_topnodes())});
  table.print();
  return 0;
}

int cmd_train(const std::string& profile, const std::string& path) {
  const Profile p = parse_profile(profile);
  const auto design = Design::build(p, DesignConfig::kSyn1);
  std::cout << "generating training data (Syn-1 + 2 random partitions)...\n";
  const LabeledDataset train =
      build_transfer_training_set(p, *design, TransferTrainOptions{});
  std::cout << "training on " << train.size() << " failure logs...\n";
  DiagnosisFramework framework;
  framework.train(train.graphs);
  auto os = open_out(path);
  framework.save(os);
  std::cout << "saved trained framework (T_P = " << framework.tp_threshold()
            << ") to " << path << "\n";
  return 0;
}

int cmd_inject(const std::string& profile, const std::string& path) {
  const auto design = Design::build(parse_profile(profile),
                                    DesignConfig::kSyn1);
  DataGenOptions gen;
  gen.num_samples = 1;
  gen.seed = 0xD1E;
  const LabeledDataset one = build_dataset(*design, gen);
  auto os = open_out(path);
  write_failure_log(one.samples[0].log, os);
  std::cout << "injected " << fault_to_string(design->netlist(),
                                              one.samples[0].faults[0])
            << " (tier " << one.samples[0].fault_tier << "); wrote "
            << one.samples[0].log.num_failing_bits() << " failing bits to "
            << path << "\n";
  return 0;
}

int cmd_diagnose(const std::string& profile, const std::string& model_path,
                 const std::string& log_path, const std::string& config) {
  const auto design =
      Design::build(parse_profile(profile), parse_config(config));
  DiagnosisFramework framework;
  {
    auto is = open_in(model_path);
    framework.load(is);
  }
  FailureLog log;
  {
    auto is = open_in(log_path);
    log = read_failure_log(is);
  }

  const DesignContext ctx = design->context();
  DiagnosisReport report = diagnose_atpg(ctx, log);
  std::cout << "ATPG " << report_to_string(design->netlist(), report);

  const Subgraph sg = subgraph_for_log(*design, log);
  FrameworkPrediction prediction;
  framework.diagnose(ctx, sg, report, &prediction);
  std::cout << "\nGNN verdict: tier " << prediction.tier << " (confidence "
            << prediction.confidence << ", "
            << (prediction.high_confidence ? "high" : "low")
            << "), MIVs flagged: " << prediction.faulty_mivs.size() << ", "
            << (prediction.pruned ? "pruned" : "reordered") << "\n\n";
  std::cout << "refined " << report_to_string(design->netlist(), report);
  return 0;
}

// Failure-log inputs for `serve`: a directory (all *.flog files, sorted) or
// a manifest text file with one log path per line ('#' comments allowed).
std::vector<std::filesystem::path> collect_log_paths(const std::string& arg) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  if (fs::is_directory(arg)) {
    for (const auto& entry : fs::directory_iterator(arg)) {
      if (entry.is_regular_file() && entry.path().extension() == ".flog") {
        paths.push_back(entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
  } else {
    auto is = open_in(arg);
    const fs::path base = fs::path(arg).parent_path();
    std::string line;
    while (std::getline(is, line)) {
      if (line.empty() || line[0] == '#') continue;
      fs::path p(line);
      paths.push_back(p.is_absolute() ? p : base / p);
    }
  }
  M3DFL_REQUIRE(!paths.empty(),
                "no failure logs found in '" + arg +
                    "' (directory of *.flog files or manifest)");
  return paths;
}

int cmd_serve(const std::string& profile, const std::string& model_path,
              const std::string& logs_arg, const std::string& config,
              const std::string& threads_str) {
  serve::ServiceOptions options;
  try {
    options.num_threads = std::stoi(threads_str);
  } catch (const std::exception&) {
    throw Error("m3dfl: invalid thread count '" + threads_str + "'");
  }

  std::shared_ptr<const Design> design =
      Design::build(parse_profile(profile), parse_config(config));
  auto model_is = open_in(model_path);
  serve::DiagnosisService service(model_is, options);
  const std::int32_t design_id = service.register_design(design);

  const auto paths = collect_log_paths(logs_arg);
  std::cerr << "serving " << paths.size() << " failure logs on "
            << design->name() << " with " << options.num_threads
            << " worker thread(s)...\n";

  std::vector<std::future<serve::DiagnosisResult>> futures;
  futures.reserve(paths.size());
  for (const auto& path : paths) {
    auto is = open_in(path.string());
    futures.push_back(service.submit(design_id, read_failure_log(is)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::DiagnosisResult result = futures[i].get();
    std::cout << "==== " << paths[i].filename().string()
              << (result.cache_hit ? " (cache hit)" : "") << "\n"
              << result_to_string(design->netlist(), result) << "\n";
  }
  service.shutdown();
  std::cout << "==== serving metrics ====\n" << service.metrics().report();
  return 0;
}

int usage() {
  std::cerr << "usage:\n"
               "  m3dfl_tool generate <profile> <out.mnl>\n"
               "  m3dfl_tool verilog  <profile> <out.v>\n"
               "  m3dfl_tool stats    <profile> [config]\n"
               "  m3dfl_tool train    <profile> <model.m3dfl>\n"
               "  m3dfl_tool inject   <profile> <out.flog>\n"
               "  m3dfl_tool diagnose <profile> <model.m3dfl> <die.flog> "
               "[config]\n"
               "  m3dfl_tool serve    <profile> <model.m3dfl> "
               "<logdir|manifest> [config] [threads]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 3) return usage();
    const std::string cmd = argv[1];
    if (cmd == "generate" && argc == 4) return cmd_generate(argv[2], argv[3]);
    if (cmd == "verilog" && argc == 4) return cmd_verilog(argv[2], argv[3]);
    if (cmd == "stats" && (argc == 3 || argc == 4)) {
      return cmd_stats(argv[2], argc == 4 ? argv[3] : "syn1");
    }
    if (cmd == "train" && argc == 4) return cmd_train(argv[2], argv[3]);
    if (cmd == "inject" && argc == 4) return cmd_inject(argv[2], argv[3]);
    if (cmd == "diagnose" && (argc == 5 || argc == 6)) {
      return cmd_diagnose(argv[2], argv[3], argv[4],
                          argc == 6 ? argv[5] : "syn1");
    }
    if (cmd == "serve" && argc >= 5 && argc <= 7) {
      return cmd_serve(argv[2], argv[3], argv[4],
                       argc >= 6 ? argv[5] : "syn1",
                       argc == 7 ? argv[6] : "4");
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "m3dfl_tool: " << e.what() << "\n";
    return 1;
  }
}
