// m3dfl command-line tool.
//
//   m3dfl_tool generate  <profile> <out.mnl>        elaborate a benchmark netlist
//   m3dfl_tool verilog   <profile> <out.v>          export structural Verilog
//   m3dfl_tool stats     <profile> [config]         design/M3D/DfT statistics
//   m3dfl_tool train     <profile> <model.m3dfl>    train + persist a framework
//                        [--checkpoint-dir=D] [--checkpoint-interval=N]
//                        [--resume] [--train-config=F]
//   m3dfl_tool lint      <profile|file.mnl> [config] static analysis of a
//                        [--log=F] [--model=F]       design, netlist file,
//                        [--json]                    failure log, and/or
//                        [--fail-on=warn|error]      trained model
//   m3dfl_tool analyze   <profile|file.mnl> [config] static timing &
//                        [--json] [--clock-ps=P]     testability analysis:
//                        [--k-paths=N]               slack/WNS/TNS, K longest
//                        [--max-defect-ps=D]         paths, untestable delay
//                                                   faults, fault collapsing,
//                                                   and the timing lint pass
//   m3dfl_tool diagnose  <profile> <model.m3dfl> <die.flog> [config]
//                                                   diagnose one failure log
//   m3dfl_tool inject    <profile> <out.flog>       make a demo failure log
//   m3dfl_tool serve     <profile> <model.m3dfl> <logs> [config] [threads]
//                        [--deadline-ms=N] [--max-retries=N] [--no-degraded]
//                        [--journal-dir=D]           batch-diagnose a directory
//                                                   (or manifest) of logs
//                                                   through the concurrent
//                                                   serving runtime; with a
//                                                   journal dir, requests are
//                                                   crash-safe sessions
//   m3dfl_tool fleet     <registry-dir> <manifest>  multi-tenant serving: route
//                        [--threads=N]              manifest requests to per-
//                        [--max-inflight=N]         design shards over a model
//                        [--version=N]              registry (docs/REGISTRY.md)
//                        [--max-resident-mb=N]
//                        [--journal-dir=D]
//   m3dfl_tool journal   <dir> [--verify|--compact] inspect / verify / compact
//                        [--lifetime-ms=N]          a write-ahead session
//                                                   journal (docs/SERVING.md)
//   m3dfl_tool migrate-artifact <in> <out>          legacy format-1 stream ->
//                                                   checksummed format-2
//                                                   registry artifact
//
// Profiles: aes | tate | netcard | leon3mp.  Configs: syn1|tpi|syn2|par.
//
// Every artifact this tool writes (netlists, failure logs, trained models)
// goes through an atomic temp-file + rename, so a killed run never leaves a
// torn file behind; trained models are additionally wrapped in the
// checksummed artifact container (docs/ARTIFACTS.md).
//
// serve failure semantics: every request resolves with a serve::StatusCode
// (printed per report and totalled at the end); a missing/corrupt model
// stream degrades the whole run to ATPG-only ranking (reports marked
// degraded) instead of aborting.  Exit 0 iff every request ended kOk.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/experiment.h"
#include "diag/log_io.h"
#include "diag/noise.h"
#include "diag/stream_backtrace.h"
#include "gnn/serialize.h"
#include "graph/backtrace.h"
#include "lint/lint.h"
#include "netlist/verilog_io.h"
#include "lint/checks.h"
#include "registry/registry.h"
#include "serve/fleet.h"
#include "serve/service.h"
#include "serve/session.h"
#include "sta/collapse.h"
#include "sta/lint_bridge.h"
#include "sta/sta.h"
#include "util/artifact.h"
#include "util/atomic_file.h"
#include "util/bench_json.h"
#include "util/table.h"

using namespace m3dfl;

namespace {

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path);
  M3DFL_REQUIRE(is.good(), "cannot open '" + path + "' for reading");
  return is;
}

int cmd_generate(const std::string& profile, const std::string& path) {
  const auto design = Design::build(parse_profile(profile),
                                    DesignConfig::kSyn1);
  write_file_atomic(path, to_mnl(design->netlist()));
  std::cout << "wrote " << design->netlist().num_gates() << " gates to "
            << path << "\n";
  return 0;
}

int cmd_verilog(const std::string& profile, const std::string& path) {
  const auto design = Design::build(parse_profile(profile),
                                    DesignConfig::kSyn1);
  write_file_atomic(path, to_verilog(design->netlist()));
  std::cout << "wrote structural Verilog to " << path << "\n";
  return 0;
}

int cmd_stats(const std::string& profile, const std::string& config) {
  const auto design =
      Design::build(parse_profile(profile), parse_config(config));
  TablePrinter table({"metric", "value"});
  table.add_row({"design", design->name()});
  table.add_row({"logic gates",
                 std::to_string(design->netlist().num_logic_gates())});
  table.add_row({"fault sites (pins)",
                 std::to_string(design->netlist().num_pins())});
  table.add_row({"MIVs", std::to_string(design->mivs().num_mivs())});
  const auto counts = design->tiers().tier_gate_counts(design->netlist());
  table.add_row({"tier balance (bottom/top)", std::to_string(counts[0]) +
                                                  " / " +
                                                  std::to_string(counts[1])});
  table.add_row({"scan chains",
                 std::to_string(design->scan().num_chains())});
  table.add_row({"compactor channels",
                 std::to_string(design->compactor().num_channels())});
  table.add_row({"TDF patterns",
                 std::to_string(design->patterns().num_patterns)});
  table.add_row({"TDF coverage (generation)",
                 TablePrinter::pct(design->atpg().coverage())});
  table.add_row({"graph nodes", std::to_string(design->graph().num_nodes())});
  table.add_row({"graph edges", std::to_string(design->graph().num_edges())});
  table.add_row({"Topnodes", std::to_string(design->graph().num_topnodes())});
  table.print();
  return 0;
}

// Flags accepted by `train`.
struct TrainFlags {
  std::string checkpoint_dir;
  std::int32_t checkpoint_interval = 1;
  bool resume = false;
  std::string train_config;  // key-value TrainOptions file
};

TrainFlags parse_train_flags(const std::vector<std::string>& flags) {
  TrainFlags parsed;
  for (const std::string& flag : flags) {
    const auto eq = flag.find('=');
    const std::string key = flag.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : flag.substr(eq + 1);
    try {
      if (key == "--checkpoint-dir") {
        parsed.checkpoint_dir = value;
      } else if (key == "--checkpoint-interval") {
        parsed.checkpoint_interval = std::stoi(value);
      } else if (key == "--resume") {
        parsed.resume = true;
      } else if (key == "--train-config") {
        parsed.train_config = value;
      } else {
        throw Error("unknown train flag '" + flag + "'");
      }
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw Error("bad value in train flag '" + flag + "'");
    }
  }
  if (parsed.resume && parsed.checkpoint_dir.empty()) {
    throw Error("--resume requires --checkpoint-dir");
  }
  return parsed;
}

int cmd_train(const std::string& profile, const std::string& path,
              const TrainFlags& flags) {
  const Profile p = parse_profile(profile);
  // Validate the training config before the (expensive) dataset build so a
  // typo is reported in milliseconds, not minutes.
  FrameworkOptions options;
  if (!flags.train_config.empty()) {
    auto is = open_in(flags.train_config);
    options.training =
        read_train_options(is, options.training, flags.train_config);
  }
  const auto design = Design::build(p, DesignConfig::kSyn1);
  // Mandatory design preflight: reject a design the lint engine can fault
  // before the expensive dataset build (the Trainer separately lints every
  // generated feature matrix).
  {
    const lint::Report report = lint::lint_design(*design);
    if (report.has_errors()) {
      std::cerr << report.to_string();
      throw Error("design '" + design->name() +
                  "' failed lint preflight (" + report.summary() +
                  "); fix the design before training");
    }
  }
  std::cout << "generating training data (Syn-1 + 2 random partitions)...\n";
  const LabeledDataset train =
      build_transfer_training_set(p, *design, TransferTrainOptions{});
  std::cout << "training on " << train.size() << " failure logs...\n";

  DiagnosisFramework framework(options);
  TrainerOptions trainer_options;
  trainer_options.checkpoint_dir = flags.checkpoint_dir;
  trainer_options.checkpoint_interval = flags.checkpoint_interval;
  // STA preflight: reject labels on untestable delay-fault sites before
  // epoch 0 (the transfer set's random partitions share this netlist, and
  // structural untestability is tier-independent).
  const DesignContext ctx = design->context();
  trainer_options.sta_design = &ctx;
  trainer_options.sta_samples = train.samples;
  Trainer trainer(framework, trainer_options);
  if (flags.resume) {
    if (trainer.resume()) {
      std::cout << "resumed from " << trainer.checkpoint_path() << " (phase "
                << trainer.phase() << ")\n";
    } else {
      std::cout << "no checkpoint in '" << flags.checkpoint_dir
                << "'; training from scratch\n";
    }
  }
  trainer.train(train.graphs);

  std::ostringstream os;
  framework.save(os);
  write_file_atomic(path, os.str());
  std::cout << "saved trained framework (T_P = " << framework.tp_threshold()
            << ") to " << path << "\n";
  return 0;
}

// Flags accepted by `lint`.
struct LintFlags {
  std::string log_path;    // failure log to lint against the design
  std::string model_path;  // trained framework to lint against the design
  bool json = false;
  lint::Severity fail_on = lint::Severity::kError;
};

LintFlags parse_lint_flags(const std::vector<std::string>& flags) {
  LintFlags parsed;
  for (const std::string& flag : flags) {
    const auto eq = flag.find('=');
    const std::string key = flag.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : flag.substr(eq + 1);
    if (key == "--log") {
      parsed.log_path = value;
    } else if (key == "--model") {
      parsed.model_path = value;
    } else if (key == "--json") {
      parsed.json = true;
    } else if (key == "--fail-on") {
      try {
        parsed.fail_on = lint::parse_severity(value);
      } catch (const Error& e) {
        // Cite the flag as written so a typo in a CI pipeline is findable.
        throw Error("in '" + flag + "': " + e.what());
      }
    } else {
      throw Error("unknown lint flag '" + flag + "'");
    }
  }
  return parsed;
}

// `m3dfl_tool lint <design> [config] [--log=F] [--model=F] [--json]
//                  [--fail-on=warn|error]`
// <design> is a benchmark profile (aes|tate|netcard|leon3mp) or a path to an
// MNL netlist file.  Exit 0 when no diagnostic at/above the --fail-on
// severity fired, 1 otherwise.
int cmd_lint(const std::string& target, const std::string& config,
             const LintFlags& flags) {
  lint::Report report;
  std::unique_ptr<Design> design;
  if (std::filesystem::is_regular_file(target)) {
    M3DFL_REQUIRE(flags.log_path.empty() && flags.model_path.empty(),
                  "--log/--model need a built design; lint a profile, not "
                  "an .mnl file, to use them");
    std::ostringstream text;
    text << open_in(target).rdbuf();
    report = lint::lint_mnl(text.str(), target);
  } else if (target.size() > 4 &&
             target.compare(target.size() - 4, 4, ".mnl") == 0) {
    // Looks like a netlist path, not a profile; don't let the missing file
    // fall through to an "unknown profile" message.
    throw Error("cannot open netlist file '" + target + "'");
  } else {
    design = Design::build(parse_profile(target), parse_config(config));
    report = lint::lint_design(*design);
    if (!flags.model_path.empty()) {
      DiagnosisFramework framework;
      auto is = open_in(flags.model_path);
      framework.load(is, flags.model_path);
      report.merge(lint::lint_model(framework, design.get()));
    }
    if (!flags.log_path.empty()) {
      auto is = open_in(flags.log_path);
      report.merge(lint::lint_failure_log(*design, read_failure_log(is)));
    }
  }
  if (flags.json) {
    std::cout << report.to_json() << "\n";
  } else {
    std::cout << report.to_string();
  }
  const bool fail = !report.empty() && report.worst() >= flags.fail_on;
  return fail ? 1 : 0;
}

// Flags accepted by `analyze`.
struct AnalyzeFlags {
  bool json = false;
  double clock_ps = 0.0;       // 0 = auto (guard band over the critical path)
  std::int32_t k_paths = 5;
  double max_defect_ps = 0.0;  // 0 = no slack-margin untestability
};

AnalyzeFlags parse_analyze_flags(const std::vector<std::string>& flags) {
  AnalyzeFlags parsed;
  for (const std::string& flag : flags) {
    const auto eq = flag.find('=');
    const std::string key = flag.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : flag.substr(eq + 1);
    try {
      if (key == "--json") {
        parsed.json = true;
      } else if (key == "--clock-ps") {
        parsed.clock_ps = std::stod(value);
      } else if (key == "--k-paths") {
        parsed.k_paths = std::stoi(value);
      } else if (key == "--max-defect-ps") {
        parsed.max_defect_ps = std::stod(value);
      } else {
        throw Error("unknown analyze flag '" + flag + "'");
      }
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw Error("bad value in analyze flag '" + flag + "'");
    }
  }
  return parsed;
}

// Pin chain of a timing path; long paths keep both ends and elide the middle.
std::string path_to_string(const Netlist& nl, const sta::TimingPath& path) {
  constexpr std::size_t kHead = 6;
  constexpr std::size_t kTail = 6;
  std::string out;
  const std::size_t n = path.pins.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (n > kHead + kTail + 1 && i == kHead) {
      out += " -> ...(" + std::to_string(n - kHead - kTail) + " pins)...";
      i = n - kTail - 1;
      continue;
    }
    if (!out.empty()) out += " -> ";
    out += nl.pin_name(path.pins[i]);
  }
  return out;
}

// `m3dfl_tool analyze <design> [config] [--json] [--clock-ps=P]
//                     [--k-paths=N] [--max-defect-ps=D]`
// Static timing & testability analysis (docs/ANALYSIS.md): slack/WNS/TNS,
// the K longest paths, untestable delay faults, fault collapsing, and the
// timing lint pass.  <design> is a benchmark profile or an MNL netlist file
// (a bare netlist carries no tier assignment, so MIV effects are off).
// Exit 0 when the timing lint pass finds no errors, 1 otherwise.
int cmd_analyze(const std::string& target, const std::string& config,
                const AnalyzeFlags& flags) {
  std::unique_ptr<Design> design;
  Netlist file_netlist;
  const Netlist* nl = nullptr;
  const TierAssignment* tiers = nullptr;
  const MivMap* mivs = nullptr;
  if (std::filesystem::is_regular_file(target)) {
    std::ostringstream text;
    text << open_in(target).rdbuf();
    file_netlist = from_mnl(text.str());
    nl = &file_netlist;
  } else {
    design = Design::build(parse_profile(target), parse_config(config));
    nl = &design->netlist();
    tiers = &design->tiers();
    mivs = &design->mivs();
  }

  sta::StaOptions sta_options;
  sta_options.clock_ps = flags.clock_ps;
  sta_options.max_defect_ps = flags.max_defect_ps;
  const sta::TimingAnalysis analysis(*nl, tiers, mivs, sta_options);
  const sta::CollapsedFaults collapsed = sta::collapse_tdf_faults(*nl);
  const std::vector<sta::TimingPath> paths =
      analysis.k_longest_paths(flags.k_paths);
  const std::vector<sta::UntestableFault> untestable =
      analysis.untestable_faults();
  std::int64_t n_unobservable = 0;
  std::int64_t n_slack_margin = 0;
  for (const sta::UntestableFault& u : untestable) {
    if (u.reason == sta::UntestableReason::kSlackMargin) {
      ++n_slack_margin;
    } else {
      ++n_unobservable;
    }
  }

  const lint::TimingFacts facts =
      sta::timing_lint_facts(*nl, analysis, mivs, &collapsed);
  lint::Subject subject;
  subject.timing = &facts;
  lint::Report report;
  lint::run_timing_checks(subject, report);

  if (flags.json) {
    std::string out = "{\n  \"design\": " + json_escape(nl->name()) +
                      ",\n  \"clock_ps\": " +
                      TablePrinter::fmt(analysis.clock_ps(), 3) +
                      ",\n  \"critical_delay_ps\": " +
                      TablePrinter::fmt(analysis.critical_delay_ps(), 3) +
                      ",\n  \"wns_ps\": " +
                      TablePrinter::fmt(analysis.wns_ps(), 3) +
                      ",\n  \"tns_ps\": " +
                      TablePrinter::fmt(analysis.tns_ps(), 3) +
                      ",\n  \"endpoints\": " +
                      std::to_string(analysis.endpoints().size()) +
                      ",\n  \"untestable_unobservable\": " +
                      std::to_string(n_unobservable) +
                      ",\n  \"untestable_slack_margin\": " +
                      std::to_string(n_slack_margin) +
                      ",\n  \"collapse_faults\": " +
                      std::to_string(collapsed.full.size()) +
                      ",\n  \"collapse_classes\": " +
                      std::to_string(collapsed.num_classes()) +
                      ",\n  \"collapse_dominated\": " +
                      std::to_string(collapsed.num_dominated()) +
                      ",\n  \"paths\": [";
    for (std::size_t i = 0; i < paths.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"delay_ps\": " + TablePrinter::fmt(paths[i].delay_ps, 3) +
             ", \"slack_ps\": " + TablePrinter::fmt(paths[i].slack_ps, 3) +
             ", \"pins\": [";
      for (std::size_t j = 0; j < paths[i].pins.size(); ++j) {
        if (j > 0) out += ", ";
        out += json_escape(nl->pin_name(paths[i].pins[j]));
      }
      out += "]}";
    }
    out += "\n  ],\n  \"lint\": " + report.to_json() + "}\n";
    std::cout << out;
  } else {
    TablePrinter table({"metric", "value"});
    table.add_row({"design", nl->name()});
    table.add_row({"clock (ps)", TablePrinter::fmt(analysis.clock_ps(), 1)});
    table.add_row({"critical delay (ps)",
                   TablePrinter::fmt(analysis.critical_delay_ps(), 1)});
    table.add_row({"WNS (ps)", TablePrinter::fmt(analysis.wns_ps(), 1)});
    table.add_row({"TNS (ps)", TablePrinter::fmt(analysis.tns_ps(), 1)});
    table.add_row({"capture endpoints",
                   std::to_string(analysis.endpoints().size())});
    table.add_row({"untestable TDFs (unobservable)",
                   std::to_string(n_unobservable)});
    table.add_row({"untestable TDFs (slack margin)",
                   std::to_string(n_slack_margin)});
    table.add_row({"TDF faults", std::to_string(collapsed.full.size())});
    table.add_row({"collapsed classes",
                   std::to_string(collapsed.num_classes())});
    table.add_row({"collapse ratio",
                   TablePrinter::fmt(collapsed.collapse_ratio(), 2)});
    table.add_row({"dominated faults",
                   std::to_string(collapsed.num_dominated())});
    if (mivs != nullptr) {
      table.add_row({"MIVs", std::to_string(mivs->num_mivs())});
    }
    table.print();
    std::cout << "\n" << paths.size() << " longest path(s):\n";
    for (const sta::TimingPath& p : paths) {
      std::cout << "  " << TablePrinter::fmt(p.delay_ps, 1) << " ps (slack "
                << TablePrinter::fmt(p.slack_ps, 1) << "): "
                << path_to_string(*nl, p) << "\n";
    }
    std::cout << "\n" << report.to_string();
  }
  return report.has_errors() ? 1 : 0;
}

int cmd_inject(const std::string& profile, const std::string& path) {
  const auto design = Design::build(parse_profile(profile),
                                    DesignConfig::kSyn1);
  DataGenOptions gen;
  gen.num_samples = 1;
  gen.seed = 0xD1E;
  const LabeledDataset one = build_dataset(*design, gen);
  write_file_atomic(path, failure_log_to_string(one.samples[0].log));
  std::cout << "injected " << fault_to_string(design->netlist(),
                                              one.samples[0].faults[0])
            << " (tier " << one.samples[0].fault_tier << "); wrote "
            << one.samples[0].log.num_failing_bits() << " failing bits to "
            << path << "\n";
  return 0;
}

// Flags accepted by `diagnose` and `perturb-log` (diag/noise.h): a seeded
// tester-noise perturbation applied to the input log, so noisy runs are
// reproducible from the recorded (kind, rate, seed) triple.
struct NoiseFlags {
  NoiseOptions noise;
};

NoiseFlags parse_noise_flags(const std::vector<std::string>& flags) {
  NoiseFlags parsed;
  for (const std::string& flag : flags) {
    const auto eq = flag.find('=');
    const std::string key = flag.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : flag.substr(eq + 1);
    try {
      if (key == "--noise-kind") {
        parsed.noise.kind = parse_noise_kind(value);
      } else if (key == "--noise-rate") {
        parsed.noise.rate = std::stod(value);
      } else if (key == "--noise-seed") {
        parsed.noise.seed = std::stoull(value);
      } else if (key == "--noise-depth") {
        parsed.noise.store_depth = std::stoi(value);
      } else {
        throw Error("unknown noise flag '" + flag + "'");
      }
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw Error("bad value in noise flag '" + flag + "'");
    }
  }
  return parsed;
}

// Applies the flagged perturbation (if any) and narrates what it did.
FailureLog apply_noise(const DesignContext& ctx, const FailureLog& log,
                       const NoiseOptions& noise) {
  if (noise.kind == NoiseKind::kNone) return log;
  NoiseSummary summary;
  FailureLog noisy = perturb_failure_log(log, ctx, noise, &summary);
  std::cout << "noise: kind=" << noise_kind_name(noise.kind)
            << " rate=" << noise.rate << " seed=" << noise.seed
            << " -> dropped " << summary.dropped << ", injected "
            << summary.injected << ", flipped " << summary.flipped
            << ", truncated " << summary.truncated << " ("
            << log.num_failing_bits() << " -> " << noisy.num_failing_bits()
            << " failing bits)\n";
  return noisy;
}

// Flags accepted by `diagnose`: the noise perturbation plus --stream, which
// replays the (possibly perturbed) log record-by-record through
// diag::StreamingBacktrace, printing the confidence trajectory and stopping
// at the early-exit point instead of waiting for the complete log.
struct DiagnoseFlags {
  NoiseOptions noise;
  bool stream = false;
};

DiagnoseFlags parse_diagnose_flags(const std::vector<std::string>& flags) {
  DiagnoseFlags parsed;
  std::vector<std::string> noise_flags;
  for (const std::string& flag : flags) {
    if (flag == "--stream") {
      parsed.stream = true;
    } else {
      noise_flags.push_back(flag);
    }
  }
  parsed.noise = parse_noise_flags(noise_flags).noise;
  return parsed;
}

int cmd_diagnose(const std::string& profile, const std::string& model_path,
                 const std::string& log_path, const std::string& config,
                 const DiagnoseFlags& flags) {
  const auto design =
      Design::build(parse_profile(profile), parse_config(config));
  DiagnosisFramework framework;
  {
    auto is = open_in(model_path);
    framework.load(is, model_path);
  }
  FailureLog log;
  {
    auto is = open_in(log_path);
    log = read_failure_log(is);
  }

  const DesignContext ctx = design->context();
  log = apply_noise(ctx, log, flags.noise);

  BacktraceResult backtrace;
  if (flags.stream) {
    // Replay the log as a live feed: one record per line, trajectory after
    // each accepted response, early exit once the candidate set is stable
    // and the confidence clears the T_P-derived cut.  Everything downstream
    // then diagnoses the prefix actually consumed.
    StreamingOptions stream_options;
    stream_options.tp_threshold = framework.tp_threshold();
    StreamingBacktrace stream(design->graph(), ctx, stream_options);
    std::istringstream feed(failure_log_to_string(log));
    std::string line;
    std::getline(feed, line);  // "m3dfl-faillog 1" header
    int line_no = 1;
    bool early_exit = false;
    std::cout << "streaming " << log.num_failing_bits()
              << " failing bits as a live feed:\n";
    while (std::getline(feed, line)) {
      ++line_no;
      const StreamRecord record = parse_stream_record(line, line_no);
      if (stream.add(record) != StreamAccept::kAccepted) continue;
      const StreamSnapshot& snap = stream.snapshot();
      std::cout << "  response " << stream.num_responses() << ": candidates="
                << snap.backtrace.candidates.size() << " confidence="
                << snap.confidence.combined;
      if (!snap.backtrace.quarantined.empty()) {
        std::cout << " quarantined=" << snap.backtrace.quarantined.size();
      }
      if (snap.rehabilitations > 0) {
        std::cout << " rehabilitated=" << snap.rehabilitations;
      }
      if (snap.stable) std::cout << " [stable]";
      std::cout << "\n";
      if (snap.stable) {
        early_exit = true;
        break;
      }
    }
    if (early_exit) {
      std::cout << "early exit after "
                << stream.snapshot().early_exit_at << " of "
                << log.num_failing_bits()
                << " responses (stable candidate set)\n";
    } else {
      std::cout << "no early exit: consumed the full feed ("
                << stream.num_responses() << " responses)\n";
    }
    backtrace = stream.finalize();
    log = stream.log();
  } else {
    backtrace = backtrace_with_support(design->graph(), ctx, log);
  }

  DiagnosisReport report = diagnose_atpg(ctx, log);
  std::cout << "ATPG " << report_to_string(design->netlist(), report);

  const Subgraph sg = extract_subgraph(design->graph(), backtrace.candidates);
  FrameworkPrediction prediction;
  framework.diagnose(ctx, sg, report, &prediction);
  const DiagnosisConfidence confidence =
      framework.diagnosis_confidence(backtrace, &prediction);
  std::cout << "\nGNN verdict: tier " << prediction.tier << " (confidence "
            << prediction.confidence << ", "
            << (prediction.high_confidence ? "high" : "low")
            << "), MIVs flagged: " << prediction.faulty_mivs.size() << ", "
            << (prediction.pruned ? "pruned" : "reordered") << "\n";
  std::cout << "calibrated confidence: " << confidence.combined
            << " (support " << confidence.backtrace_support << ", margin "
            << confidence.model_margin << ", "
            << (confidence.low_confidence ? "LOW" : "ok") << ")\n";
  if (confidence.noisy_log) {
    std::cout << "noisy log: " << confidence.quarantined
              << " response(s) quarantined"
              << (confidence.relaxed ? ", relaxed intersection" : "") << "\n";
  }
  std::cout << "\nrefined " << report_to_string(design->netlist(), report);
  return 0;
}

// Writes a seeded perturbation of a failure log (via the atomic-write path,
// so a crash never leaves a half-written log behind).
int cmd_perturb_log(const std::string& profile, const std::string& in_path,
                    const std::string& out_path, const std::string& config,
                    const NoiseFlags& flags) {
  M3DFL_REQUIRE(flags.noise.kind != NoiseKind::kNone,
                "perturb-log needs --noise-kind=drop|spurious|flip|truncate");
  const auto design =
      Design::build(parse_profile(profile), parse_config(config));
  FailureLog log;
  {
    auto is = open_in(in_path);
    log = read_failure_log(is);
  }
  const DesignContext ctx = design->context();
  const FailureLog noisy = apply_noise(ctx, log, flags.noise);
  write_file_atomic(out_path, failure_log_to_string(noisy));
  std::cout << "wrote " << noisy.num_failing_bits() << " failing bits to "
            << out_path << "\n";
  return 0;
}

// Failure-log inputs for `serve`: a directory (all *.flog files, sorted) or
// a manifest text file with one log path per line ('#' comments allowed).
std::vector<std::filesystem::path> collect_log_paths(const std::string& arg) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  if (fs::is_directory(arg)) {
    for (const auto& entry : fs::directory_iterator(arg)) {
      if (entry.is_regular_file() && entry.path().extension() == ".flog") {
        paths.push_back(entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
  } else {
    auto is = open_in(arg);
    const fs::path base = fs::path(arg).parent_path();
    std::string line;
    while (std::getline(is, line)) {
      if (line.empty() || line[0] == '#') continue;
      fs::path p(line);
      paths.push_back(p.is_absolute() ? p : base / p);
    }
  }
  M3DFL_REQUIRE(!paths.empty(),
                "no failure logs found in '" + arg +
                    "' (directory of *.flog files or manifest)");
  return paths;
}

// Flags accepted by `serve` (may appear anywhere after the command).
struct ServeFlags {
  double deadline_ms = 0.0;
  std::int32_t max_retries = 2;
  bool degraded_fallback = true;
  // Non-empty: route every log through a journaled streaming session
  // (write-ahead journal in this directory; docs/SERVING.md "Crash
  // recovery") and recover sessions a previous killed run left behind.
  std::string journal_dir;
};

ServeFlags parse_serve_flags(const std::vector<std::string>& flags) {
  ServeFlags parsed;
  for (const std::string& flag : flags) {
    const auto eq = flag.find('=');
    const std::string key = flag.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : flag.substr(eq + 1);
    try {
      if (key == "--deadline-ms") {
        parsed.deadline_ms = std::stod(value);
      } else if (key == "--max-retries") {
        parsed.max_retries = std::stoi(value);
      } else if (key == "--no-degraded") {
        parsed.degraded_fallback = false;
      } else if (key == "--journal-dir") {
        M3DFL_REQUIRE(!value.empty(), "--journal-dir needs a directory");
        parsed.journal_dir = value;
      } else {
        throw Error("unknown serve flag '" + flag + "'");
      }
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw Error("bad value in serve flag '" + flag + "'");
    }
  }
  return parsed;
}

// --journal-dir plumbing shared by `serve` and `fleet`: report what
// recover() rebuilt from a previous killed run, then finalize the rebuilt
// sessions (a batch CLI has no live feed to resume them) so their results
// — byte-identical to what the uninterrupted run would have printed — are
// delivered instead of lost.
void report_recovery(serve::SessionManager& manager, const Netlist& netlist,
                     const serve::RecoveryStats& stats) {
  if (stats.segments > 0) {
    std::cerr << "journal recovery: " << stats.recovered << " recovered, "
              << stats.expired << " expired, " << stats.discarded
              << " discarded (" << stats.records_scanned << " record(s) in "
              << stats.segments << " segment(s), " << stats.lines_replayed
              << " line(s) replayed)\n";
    for (const std::string& d : stats.diagnostics) {
      std::cerr << "  " << d << "\n";
    }
  }
  for (const std::uint64_t id : stats.recovered_ids) {
    const serve::DiagnosisResult result = manager.finalize(id).get();
    std::cout << "==== recovered session " << id << "\n"
              << result_to_string(netlist, result) << "\n";
  }
}

// Feeds one failure log through a journaled streaming session: every
// accepted record reaches the write-ahead journal before the call returns,
// so a kill mid-file is recoverable up to the last acknowledged line.
std::future<serve::DiagnosisResult> submit_via_session(
    serve::SessionManager& manager, std::int32_t design_id,
    std::istream& is) {
  // Same header gate as read_failure_log, *before* a session exists: a
  // headerless or garbage file must report as a parse failure, not open a
  // session, swallow its first body line, and print a bogus diagnosis.
  // Bounded reads throughout: an adversarial unterminated line must reject
  // at the cap (util/limits.h), not accumulate here before the session
  // layer ever sees it.
  const ParseLimits& limits = ParseLimits::defaults();
  std::string line;
  const BoundedLine header = bounded_getline(is, line, limits.max_line_bytes);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  M3DFL_REQUIRE(header.ok() && line == "m3dfl-faillog 1",
                "failure log line 1: missing 'm3dfl-faillog 1' header");
  const serve::SessionTicket ticket = manager.begin_diagnosis(design_id);
  if (!ticket.admitted()) {
    std::promise<serve::DiagnosisResult> shed;
    serve::DiagnosisResult result;
    result.status = ticket.status;
    result.status_message = ticket.message;
    shed.set_value(std::move(result));
    return shed.get_future();
  }
  int line_no = 1;
  for (;;) {
    const BoundedLine bl = bounded_getline(is, line, limits.max_line_bytes);
    if (bl.too_long()) {
      // The session survives this file's abort and is finalized on what it
      // accepted so far, same as any mid-feed disconnect.
      std::cerr << "failure log line " << (line_no + 1) << ": "
                << limit_exceeded_over("line bytes", limits.max_line_bytes)
                << "; abandoning the feed\n";
      break;
    }
    if (!bl.ok()) break;
    ++line_no;
    manager.add_response(ticket.session_id, line);
  }
  return manager.finalize(ticket.session_id);
}

int cmd_serve(const std::string& profile, const std::string& model_path,
              const std::string& logs_arg, const std::string& config,
              const std::string& threads_str, const ServeFlags& flags) {
  serve::ServiceOptions options;
  try {
    options.num_threads = std::stoi(threads_str);
  } catch (const std::exception&) {
    throw Error("m3dfl: invalid thread count '" + threads_str + "'");
  }
  options.default_deadline_ms = flags.deadline_ms;
  options.max_retries = flags.max_retries;
  options.degraded_fallback = flags.degraded_fallback;

  std::shared_ptr<const Design> design =
      Design::build(parse_profile(profile), parse_config(config));
  auto model_is = open_in(model_path);
  serve::DiagnosisService service(model_is, options);
  if (service.degraded()) {
    std::cerr << "warning: model unusable; serving in degraded ATPG-only "
                 "mode (reports carry no GNN verdict)\n";
  }
  const std::int32_t design_id = service.register_design(design);

  // Journaled mode: logs flow through streaming sessions so every accepted
  // record is durable before it is acknowledged, and sessions a previous
  // killed run left in the journal are recovered and finalized first.
  std::unique_ptr<serve::SessionManager> manager;
  if (!flags.journal_dir.empty()) {
    serve::SessionManagerOptions mgr_options;
    mgr_options.journal_dir = flags.journal_dir;
    manager = std::make_unique<serve::SessionManager>(service, mgr_options);
    report_recovery(*manager, design->netlist(), manager->recover());
  }

  const auto paths = collect_log_paths(logs_arg);
  std::cerr << "serving " << paths.size() << " failure logs on "
            << design->name() << " with " << options.num_threads
            << " worker thread(s)...\n";

  // A log that fails to open or parse becomes an immediate kInvalidInput
  // slot rather than aborting the batch: the tester keeps getting answers
  // for the dies whose logs are fine.
  std::vector<std::future<serve::DiagnosisResult>> futures;
  std::vector<std::string> parse_failures(paths.size());
  futures.reserve(paths.size());
  for (const auto& path : paths) {
    try {
      auto is = open_in(path.string());
      futures.push_back(manager != nullptr
                            ? submit_via_session(*manager, design_id, is)
                            : service.submit(design_id, read_failure_log(is)));
    } catch (const Error& e) {
      parse_failures[futures.size()] = e.what();
      futures.emplace_back();  // invalid slot, reported below
    }
  }

  std::size_t num_ok = 0;
  std::size_t num_degraded = 0;
  std::size_t num_failed = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    std::cout << "==== " << paths[i].filename().string();
    if (!futures[i].valid()) {
      ++num_failed;
      std::cout << "\nstatus: " << serve::status_name(
                       serve::StatusCode::kInvalidInput)
                << " (" << parse_failures[i] << ")\n\n";
      continue;
    }
    const serve::DiagnosisResult result = futures[i].get();
    if (result.ok()) {
      ++num_ok;
      num_degraded += result.degraded ? 1 : 0;
    } else {
      ++num_failed;
    }
    if (result.cache_hit) std::cout << " (cache hit)";
    if (result.degraded) std::cout << " (degraded)";
    if (!result.ok()) {
      std::cout << " [" << serve::status_name(result.status) << "]";
    }
    std::cout << "\n" << result_to_string(design->netlist(), result) << "\n";
  }
  service.shutdown();
  if (manager != nullptr && manager->journal() != nullptr &&
      !manager->journal()->durable()) {
    std::cerr << "warning: journal degraded to non-durable (append "
                 "failure); a crash may lose events\n";
  }
  std::cout << "==== serving metrics ====\n" << service.metrics().report();
  std::cout << "==== " << num_ok << " ok (" << num_degraded << " degraded), "
            << num_failed << " failed of " << futures.size()
            << " requests ====\n";
  return num_failed == 0 ? 0 : 1;
}

// `m3dfl_tool migrate-artifact <in> <out>`: converts a legacy format-1
// stream (bare "m3dfl-framework 1" or "m3dfl-model 1 <kind>") into the
// checksummed format-2 container the model registry ingests.  A file that is
// already a container is validated end-to-end (structure, CRC, payload
// parse) and copied through.  Always writes atomically.
int cmd_migrate_artifact(const std::string& in_path,
                         const std::string& out_path) {
  std::string bytes;
  {
    auto is = open_in(in_path);
    bytes = slurp_stream(is);
  }
  if (is_artifact(bytes)) {
    // Header: "m3dfl-artifact 2 <kind>".  Validate under the declared kind
    // so a torn or bit-rotted container is rejected here, not at serve time.
    const std::size_t eol = bytes.find('\n');
    const std::string header = bytes.substr(0, eol);
    const std::size_t kind_at = header.rfind(' ');
    M3DFL_REQUIRE(kind_at != std::string::npos,
                  "malformed artifact header in '" + in_path + "'");
    const std::string kind = header.substr(kind_at + 1);
    const std::string payload = read_artifact(bytes, kind, in_path);
    std::istringstream ps(payload);
    if (kind == kFrameworkKind) {
      DiagnosisFramework framework;
      framework.load(ps, in_path);
    } else if (kind == kTierPredictorKind) {
      read_tier_predictor_payload(ps, in_path);
    } else if (kind == kMivPinpointerKind) {
      // A bare pinpointer payload parses standalone; the prune classifier
      // needs its host encoder, so only its container CRC is checked.
      read_miv_pinpointer_payload(ps, in_path);
    }
    write_file_atomic(out_path, bytes);
    std::cout << "'" << in_path << "' is already a format-"
              << kArtifactVersion << " " << kind
              << " artifact; validated and copied to " << out_path << "\n";
    return 0;
  }
  std::istringstream is(bytes);
  std::ostringstream os;
  if (bytes.rfind("m3dfl-framework", 0) == 0) {
    DiagnosisFramework framework;
    framework.load(is, in_path);  // legacy shim accepts the bare stream
    framework.save(os);           // save() always writes format-2
    write_file_atomic(out_path, os.str());
    std::cout << "migrated legacy framework stream to format-"
              << kArtifactVersion << " container: " << out_path << "\n";
    return 0;
  }
  if (bytes.rfind("m3dfl-model", 0) == 0) {
    // "m3dfl-model 1 <kind>"
    const std::size_t eol = bytes.find('\n');
    const std::string header = bytes.substr(0, eol);
    const std::size_t kind_at = header.rfind(' ');
    const std::string kind =
        kind_at == std::string::npos ? "" : header.substr(kind_at + 1);
    if (kind == kTierPredictorKind) {
      save_model(os, read_tier_predictor_payload(is, in_path));
    } else if (kind == kMivPinpointerKind) {
      save_model(os, read_miv_pinpointer_payload(is, in_path));
    } else if (kind == kPruneClassifierKind) {
      throw Error("a bare prune-classifier stream cannot be migrated "
                  "standalone (it needs its host encoder); migrate the "
                  "enclosing framework artifact instead");
    } else {
      throw Error("unknown legacy model kind '" + kind + "' in '" + in_path +
                  "'");
    }
    write_file_atomic(out_path, os.str());
    std::cout << "migrated legacy " << kind << " stream to format-"
              << kArtifactVersion << " container: " << out_path << "\n";
    return 0;
  }
  throw Error("'" + in_path +
              "' is neither a format-2 artifact nor a recognized legacy "
              "stream (expected m3dfl-framework or m3dfl-model magic)");
}

// Flags accepted by `fleet`.
struct FleetFlags {
  std::int32_t threads = 2;        // worker threads per tenant shard
  std::uint64_t max_inflight = 0;  // per-tenant quota; 0 = unlimited
  std::int32_t version = registry::ModelRegistry::kLatest;
  std::size_t max_resident_mb = 0;  // registry eviction watermark
  // Non-empty: per-tenant write-ahead journals under <dir>/<model-name>,
  // with startup recovery (docs/SERVING.md "Crash recovery").
  std::string journal_dir;
};

FleetFlags parse_fleet_flags(const std::vector<std::string>& flags) {
  FleetFlags parsed;
  for (const std::string& flag : flags) {
    const auto eq = flag.find('=');
    const std::string key = flag.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : flag.substr(eq + 1);
    try {
      if (key == "--threads") {
        parsed.threads = std::stoi(value);
      } else if (key == "--max-inflight") {
        parsed.max_inflight = std::stoull(value);
      } else if (key == "--version") {
        parsed.version = std::stoi(value);
      } else if (key == "--max-resident-mb") {
        parsed.max_resident_mb = std::stoull(value);
      } else if (key == "--journal-dir") {
        M3DFL_REQUIRE(!value.empty(), "--journal-dir needs a directory");
        parsed.journal_dir = value;
      } else {
        throw Error("unknown fleet flag '" + flag + "'");
      }
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw Error("bad value in fleet flag '" + flag + "'");
    }
  }
  return parsed;
}

// `m3dfl_tool fleet <registry-dir> <manifest> [flags]`: multi-tenant batch
// serving.  The manifest has one request per line:
//
//   <profile> <die.flog> [config]       # e.g.  aes logs/die1.flog syn1
//
// Each distinct (profile, config) becomes one fleet tenant; its registry
// model name is the sanitized design name (e.g. "AES-Syn-1"), resolved
// `latest` unless --version pins one.  Models must already be published in
// the registry as <model>@<version>.m3dfl (train + migrate-artifact).
int cmd_fleet(const std::string& registry_dir, const std::string& manifest,
              const FleetFlags& flags) {
  registry::RegistryOptions reg_options;
  reg_options.max_resident_bytes = flags.max_resident_mb << 20;
  registry::ModelRegistry registry(registry_dir, reg_options);

  serve::FleetOptions fleet_options;
  fleet_options.service_defaults.num_threads = flags.threads;
  serve::FleetService fleet(registry, fleet_options);

  // tenant key "<profile>/<config>" -> tenant id
  std::map<std::string, std::int32_t> tenants;
  // Journaled mode: one SessionManager (and journal subdirectory, keyed by
  // the stable model name rather than the manifest-order tenant id) per
  // tenant, layered over the tenant's current shard service.  Declared
  // after `fleet` so the managers die before the services they reference.
  std::map<std::int32_t, std::unique_ptr<serve::SessionManager>> managers;
  std::map<std::int32_t, std::shared_ptr<const Design>> tenant_designs;
  struct Slot {
    std::string log_name;
    std::int32_t tenant_id = 0;
  };
  std::vector<Slot> slots;
  std::vector<std::future<serve::DiagnosisResult>> futures;

  auto is = open_in(manifest);
  const std::filesystem::path base =
      std::filesystem::path(manifest).parent_path();
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string profile, log_path, config;
    ls >> profile >> log_path >> config;
    M3DFL_REQUIRE(!log_path.empty(),
                  "fleet manifest line needs '<profile> <log.flog> "
                  "[config]': '" + line + "'");
    if (config.empty()) config = "syn1";
    const std::string key = profile + "/" + config;
    auto it = tenants.find(key);
    if (it == tenants.end()) {
      std::shared_ptr<const Design> design =
          Design::build(parse_profile(profile), parse_config(config));
      serve::TenantOptions tenant = fleet.tenant_defaults();
      tenant.model = registry::sanitize_model_name(design->name());
      tenant.version = flags.version;
      tenant.max_inflight = flags.max_inflight;
      const std::string model = tenant.model;
      std::shared_ptr<const Design> design_ref = design;
      const std::int32_t id =
          fleet.add_tenant(std::move(design), std::move(tenant));
      it = tenants.emplace(key, id).first;
      std::cerr << "tenant " << id << ": " << key << " -> model '" << model
                << "'\n";
      if (!flags.journal_dir.empty()) {
        // Journal per tenant, recovered before this tenant takes traffic.
        // tenant_service is null until a model is published; those tenants
        // fall back to the non-durable batch path below.
        serve::DiagnosisService* shard = fleet.tenant_service(id);
        if (shard == nullptr) {
          std::cerr << "warning: tenant " << id << " has no epoch yet; "
                       "serving it without a journal\n";
        } else {
          serve::SessionManagerOptions mgr_options;
          mgr_options.journal_dir =
              (std::filesystem::path(flags.journal_dir) / model).string();
          auto manager =
              std::make_unique<serve::SessionManager>(*shard, mgr_options);
          report_recovery(*manager, design_ref->netlist(),
                          manager->recover());
          managers.emplace(id, std::move(manager));
          tenant_designs.emplace(id, std::move(design_ref));
        }
      }
    }
    std::filesystem::path p(log_path);
    if (!p.is_absolute()) p = base / p;
    Slot slot;
    slot.log_name = p.filename().string();
    slot.tenant_id = it->second;
    try {
      auto log_is = open_in(p.string());
      const auto mgr = managers.find(it->second);
      if (mgr != managers.end()) {
        // The session path bypasses fleet.submit, so apply the tenant's
        // max_inflight gate here — a journaled tenant gets the same quota
        // (and the same kQuotaExceeded accounting) as a batch one.  Each
        // fleet epoch registers exactly one design, so the shard-local
        // design id is always 0.
        auto shed = fleet.admit(it->second);
        futures.push_back(shed.has_value()
                              ? std::move(*shed)
                              : submit_via_session(*mgr->second, 0, log_is));
      } else {
        futures.push_back(fleet.submit(it->second, read_failure_log(log_is)));
      }
    } catch (const Error& e) {
      std::promise<serve::DiagnosisResult> failed;
      serve::DiagnosisResult result;
      result.status = serve::StatusCode::kInvalidInput;
      result.status_message = e.what();
      failed.set_value(std::move(result));
      futures.push_back(failed.get_future());
    }
    slots.push_back(std::move(slot));
  }
  M3DFL_REQUIRE(!slots.empty(), "fleet manifest '" + manifest +
                                    "' contains no requests");

  std::size_t num_ok = 0;
  TablePrinter table({"tenant", "log", "status", "gen", "ms"});
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::DiagnosisResult result = futures[i].get();
    num_ok += result.ok() ? 1 : 0;
    table.add_row({std::to_string(slots[i].tenant_id), slots[i].log_name,
                   serve::status_name(result.status),
                   std::to_string(result.model_generation),
                   TablePrinter::fmt(result.total_seconds * 1e3, 2)});
  }
  fleet.shutdown();
  for (const auto& [tenant_id, manager] : managers) {
    if (manager->journal() != nullptr && !manager->journal()->durable()) {
      std::cerr << "warning: tenant " << tenant_id
                << " journal degraded to non-durable (append failure)\n";
    }
  }
  table.print();
  std::cout << "\n" << fleet.report();
  std::cout << "==== " << num_ok << " ok of " << futures.size()
            << " requests across " << tenants.size() << " tenant(s) ====\n";
  return num_ok == futures.size() ? 0 : 1;
}

// `m3dfl_tool journal <dir> [--verify|--compact] [--lifetime-ms=N]`:
// inspects a write-ahead session journal (docs/SERVING.md "Crash
// recovery").  Default: per-segment table + live/closed sessions +
// offset-cited diagnostics.  --verify exits 1 if any segment is torn or
// corrupt; --compact removes sealed fully-tombstoned segments;
// --lifetime-ms additionally runs the session-journal-stale lint check
// against the given session-lifetime deadline.
int cmd_journal(const std::string& dir,
                const std::vector<std::string>& flags) {
  bool verify = false;
  bool compact = false;
  double lifetime_ms = 0.0;
  for (const std::string& flag : flags) {
    const auto eq = flag.find('=');
    const std::string key = flag.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : flag.substr(eq + 1);
    if (key == "--verify") {
      verify = true;
    } else if (key == "--compact") {
      compact = true;
    } else if (key == "--lifetime-ms") {
      try {
        lifetime_ms = std::stod(value);
      } catch (const std::exception&) {
        throw Error("bad value in journal flag '" + flag + "'");
      }
    } else {
      throw Error("unknown journal flag '" + flag + "'");
    }
  }

  const serve::JournalReplay replay = serve::SessionJournal::replay(dir);
  if (replay.segments.empty()) {
    std::cout << "no journal segments in '" << dir << "'\n";
    return 0;
  }
  TablePrinter table({"segment", "records", "valid bytes", "total bytes",
                      "status"});
  for (const serve::SegmentScan& seg : replay.segments) {
    table.add_row({std::filesystem::path(seg.path).filename().string(),
                   std::to_string(seg.records.size()),
                   std::to_string(seg.valid_bytes),
                   std::to_string(seg.total_bytes),
                   seg.diagnostic.empty() ? "ok" : "torn"});
  }
  table.print();
  std::cout << replay.records << " record(s), " << replay.live.size()
            << " live session(s), " << replay.closed_sessions
            << " closed session(s)\n";
  for (const auto& live : replay.live) {
    std::cout << "  live session " << live.id << ": design '"
              << live.design_name << "', " << live.lines.size()
              << " accepted record(s)\n";
  }
  for (const std::string& d : replay.diagnostics) {
    std::cout << "  " << d << "\n";
  }

  if (lifetime_ms > 0.0) {
    const lint::JournalFacts facts =
        serve::journal_lint_facts(dir, lifetime_ms, serve::system_wall_ms());
    lint::Subject subject;
    subject.journal = &facts;
    lint::Report report;
    lint::run_journal_checks(subject, report);
    std::cout << report.to_string();
  }
  if (compact) {
    const std::size_t removed = serve::SessionJournal::compact(dir);
    std::cout << "compacted " << removed << " segment(s)\n";
  }
  return verify && !replay.diagnostics.empty() ? 1 : 0;
}

int usage() {
  std::cerr << "usage:\n"
               "  m3dfl_tool generate <profile> <out.mnl>\n"
               "  m3dfl_tool verilog  <profile> <out.v>\n"
               "  m3dfl_tool stats    <profile> [config]\n"
               "  m3dfl_tool train    <profile> <model.m3dfl>\n"
               "                      [--checkpoint-dir=D] "
               "[--checkpoint-interval=N]\n"
               "                      [--resume] [--train-config=F]\n"
               "  m3dfl_tool lint     <profile|file.mnl> [config]\n"
               "                      [--log=F] [--model=F] [--json] "
               "[--fail-on=warn|error]\n"
               "  m3dfl_tool analyze  <profile|file.mnl> [config]\n"
               "                      [--json] [--clock-ps=P] [--k-paths=N] "
               "[--max-defect-ps=D]\n"
               "  m3dfl_tool inject   <profile> <out.flog>\n"
               "  m3dfl_tool diagnose <profile> <model.m3dfl> <die.flog> "
               "[config]\n"
               "                      [--stream] [--noise-kind=K] "
               "[--noise-rate=R] [--noise-seed=S] [--noise-depth=D]\n"
               "  m3dfl_tool perturb-log <profile> <in.flog> <out.flog> "
               "[config]\n"
               "                      --noise-kind=drop|spurious|flip|"
               "truncate [--noise-rate=R]\n"
               "                      [--noise-seed=S] [--noise-depth=D]\n"
               "  m3dfl_tool serve    <profile> <model.m3dfl> "
               "<logdir|manifest> [config] [threads]\n"
               "                      [--deadline-ms=N] [--max-retries=N] "
               "[--no-degraded]\n"
               "                      [--journal-dir=D]\n"
               "  m3dfl_tool fleet    <registry-dir> <manifest>\n"
               "                      [--threads=N] [--max-inflight=N] "
               "[--version=N]\n"
               "                      [--max-resident-mb=N] "
               "[--journal-dir=D]\n"
               "  m3dfl_tool journal  <dir> [--verify|--compact] "
               "[--lifetime-ms=N]\n"
               "  m3dfl_tool migrate-artifact <in> <out>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Split "--flag[=value]" arguments (serve only) from positionals so
    // flags may appear anywhere on the command line.
    std::vector<std::string> positional;
    std::vector<std::string> flags;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      (arg.rfind("--", 0) == 0 ? flags : positional).push_back(arg);
    }
    if (positional.size() < 2) return usage();
    const std::string cmd = positional[0];
    if (cmd == "serve" && positional.size() >= 4 && positional.size() <= 6) {
      return cmd_serve(positional[1], positional[2], positional[3],
                       positional.size() >= 5 ? positional[4] : "syn1",
                       positional.size() == 6 ? positional[5] : "4",
                       parse_serve_flags(flags));
    }
    if (cmd == "train" && positional.size() == 3) {
      return cmd_train(positional[1], positional[2],
                       parse_train_flags(flags));
    }
    if (cmd == "analyze" &&
        (positional.size() == 2 || positional.size() == 3)) {
      return cmd_analyze(positional[1],
                         positional.size() == 3 ? positional[2] : "syn1",
                         parse_analyze_flags(flags));
    }
    if (cmd == "lint" && (positional.size() == 2 || positional.size() == 3)) {
      return cmd_lint(positional[1],
                      positional.size() == 3 ? positional[2] : "syn1",
                      parse_lint_flags(flags));
    }
    if (cmd == "diagnose" && (positional.size() == 4 ||
                              positional.size() == 5)) {
      return cmd_diagnose(positional[1], positional[2], positional[3],
                          positional.size() == 5 ? positional[4] : "syn1",
                          parse_diagnose_flags(flags));
    }
    if (cmd == "perturb-log" && (positional.size() == 4 ||
                                 positional.size() == 5)) {
      return cmd_perturb_log(positional[1], positional[2], positional[3],
                             positional.size() == 5 ? positional[4] : "syn1",
                             parse_noise_flags(flags));
    }
    if (cmd == "fleet" && positional.size() == 3) {
      return cmd_fleet(positional[1], positional[2],
                       parse_fleet_flags(flags));
    }
    if (cmd == "journal" && positional.size() == 2) {
      return cmd_journal(positional[1], flags);
    }
    if (!flags.empty()) {
      throw Error("flags are only accepted by the 'serve', 'train', 'lint', "
                  "'analyze', 'diagnose', 'perturb-log', 'fleet', and "
                  "'journal' commands");
    }
    if (cmd == "migrate-artifact" && positional.size() == 3) {
      return cmd_migrate_artifact(positional[1], positional[2]);
    }
    const std::size_t n = positional.size();
    if (cmd == "generate" && n == 3) {
      return cmd_generate(positional[1], positional[2]);
    }
    if (cmd == "verilog" && n == 3) {
      return cmd_verilog(positional[1], positional[2]);
    }
    if (cmd == "stats" && (n == 2 || n == 3)) {
      return cmd_stats(positional[1], n == 3 ? positional[2] : "syn1");
    }
    if (cmd == "inject" && n == 3) {
      return cmd_inject(positional[1], positional[2]);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "m3dfl_tool: " << e.what() << "\n";
    return 1;
  }
}
