#!/usr/bin/env bash
# Run clang-tidy over the m3dfl sources using the checks in .clang-tidy.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
# Degrades gracefully: exits 0 with a notice when clang-tidy is not
# installed, so the script is safe to call unconditionally from CI images
# that lack LLVM.  Exits non-zero when clang-tidy runs and reports any
# diagnostic.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tidy}"

tidy_bin="$(command -v clang-tidy || true)"
if [[ -z "${tidy_bin}" ]]; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (not a failure)."
  exit 0
fi

# clang-tidy needs a compilation database; configure a dedicated tree so
# we never perturb the primary build directory.
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t sources < <(cd "${repo_root}" &&
                       { find src -name '*.cc'; find tools -name '*.cpp'; } |
                       sort)
echo "run_clang_tidy: ${tidy_bin} over ${#sources[@]} sources" \
     "(database: ${build_dir})"

status=0
for src in "${sources[@]}"; do
  if ! "${tidy_bin}" -p "${build_dir}" --quiet "${repo_root}/${src}"; then
    status=1
  fi
done

if [[ ${status} -ne 0 ]]; then
  echo "run_clang_tidy: diagnostics reported (see above)."
fi
exit ${status}
