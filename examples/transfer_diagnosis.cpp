// Transferability walk-through (paper Sec. IV & VII): train the framework
// once on Syn-1 plus two randomly partitioned netlists, then diagnose
// test-point-inserted (TPI), re-synthesized (Syn-2), and re-partitioned
// (Par) variants of the design without any retraining.
#include <iostream>

#include "core/experiment.h"
#include "util/table.h"

using namespace m3dfl;

int main() {
  std::cout << "== m3dfl transfer-diagnosis example ==\n\n";

  ExperimentOptions opt;
  opt.test_samples = 40;
  opt.train.samples_syn1 = 160;
  opt.train.samples_per_random = 80;
  std::cout << "training once on AES/Syn-1 + two random partitions...\n\n";
  const ProfileExperiment experiment(Profile::kAes, opt);

  TablePrinter table({"Configuration", "Netlist delta vs Syn-1", "Tier local.",
                      "GNN resol. gain", "GNN FHI gain", "Acc. delta"});
  for (DesignConfig config : all_configs()) {
    const ConfigResult r = experiment.evaluate(config);
    std::string delta;
    switch (config) {
      case DesignConfig::kSyn1: delta = "(training netlist)"; break;
      case DesignConfig::kTpi: delta = "test points inserted"; break;
      case DesignConfig::kSyn2: delta = "re-synthesized (new clock)"; break;
      case DesignConfig::kPar: delta = "re-partitioned tiers"; break;
    }
    const double res_gain =
        r.atpg.resolution.mean() > 0
            ? (r.atpg.resolution.mean() - r.gnn.stats.resolution.mean()) /
                  r.atpg.resolution.mean()
            : 0.0;
    const double fhi_gain =
        r.atpg.fhi.mean() > 0
            ? (r.atpg.fhi.mean() - r.gnn.stats.fhi.mean()) / r.atpg.fhi.mean()
            : 0.0;
    table.add_row({
        config_name(config),
        delta,
        TablePrinter::pct(r.gnn.tier_localization()),
        TablePrinter::delta_pct(res_gain),
        TablePrinter::delta_pct(fhi_gain),
        TablePrinter::delta_pct(r.gnn.stats.accuracy() - r.atpg.accuracy()),
    });
  }
  table.print();

  std::cout << "\nOne trained model serves every configuration: no "
               "per-netlist data collection or retraining, which is what "
               "makes ML-aided diagnosis practical for an emerging "
               "technology with no standardized design flow.\n";
  return 0;
}
