// Quickstart: the full m3dfl flow on one small M3D design.
//
//   1. Build a benchmark design (netlist -> tiers -> MIVs -> scan -> ATPG
//      patterns -> good-machine simulation -> heterogeneous graph).
//   2. Generate labeled failure logs by fault injection and train the
//      GNN framework (Tier-predictor, MIV-pinpointer, Classifier).
//   3. Diagnose a fresh failing die: run ATPG-style diagnosis, predict the
//      faulty tier and MIVs, and prune/reorder the candidate report.
#include <cstdio>
#include <iostream>

#include "core/experiment.h"

using namespace m3dfl;

int main() {
  std::cout << "== m3dfl quickstart ==\n\n";

  // 1. Build the AES profile in its baseline (Syn-1) configuration.
  const auto design = Design::build(Profile::kAes, DesignConfig::kSyn1);
  std::cout << "design " << design->name() << ": "
            << design->netlist().num_logic_gates() << " gates, "
            << design->mivs().num_mivs() << " MIVs, "
            << design->scan().num_chains() << " scan chains, "
            << design->atpg().patterns.num_patterns << " TDF patterns ("
            << design->atpg().coverage() * 100.0 << "% fault coverage)\n";
  std::cout << "hetero graph: " << design->graph().num_nodes() << " nodes, "
            << design->graph().num_edges() << " edges, "
            << design->graph().num_topnodes() << " Topnodes\n\n";

  // 2. Train the framework on injected-fault samples (Syn-1 + two randomly
  //    partitioned netlists, the paper's data augmentation).
  TransferTrainOptions train_options;
  train_options.samples_syn1 = 80;
  train_options.samples_per_random = 40;
  const LabeledDataset train =
      build_transfer_training_set(Profile::kAes, *design, train_options);
  std::cout << "training set: " << train.size() << " labeled failure logs\n";

  DiagnosisFramework framework;
  framework.train(train.graphs);
  std::cout << "trained; PR-derived pruning threshold T_P = "
            << framework.tp_threshold() << "\n\n";

  // 3. Diagnose a fresh failing die.
  DataGenOptions gen;
  gen.num_samples = 1;
  gen.seed = 12345;
  const LabeledDataset test = build_dataset(*design, gen);
  const Sample& sample = test.samples[0];
  std::cout << "injected defect: "
            << fault_to_string(design->netlist(), sample.faults[0])
            << " (tier " << sample.fault_tier << "), failure log has "
            << sample.log.num_failing_bits() << " failing bits over "
            << sample.log.num_failing_patterns() << " patterns\n\n";

  const DesignContext ctx = design->context();
  DiagnosisReport report = diagnose_atpg(ctx, sample.log);
  std::cout << "ATPG " << report_to_string(design->netlist(), report, 8);

  FrameworkPrediction prediction;
  framework.diagnose(ctx, test.graphs[0], report, &prediction);
  std::cout << "\nGNN prediction: tier " << prediction.tier
            << " (confidence " << prediction.confidence << ", "
            << (prediction.high_confidence ? "high" : "low")
            << " confidence), " << prediction.faulty_mivs.size()
            << " MIV(s) flagged, "
            << (prediction.pruned ? "pruned" : "reordered") << "\n";
  std::cout << "refined " << report_to_string(design->netlist(), report, 8);

  const SampleEvaluation eval = evaluate_report(ctx, report, sample);
  std::cout << "\nresult: resolution=" << eval.resolution
            << " accurate=" << (eval.accurate ? "yes" : "no")
            << " first-hit-index=" << eval.fhi << "\n";
  return 0;
}
