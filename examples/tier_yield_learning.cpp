// Yield-learning scenario: the paper's motivating use case (Sec. I).
//
// An immature M3D process produces a stream of failing dies whose defects
// cluster in one tier (here: systematic top-tier damage from low-temperature
// transistor processing, plus background defects in both tiers).  The
// framework's Tier-predictor gives the foundry a per-die tier verdict
// *without waiting for physical failure analysis*; aggregated over the lot,
// the verdicts expose the systematic problem within one test insertion.
#include <iostream>

#include "core/experiment.h"
#include "util/table.h"

using namespace m3dfl;

int main() {
  std::cout << "== m3dfl yield-learning example ==\n\n";

  // Build and train once per technology bring-up (netcard profile).
  ExperimentOptions opt;
  opt.train.samples_syn1 = 160;
  opt.train.samples_per_random = 80;
  std::cout << "training the transferable framework on netcard/Syn-1...\n";
  const ProfileExperiment experiment(Profile::kNetcard, opt);
  const Design& design = experiment.syn1();
  const DesignContext ctx = design.context();

  // Simulate one production lot: 70% of failing dies carry top-tier defects
  // (the systematic process problem), 30% are background bottom-tier fails.
  // We emulate the skew by regenerating until the mix matches.
  Rng rng(20260706);
  DataGenOptions gen;
  gen.num_samples = 120;
  gen.seed = rng.next_u64();
  LabeledDataset lot = build_dataset(design, gen);
  std::int32_t forced_top = 0;
  for (std::size_t i = 0; i < lot.size(); ++i) {
    // Re-draw bottom-tier dies with fresh seeds until ~70% are top-tier.
    if (lot.samples[i].fault_tier == kBottomTier &&
        forced_top * 10 < static_cast<std::int32_t>(lot.size()) * 4) {
      DataGenOptions regen;
      regen.num_samples = 1;
      regen.seed = rng.next_u64();
      LabeledDataset one = build_dataset(design, regen);
      if (one.samples[0].fault_tier == kTopTier) {
        lot.samples[i] = std::move(one.samples[0]);
        lot.graphs[i] = std::move(one.graphs[0]);
        ++forced_top;
      }
    }
  }

  // Per-die tier verdicts from the GNN alone (no PFA, no report analysis).
  std::int32_t votes[2] = {0, 0};
  std::int32_t truth[2] = {0, 0};
  std::int32_t correct = 0;
  std::int32_t high_confidence = 0;
  for (std::size_t i = 0; i < lot.size(); ++i) {
    const FrameworkPrediction p =
        experiment.framework().predict(lot.graphs[i]);
    ++votes[p.tier];
    if (lot.samples[i].fault_tier >= 0) {
      ++truth[lot.samples[i].fault_tier];
      if (p.tier == lot.samples[i].fault_tier) ++correct;
    }
    if (p.high_confidence) ++high_confidence;
  }

  TablePrinter table({"", "Bottom tier", "Top tier"});
  table.add_row({"GNN verdicts",
                 std::to_string(votes[0]), std::to_string(votes[1])});
  table.add_row({"Ground truth",
                 std::to_string(truth[0]), std::to_string(truth[1])});
  table.print();

  const double top_share =
      static_cast<double>(votes[1]) / static_cast<double>(lot.size());
  std::cout << "\nper-die tier accuracy: "
            << TablePrinter::pct(static_cast<double>(correct) /
                                 static_cast<double>(lot.size()))
            << ", high-confidence verdicts: " << high_confidence << "/"
            << lot.size() << "\n";
  std::cout << "lot-level verdict: " << TablePrinter::pct(top_share)
            << " of failing dies localize to the TOP tier";
  if (top_share > 0.6) {
    std::cout << " -> systematic top-tier process issue flagged; review "
                 "low-temperature transistor steps before running PFA.\n";
  } else {
    std::cout << " -> no tier-systematic signature.\n";
  }
  return 0;
}
