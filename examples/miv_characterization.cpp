// MIV defect characterization: the paper's second diagnosis target.
//
// Monolithic inter-tier vias are the M3D-specific interconnect (voids from
// inter-layer-dielectric roughness make them delay-fault prone).  This
// example injects MIV delay faults, runs the MIV-pinpointer, and shows how
// the pruning & reordering policy pushes MIV-equivalent candidates to the
// top of the diagnosis report — early feedback for via-process
// characterization.
#include <iostream>

#include "core/experiment.h"
#include "util/table.h"

using namespace m3dfl;

int main() {
  std::cout << "== m3dfl MIV characterization example ==\n\n";

  ExperimentOptions opt;
  opt.train.samples_syn1 = 160;
  opt.train.samples_per_random = 80;
  opt.train.miv_fault_prob = 0.3;  // via-rich training mix
  std::cout << "training on Tate/Syn-1 with a via-rich fault mix...\n";
  const ProfileExperiment experiment(Profile::kTate, opt);
  const Design& design = experiment.syn1();
  const DesignContext ctx = design.context();
  std::cout << "design has " << design.mivs().num_mivs()
            << " MIVs across " << design.netlist().num_logic_gates()
            << " gates\n\n";

  // A wafer of dies failing from MIV voids only.
  DataGenOptions gen;
  gen.num_samples = 40;
  gen.miv_fault_prob = 1.0;
  gen.seed = 31337;
  const LabeledDataset wafer = build_dataset(design, gen);

  std::int32_t pinpointed = 0;
  std::int32_t in_flagged_set = 0;
  Accumulator flagged_count;
  Accumulator fhi_atpg;
  Accumulator fhi_refined;
  for (std::size_t i = 0; i < wafer.size(); ++i) {
    const Sample& die = wafer.samples[i];
    const MivId truth = die.faulty_mivs[0];

    const FrameworkPrediction p =
        experiment.framework().predict(wafer.graphs[i]);
    flagged_count.add(static_cast<double>(p.faulty_mivs.size()));
    bool hit = false;
    for (MivId m : p.faulty_mivs) hit = hit || m == truth;
    if (hit) {
      ++in_flagged_set;
      if (p.faulty_mivs.size() == 1) ++pinpointed;
    }

    DiagnosisReport report = diagnose_atpg(ctx, die.log);
    fhi_atpg.add(evaluate_report(ctx, report, die).fhi);
    experiment.framework().refine_report(ctx, p, report);
    fhi_refined.add(evaluate_report(ctx, report, die).fhi);
  }

  TablePrinter table({"Metric", "Value"});
  table.add_row({"dies analyzed", std::to_string(wafer.size())});
  table.add_row({"defective MIV inside flagged set",
                 TablePrinter::pct(static_cast<double>(in_flagged_set) /
                                   static_cast<double>(wafer.size()))});
  table.add_row({"pinpointed exactly (set of one)",
                 TablePrinter::pct(static_cast<double>(pinpointed) /
                                   static_cast<double>(wafer.size()))});
  table.add_row({"mean MIVs flagged per die",
                 TablePrinter::fmt(flagged_count.mean(), 2)});
  table.add_row({"mean FHI, raw ATPG report",
                 TablePrinter::fmt(fhi_atpg.mean(), 2)});
  table.add_row({"mean FHI after MIV prioritization",
                 TablePrinter::fmt(fhi_refined.mean(), 2)});
  table.print();

  std::cout << "\nMIV-equivalent candidates are moved to the head of each "
               "report (paper Fig. 8), so failure analysis starts at the "
               "via — the component the M3D process team needs "
               "characterized first.\n";
  return 0;
}
